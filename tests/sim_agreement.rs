//! Cross-backend agreement: the coarse profile-driven backend and the
//! fine-grained physical backend — two independent mechanisms on the same
//! event kernel — must agree on recovered TFLOPs when run from the same
//! experiment spec, reproducing the paper's simulator-validation result
//! (Fig. 6).

use pipefill::core::experiments::validation::{fig6_agreement, AGREEMENT_TOLERANCE};

#[test]
fn coarse_and_physical_backends_agree_on_recovered_tflops() {
    let rows = fig6_agreement(&[1, 2, 3], 200);
    assert_eq!(rows.len(), 3);
    for r in &rows {
        println!(
            "seed {}: coarse {:.3} vs physical {:.3} TFLOPS/GPU (error {:.2}%, slowdown {:.2}%)",
            r.seed,
            r.coarse_recovered,
            r.physical_recovered,
            100.0 * r.relative_error,
            100.0 * r.physical_slowdown,
        );
        assert!(
            r.coarse_recovered > 0.0 && r.physical_recovered > 0.0,
            "seed {}: a backend recovered nothing",
            r.seed
        );
        assert!(
            r.relative_error < AGREEMENT_TOLERANCE,
            "seed {}: backends disagree by {:.1}% (tolerance {:.0}%): coarse {} vs physical {}",
            r.seed,
            100.0 * r.relative_error,
            100.0 * AGREEMENT_TOLERANCE,
            r.coarse_recovered,
            r.physical_recovered,
        );
        // The physical run must stay inside the paper's overhead budget —
        // agreement on throughput is meaningless if the main job is being
        // throttled to get it.
        assert!(
            r.physical_slowdown < 0.02,
            "seed {}: slowdown {:.2}% breaches the 2% budget",
            r.seed,
            100.0 * r.physical_slowdown
        );
    }
    // Determinism across the parallel sweep: re-running a seed reproduces
    // its row exactly.
    let again = fig6_agreement(&[2], 200);
    let original = rows.iter().find(|r| r.seed == 2).unwrap();
    assert_eq!(again[0], *original);
}
