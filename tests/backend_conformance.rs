//! Cross-backend conformance: one parameterized harness that drives every
//! `BackendConfig` arm — coarse, physical, fault, fleet — through the
//! shared `BackendDriver` and asserts the invariants the whole backend
//! family must uphold, whatever its fidelity:
//!
//! * the kernel clock never moves backwards while stepping;
//! * `metrics()` fields are finite, non-negative and internally
//!   consistent;
//! * reruns from the same seed are bit-identical;
//! * drain accounts every scheduled job exactly once (no losses, no
//!   double completions);
//! * the fault backend with MTBF = ∞ agrees with the physical backend
//!   within the Fig. 6 tolerance;
//! * a 1-job homogeneous fleet reproduces the physical backend bit for
//!   bit.

use pipefill::core::experiments::validation::AGREEMENT_TOLERANCE;
use pipefill::core::{
    BackendConfig, BackendDriver, BackendMetrics, ClusterSimConfig, CoarseBackend, FaultBackend,
    FaultSimConfig, FleetBackend, FleetSimConfig, PhysicalBackend, PhysicalSimConfig, SimBackend,
};
use pipefill::pipeline::{MainJobSpec, ScheduleKind};
use pipefill::sim::{SimDuration, SimTime, StepOutcome};
use pipefill::trace::{FleetWorkloadConfig, TraceConfig, TraceGenerator};

fn coarse_config(seed: u64) -> ClusterSimConfig {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut trace = TraceConfig::physical(seed);
    trace.horizon = SimDuration::from_secs(900);
    ClusterSimConfig::new(main, trace)
}

fn physical_config(seed: u64) -> PhysicalSimConfig {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut cfg = PhysicalSimConfig::new(main);
    cfg.iterations = 60;
    cfg.seed = seed;
    cfg
}

fn fault_config(seed: u64) -> FaultSimConfig {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut cfg = FaultSimConfig::new(main).with_mtbf(SimDuration::from_secs(400));
    cfg.iterations = 60;
    cfg.seed = seed;
    cfg
}

/// A small heterogeneous fleet with fault injection, so the global
/// queue's eviction/requeue path is exercised by the harness.
fn fleet_config(seed: u64) -> FleetSimConfig {
    let mut workload = FleetWorkloadConfig::new(3, 3 * 128, seed);
    workload.iterations = 60;
    FleetSimConfig::from_workload(&workload).with_mtbf(SimDuration::from_secs(400))
}

/// The parameterized harness: every backend must pass this, whatever its
/// fidelity level.
fn check_conformance<B: SimBackend>(label: &str, mk: impl Fn() -> B) -> BackendMetrics {
    // 1. Monotone kernel clock under single-stepping.
    let mut driver = BackendDriver::new(mk());
    let mut prev = SimTime::ZERO;
    let mut steps = 0u64;
    while driver.step() == StepOutcome::Dispatched {
        let now = driver.now();
        assert!(
            now >= prev,
            "{label}: clock moved backwards at step {steps}"
        );
        prev = now;
        steps += 1;
        assert!(steps < 50_000_000, "{label}: runaway event loop");
    }
    assert!(steps > 0, "{label}: backend dispatched nothing");

    // 2. Metrics are finite, non-negative and internally consistent.
    let (metrics, _) = BackendDriver::new(mk()).run();
    assert_eq!(
        metrics.events_dispatched, steps,
        "{label}: step/run mismatch"
    );
    assert!(metrics.num_devices > 0, "{label}");
    assert!(metrics.elapsed > SimDuration::ZERO, "{label}");
    for (name, value) in [
        ("fill_flops", metrics.fill_flops),
        ("recovered_tflops_per_gpu", metrics.recovered_tflops_per_gpu),
        ("main_tflops_per_gpu", metrics.main_tflops_per_gpu),
        ("main_slowdown", metrics.main_slowdown),
        ("bubble_ratio", metrics.bubble_ratio),
        ("lost_fill_flops", metrics.lost_fill_flops),
        ("goodput_fraction", metrics.goodput_fraction),
    ] {
        assert!(
            value.is_finite() && value >= 0.0,
            "{label}: {name} = {value}"
        );
    }
    assert!((0.0..=1.0).contains(&metrics.bubble_ratio), "{label}");
    assert!((0.0..=1.0).contains(&metrics.goodput_fraction), "{label}");
    assert!(metrics.total_tflops_per_gpu() >= metrics.main_tflops_per_gpu);

    // 3. Bit-identical rerun from the same configuration.
    let (again, _) = BackendDriver::new(mk()).run();
    assert_eq!(metrics, again, "{label}: rerun diverged");

    metrics
}

#[test]
fn coarse_backend_conforms() {
    for seed in [1u64, 2, 3] {
        let metrics = check_conformance("coarse", || CoarseBackend::new(coarse_config(seed)));
        // Drain accounts jobs exactly once: every completed job is
        // distinct, the metrics agree with the ledger, and no job is
        // conjured beyond what the trace scheduled.
        let (m2, backend) = BackendDriver::new(CoarseBackend::new(coarse_config(seed))).run();
        assert_eq!(metrics, m2);
        let detail = backend.into_result();
        assert_eq!(detail.completed.len(), metrics.jobs_completed);
        let mut ids: Vec<_> = detail.completed.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len(), "coarse: a job completed twice");
        let (trace_jobs, _) = TraceGenerator::new(coarse_config(seed).trace).generate();
        assert!(
            detail.completed.len() + detail.rejected <= trace_jobs.len(),
            "coarse: more outcomes than arrivals"
        );
    }
}

#[test]
fn physical_backend_conforms() {
    for seed in [1u64, 2, 3] {
        let metrics = check_conformance("physical", || PhysicalBackend::new(physical_config(seed)));
        let (_, backend) = BackendDriver::new(PhysicalBackend::new(physical_config(seed))).run();
        let detail = backend.into_result();
        assert_eq!(detail.jobs_completed, metrics.jobs_completed);
        assert_eq!(detail.fill_flops, metrics.fill_flops);
    }
}

#[test]
fn fault_backend_conforms() {
    for seed in [1u64, 2, 3] {
        let metrics = check_conformance("fault", || FaultBackend::new(fault_config(seed)));
        let (_, backend) = BackendDriver::new(FaultBackend::new(fault_config(seed))).run();
        let detail = backend.into_result();
        // Exactly-once job accounting survives eviction/revival churn.
        assert_eq!(detail.completed_job_ids.len(), metrics.jobs_completed);
        let mut ids = detail.completed_job_ids.clone();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len(), "fault: a job completed twice");
        // Executed work splits exactly into surviving + lost.
        assert_eq!(detail.fill_flops, metrics.fill_flops);
        assert_eq!(detail.lost_fill_flops, metrics.lost_fill_flops);
        assert!(detail.failures > 0, "seed {seed}: 400s MTBF never fired");
    }
}

#[test]
fn fleet_backend_conforms() {
    for seed in [1u64, 2, 3] {
        let metrics = check_conformance("fleet", || FleetBackend::new(fleet_config(seed)));
        let (_, backend) = BackendDriver::new(FleetBackend::new(fleet_config(seed))).run();
        let detail = backend.into_result();
        // Exactly-once fill-job accounting survives the global queue's
        // eviction/requeue churn across job boundaries.
        assert_eq!(detail.fill_jobs_completed, metrics.jobs_completed);
        let mut ids = detail.completed_fill_ids.clone();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len(), "fleet: a fill job completed twice");
        // Executed work splits exactly into surviving + lost.
        assert_eq!(detail.fill_flops, metrics.fill_flops);
        assert_eq!(detail.lost_fill_flops, metrics.lost_fill_flops);
        assert!(detail.failures > 0, "seed {seed}: 400s MTBF never fired");
        // The aggregate view is consistent with the per-job ledger.
        assert_eq!(
            detail.jobs.iter().map(|j| j.fill_flops).sum::<f64>(),
            detail.fill_flops
        );
        assert_eq!(
            detail.jobs.iter().map(|j| j.evictions).sum::<u64>(),
            detail.evictions
        );
        assert_eq!(detail.num_devices, metrics.num_devices);
    }
}

/// Schedule diversity: every fidelity runs every canonical schedule —
/// GPipe, 1F1B, interleaved 1F1B, ZB-H1 — through the full conformance
/// harness, and the derived bubble geometry orders the way the theory
/// says: ZB-H1 leaves less total bubble than 1F1B/GPipe.
#[test]
fn all_backends_conform_on_every_schedule() {
    for schedule in ScheduleKind::ALL {
        let main = || MainJobSpec::physical_5b(8, schedule);

        let coarse = check_conformance(&format!("coarse/{schedule}"), || {
            let mut trace = TraceConfig::physical(3);
            trace.horizon = SimDuration::from_secs(900);
            CoarseBackend::new(ClusterSimConfig::new(main(), trace))
        });
        let phys = check_conformance(&format!("physical/{schedule}"), || {
            let mut cfg = PhysicalSimConfig::new(main());
            cfg.iterations = 40;
            cfg.seed = 3;
            PhysicalBackend::new(cfg)
        });
        let fault = check_conformance(&format!("fault/{schedule}"), || {
            let mut cfg = FaultSimConfig::new(main()).with_mtbf(SimDuration::from_secs(400));
            cfg.iterations = 40;
            cfg.seed = 3;
            FaultBackend::new(cfg)
        });
        let fleet = check_conformance(&format!("fleet/{schedule}"), || {
            let mut workload = FleetWorkloadConfig::new(2, 2 * 128, 3);
            workload.iterations = 40;
            FleetBackend::new(FleetSimConfig::from_workload_scheduled(&workload, schedule))
        });

        // All fidelities agree on the engine-derived bubble ratio of the
        // same main job (the fleet runs different jobs, so it only has
        // to be sane).
        assert_eq!(coarse.bubble_ratio, phys.bubble_ratio, "{schedule}");
        assert_eq!(phys.bubble_ratio, fault.bubble_ratio, "{schedule}");
        assert!(fleet.bubble_ratio > 0.0, "{schedule}");
    }

    // The geometry ordering across schedules on the fixed 5B job.
    let ratio = |schedule| {
        MainJobSpec::physical_5b(8, schedule)
            .engine_timeline()
            .bubble_ratio()
    };
    let gpipe = ratio(ScheduleKind::GPipe);
    let ofob = ratio(ScheduleKind::OneFOneB);
    let zb = ratio(ScheduleKind::ZbH1);
    assert!(zb < ofob, "ZB-H1 {zb} vs 1F1B {ofob}");
    // Inter-stage comm latency perturbs the two periods slightly (the
    // same 2% the fig8 driver tolerates); without comm they are equal.
    assert!((ofob - gpipe).abs() < 0.02, "1F1B {ofob} vs GPipe {gpipe}");
}

/// The tentpole's conformance pin: 1-chunk interleaved reproduces 1F1B
/// **bit for bit** — identical engine timelines and identical physical-
/// backend metrics, fill FLOPs included.
#[test]
fn one_chunk_interleaved_reproduces_one_f_one_b_bit_for_bit() {
    let mk = |schedule| {
        let main = MainJobSpec::physical_5b(8, schedule);
        assert_eq!(
            main.engine_timeline(),
            MainJobSpec::physical_5b(8, ScheduleKind::OneFOneB).engine_timeline(),
            "engine timelines must match bit for bit"
        );
        let mut cfg = PhysicalSimConfig::new(main);
        cfg.iterations = 60;
        cfg.seed = 5;
        BackendConfig::Physical(cfg).run()
    };
    let interleaved = mk(ScheduleKind::Interleaved { chunks: 1 });
    let ofob = mk(ScheduleKind::OneFOneB);
    assert_eq!(interleaved.metrics, ofob.metrics);
    let il_detail = interleaved.physical().expect("physical detail");
    let ofob_detail = ofob.physical().expect("physical detail");
    assert_eq!(il_detail.fill_flops, ofob_detail.fill_flops);
    assert_eq!(il_detail.jobs_completed, ofob_detail.jobs_completed);
    assert_eq!(il_detail.main_slowdown, ofob_detail.main_slowdown);
    assert_eq!(il_detail.nominal_period, ofob_detail.nominal_period);
}

/// The fleet acceptance gate: a fleet of exactly one homogeneous job —
/// no faults, physical workload defaults — must reproduce the physical
/// backend **bit for bit**: same fill FLOPs, same recovered and main
/// rates, same slowdown, same completion count.
#[test]
fn fleet_single_job_reproduces_physical_bit_for_bit() {
    for seed in [1u64, 5, 9] {
        let mut phys_cfg = physical_config(seed);
        phys_cfg.iterations = 120;
        let fleet_cfg = FleetSimConfig::from_physical(&phys_cfg);

        let phys = BackendConfig::Physical(phys_cfg)
            .run()
            .physical()
            .expect("physical detail");
        let run = BackendConfig::Fleet(fleet_cfg).run();
        let fleet = run.as_fleet().expect("fleet detail");

        assert_eq!(fleet.jobs.len(), 1);
        let job = &fleet.jobs[0];
        assert_eq!(job.fill_flops, phys.fill_flops, "seed {seed}");
        assert_eq!(
            job.recovered_tflops_per_gpu, phys.recovered_tflops_per_gpu,
            "seed {seed}"
        );
        assert_eq!(job.main_tflops_per_gpu, phys.main_tflops_per_gpu);
        assert_eq!(job.main_slowdown, phys.main_slowdown);
        assert_eq!(job.nominal_period, phys.nominal_period);
        assert_eq!(job.mean_period, phys.mean_period);
        assert_eq!(job.fill_jobs_completed, phys.jobs_completed);
        // The fleet-aggregate view of the degenerate fleet is the job.
        assert_eq!(run.metrics.fill_flops, phys.fill_flops);
        assert_eq!(
            run.metrics.recovered_tflops_per_gpu,
            phys.recovered_tflops_per_gpu
        );
        assert_eq!(run.metrics.evictions, 0);
        assert_eq!(run.metrics.goodput_fraction, 1.0);
        assert_eq!(fleet.cross_job_dispatches, 0);
        assert_eq!(fleet.peak_queue_depth, 0);
    }
}

/// The acceptance gate: with fault injection disabled and a homogeneous
/// device list, the fault backend must agree with the physical backend on
/// recovered TFLOPs within the Fig. 6 tolerance. (The implementation
/// actually achieves bit-parity; the tolerance keeps the gate meaningful
/// if the two fidelities ever drift apart legitimately.)
#[test]
fn fault_with_infinite_mtbf_agrees_with_physical() {
    for seed in [1u64, 5, 9] {
        let mut fault_cfg = fault_config(seed);
        fault_cfg.mtbf = SimDuration::MAX;
        fault_cfg.iterations = 120;
        let mut phys_cfg = physical_config(seed);
        phys_cfg.iterations = 120;

        let fault = BackendConfig::Fault(fault_cfg).run().metrics;
        let phys = BackendConfig::Physical(phys_cfg).run().metrics;

        assert!(fault.recovered_tflops_per_gpu > 0.0);
        let err = (fault.recovered_tflops_per_gpu - phys.recovered_tflops_per_gpu).abs()
            / phys.recovered_tflops_per_gpu;
        assert!(
            err < AGREEMENT_TOLERANCE,
            "seed {seed}: fault vs physical disagree by {:.2}% (tolerance {:.0}%)",
            100.0 * err,
            100.0 * AGREEMENT_TOLERANCE
        );
        assert_eq!(fault.evictions, 0);
        assert_eq!(fault.goodput_fraction, 1.0);
    }
}
