//! End-to-end integration: trace generation → job conversion → planning →
//! cluster simulation → metrics, across every crate boundary.

use pipefill::core::{steady_recovered_tflops, ClusterSim, ClusterSimConfig, PolicyKind};
use pipefill::executor::ExecutorConfig;
use pipefill::pipeline::{MainJobSpec, ScheduleKind};
use pipefill::sim::SimDuration;
use pipefill::trace::{ModelMix, TraceConfig};

fn base_config(seed: u64) -> ClusterSimConfig {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut trace = TraceConfig::physical(seed);
    trace.horizon = SimDuration::from_secs(3600);
    ClusterSimConfig::new(main, trace)
}

#[test]
fn cluster_simulation_full_stack() {
    let mut cfg = base_config(100);
    cfg.trace = cfg.trace.with_load(2.0);
    let result = ClusterSim::new(cfg).run();

    assert_eq!(result.num_devices, 16);
    assert!(
        result.completed.len() > 50,
        "only {} jobs",
        result.completed.len()
    );
    assert!(result.rejected < result.completed.len() / 10);

    // Causality and accounting hold for every job.
    for job in &result.completed {
        assert!(job.started >= job.arrival, "{job:?}");
        assert!(job.completed > job.started, "{job:?}");
        assert!(job.flops > 0.0);
        assert!(job.samples > 0);
        assert!(job.device < 16);
    }

    // Utilization decomposition is sane: main + fill ≤ device peak.
    assert!(result.main_tflops_per_gpu > 10.0);
    assert!(result.recovered_tflops_per_gpu > 0.5);
    assert!(result.total_tflops_per_gpu() < 125.0);

    // JCT statistics derive from the completed set.
    assert_eq!(result.jct.count, result.completed.len());
    assert!(result.jct.mean_secs > 0.0);
    assert!(result.jct.p95_secs >= result.jct.median_secs);
}

#[test]
fn saturated_cluster_approaches_steady_state_rate() {
    // With a deep backlog, the event-driven simulator's recovered
    // utilization should approach the plan-level steady-state analysis —
    // the same consistency the paper exploits when its simulator replays
    // profiled patterns between events.
    let mut cfg = base_config(101);
    cfg.trace = cfg.trace.with_load(8.0); // deep backlog
    cfg.trace.horizon = SimDuration::from_secs(7200);
    let main = cfg.main_job.clone();
    let result = ClusterSim::new(cfg).run();
    let steady = steady_recovered_tflops(&main, &ExecutorConfig::default(), &ModelMix::paper_mix());
    let ratio = result.recovered_tflops_per_gpu / steady;
    // The trace's model mix and job granularity differ from the
    // continuous steady model; agreement within ~35% confirms the two
    // paths measure the same thing.
    assert!(
        (0.65..1.35).contains(&ratio),
        "cluster {} vs steady {steady} (ratio {ratio})",
        result.recovered_tflops_per_gpu
    );
}

#[test]
fn policies_change_outcomes_not_throughput() {
    // Scheduling policy reshuffles completion order (JCT/makespan) but
    // saturated utilization is policy-insensitive.
    let run = |policy: PolicyKind| {
        let mut cfg = base_config(102);
        cfg.trace = cfg.trace.with_load(3.0);
        cfg.policy = policy;
        ClusterSim::new(cfg).run()
    };
    let sjf = run(PolicyKind::Sjf);
    let fifo = run(PolicyKind::Fifo);
    assert_eq!(sjf.completed.len(), fifo.completed.len());
    let util_gap = (sjf.recovered_tflops_per_gpu - fifo.recovered_tflops_per_gpu).abs()
        / fifo.recovered_tflops_per_gpu;
    assert!(util_gap < 0.15, "utilization diverged {util_gap}");
    assert!(sjf.jct.mean_secs <= fifo.jct.mean_secs * 1.02);
}

#[test]
fn deadline_aware_policy_meets_more_deadlines() {
    let run = |policy: PolicyKind| {
        let mut cfg = base_config(103);
        cfg.trace = cfg.trace.with_load(2.5);
        cfg.trace.deadline_fraction = 0.5;
        cfg.policy = policy;
        let result = ClusterSim::new(cfg).run();
        let spec_deadlines: Vec<_> = result
            .completed
            .iter()
            .filter(|j| j.arrival >= pipefill::sim::SimTime::ZERO)
            .collect();
        let _ = spec_deadlines;
        result
    };
    // Smoke-level: both run to completion and produce full metrics. The
    // deadline-aware policy must not lose jobs.
    let edf = run(PolicyKind::DeadlineThenSjf);
    let fifo = run(PolicyKind::Fifo);
    assert_eq!(edf.completed.len(), fifo.completed.len());
}

#[test]
fn forty_b_cluster_simulation_at_scale() {
    // The simulator main job (40B, 16 stages of TP=8) drives the same
    // machinery; one representative device per stage.
    let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
    let mut trace = TraceConfig::simulator(104).with_load(3.0);
    trace.horizon = SimDuration::from_secs(3 * 3600);
    let result = ClusterSim::new(ClusterSimConfig::new(main, trace)).run();
    assert!(result.bubble_ratio > 0.6);
    assert!(result.completed.len() > 20);
    assert!(result.recovered_tflops_per_gpu > 1.0);
}
