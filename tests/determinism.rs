//! Reproducibility: every layer of the stack is a pure function of its
//! seeds and configuration, so every number in EXPERIMENTS.md can be
//! regenerated to the digit.

use pipefill::core::{ClusterSim, ClusterSimConfig, PhysicalSim, PhysicalSimConfig};
use pipefill::executor::{plan_best, ExecutorConfig, FillJobSpec};
use pipefill::models::{JobKind, ModelId};
use pipefill::pipeline::{MainJobSpec, ScheduleKind};
use pipefill::sim::SimDuration;
use pipefill::trace::{TraceConfig, TraceGenerator};

#[test]
fn engine_timeline_is_pure() {
    let a = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe).engine_timeline();
    let b = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe).engine_timeline();
    assert_eq!(a, b);
}

#[test]
fn plans_are_pure() {
    let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
    let timeline = main.engine_timeline();
    let slots: Vec<_> = timeline.stages[5]
        .fillable_windows()
        .iter()
        .map(|w| (w.duration, w.free_memory))
        .collect();
    let job = FillJobSpec::new(1, ModelId::BertLarge, JobKind::Training, 10_000);
    let a = plan_best(&job, &slots, &main.device, &ExecutorConfig::default()).unwrap();
    let b = plan_best(&job, &slots, &main.device, &ExecutorConfig::default()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn traces_and_cluster_runs_reproduce() {
    let (t1, s1) = TraceGenerator::new(TraceConfig::physical(77)).generate();
    let (t2, s2) = TraceGenerator::new(TraceConfig::physical(77)).generate();
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);

    let mk = || {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut trace = TraceConfig::physical(78);
        trace.horizon = SimDuration::from_secs(1200);
        ClusterSim::new(ClusterSimConfig::new(main, trace)).run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b);
}

#[test]
fn physical_sim_reproduces_and_seeds_differ() {
    let mk = |seed: u64| {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = PhysicalSimConfig::new(main);
        cfg.iterations = 60;
        cfg.seed = seed;
        PhysicalSim::new(cfg).run()
    };
    assert_eq!(mk(5), mk(5));
    let a = mk(5);
    let c = mk(6);
    // Different seeds perturb the jittered measurements.
    assert!(a.fill_flops != c.fill_flops || a.main_slowdown != c.main_slowdown);
}
