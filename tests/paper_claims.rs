//! The paper's headline claims, verified end-to-end at test scale.
//! EXPERIMENTS.md records the full-scale numbers from the benches.

use pipefill::core::experiments::*;
use pipefill::core::{gpus_saved, PhysicalSim, PhysicalSimConfig};
use pipefill::executor::ExecutorConfig;
use pipefill::pipeline::{bubble_fraction, MainJobSpec, ScheduleKind};

/// §1/§6.1: "<2% slowdown of the training job" at the default 68% fill.
#[test]
fn claim_sub_two_percent_overhead() {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut cfg = PhysicalSimConfig::new(main);
    cfg.iterations = 150;
    let result = PhysicalSim::new(cfg).run();
    assert!(
        result.main_slowdown < 0.02,
        "main-job slowdown {} ≥ 2%",
        result.main_slowdown
    );
    assert!(result.recovered_tflops_per_gpu > 3.0);
}

/// §1: "increase overall utilization by up to 63% for GPUs used in
/// large-scale LLM training … and 5–15% even for low-scale LLM training."
#[test]
fn claim_utilization_gains_by_scale() {
    let rows = fig4_scaling_with(&[64, 8], &ExecutorConfig::default());
    let low = &rows[0]; // 1K GPUs
    let high = &rows[1]; // 8K GPUs
    let low_gain = low.pipefill_bert_inf_tflops / low.traditional_tflops - 1.0;
    let high_gain = high.pipefill_bert_inf_tflops / high.traditional_tflops - 1.0;
    assert!(
        (0.04..0.20).contains(&low_gain),
        "low-scale gain {low_gain} outside the 5-15% band"
    );
    assert!(
        (0.40..0.90).contains(&high_gain),
        "large-scale best-case gain {high_gain} not in the up-to-63% regime"
    );
}

/// §6.1: strong-scaling with PipeFill — "at 8K GPUs PIPEFILL exceeds the
/// GPU utilization of traditional pipeline parallelism at 4K GPUs" with
/// the BERT-inference workload.
#[test]
fn claim_strong_scaling_another_octave() {
    let rows = fig4_scaling_with(&[16, 8], &ExecutorConfig::default());
    let at_4k = &rows[0];
    let at_8k = &rows[1];
    assert!(
        at_8k.pipefill_bert_inf_tflops > at_4k.traditional_tflops,
        "PipeFill@8K {} vs traditional@4K {}",
        at_8k.pipefill_bert_inf_tflops,
        at_4k.traditional_tflops
    );
}

/// §6.2: GPUs saved = C·B·P — "over 1500 GPUs for the trace mix and over
/// 2600 GPUs in the best case" at 8K (we verify the formula and that our
/// measured P lands in a compatible order of magnitude).
#[test]
fn claim_gpus_saved() {
    assert!(gpus_saved(8192, 0.652, 0.3) > 1500.0);
    assert!(gpus_saved(8192, 0.652, 0.5) > 2600.0);
    let rows = fig4_scaling_with(&[8], &ExecutorConfig::default());
    assert!(
        rows[0].gpus_saved_trace_mix > 700.0,
        "measured GPUs saved {}",
        rows[0].gpus_saved_trace_mix
    );
}

/// §2.1: the bubble-fraction formula and the paper's quoted series.
#[test]
fn claim_bubble_fraction_series() {
    assert!((bubble_fraction(16, 8) - 0.652).abs() < 0.001); // the 65% physical setup
    for (m, expect) in [(64, 0.190), (32, 0.319), (16, 0.484), (4, 0.789)] {
        assert!((bubble_fraction(16, m) - expect).abs() < 0.001);
    }
}

/// §6.3: both schedules benefit; GPipe recovers more at low scale, the
/// difference shrinks at high scale.
#[test]
fn claim_schedule_sensitivity() {
    let rows = fig8_schedules(&ExecutorConfig::default());
    for r in &rows {
        assert!(r.recovered_tflops > 0.0, "{:?} recovered nothing", r);
    }
    let gap = |gpus: usize| {
        let g = rows
            .iter()
            .find(|r| r.gpus == gpus && r.schedule == ScheduleKind::GPipe)
            .unwrap()
            .recovered_tflops;
        let o = rows
            .iter()
            .find(|r| r.gpus == gpus && r.schedule == ScheduleKind::OneFOneB)
            .unwrap()
            .recovered_tflops;
        (g - o) / g
    };
    assert!(gap(2048) > gap(16384));
}

/// §6.3: free memory matters with diminishing returns (Fig. 10b), bubble
/// size barely matters (Fig. 10a).
#[test]
fn claim_sensitivity_shapes() {
    let exec = ExecutorConfig::default();
    let mem = fig10b_free_memory(&exec);
    let at = |g: f64| {
        mem.iter()
            .find(|r| r.free_gib == g)
            .unwrap()
            .recovered_tflops
    };
    assert!(at(4.0) > at(2.0));
    assert!(at(8.0) / at(4.0) - 1.0 < at(4.0) / at(2.0) - 1.0);

    let size = fig10a_bubble_size(&exec);
    let spread = size
        .iter()
        .map(|r| r.recovered_tflops)
        .fold(f64::MIN, f64::max)
        / size
            .iter()
            .map(|r| r.recovered_tflops)
            .fold(f64::MAX, f64::min);
    assert!(spread < 1.4, "bubble-size sweep spread {spread}");
}

/// §4.3: a fill job exceeding its memory cap dies in isolation — the
/// main job is unaffected (verified under injected memory noise).
#[test]
fn claim_oom_isolation() {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut cfg = PhysicalSimConfig::new(main);
    cfg.iterations = 120;
    cfg.memory_jitter_cv = 0.35;
    let result = PhysicalSim::new(cfg).run();
    assert!(result.isolated_ooms > 0, "injection produced no OOMs");
    assert!(
        result.main_slowdown < 0.02,
        "OOM isolation violated: slowdown {}",
        result.main_slowdown
    );
}

/// §6.2's newer-hardware hypothesis: higher CPU↔GPU bandwidth shrinks
/// the offloading tax on offload-bound fill jobs.
#[test]
fn claim_offload_bandwidth_hypothesis() {
    let rows = whatif_offload_bandwidth();
    assert!(rows.first().unwrap().offload_tax > rows.last().unwrap().offload_tax);
    assert!(rows.last().unwrap().offload_tax < 1.05);
}

/// Table 1 reproduces within tolerance.
#[test]
fn claim_table1() {
    for row in table1() {
        let err =
            (row.params_millions - row.paper_params_millions).abs() / row.paper_params_millions;
        assert!(err < 0.08, "{}: {err}", row.model);
    }
}

/// §6.2's qualitative characterization claims, end to end.
#[test]
fn claim_fill_job_characterization() {
    let rows = fig7_characterization(
        &characterization::fig7_default_main(),
        &ExecutorConfig::default(),
    );
    use pipefill::models::{JobKind, ModelId};
    let get = |m: ModelId, k: JobKind| rows.iter().find(|r| r.model == m && r.kind == k).unwrap();
    let bert_inf = get(ModelId::BertBase, JobKind::BatchInference);
    let bert_train = get(ModelId::BertBase, JobKind::Training);
    let xlm = get(ModelId::XlmRobertaXl, JobKind::BatchInference);
    let swin = get(ModelId::SwinLarge, JobKind::BatchInference);
    // Inference beats training; Swin performs poorly; XLM slows more
    // than BERT despite similar TFLOPS.
    assert!(bert_inf.tflops_during_execution >= bert_train.tflops_during_execution);
    assert!(swin.tflops_during_execution < 0.6 * bert_inf.tflops_during_execution);
    assert!(xlm.relative_performance < bert_inf.relative_performance);
    // All fill jobs suffer substantial slowdown (≈30% of exclusive).
    for r in &rows {
        assert!((0.02..0.7).contains(&r.relative_performance), "{r:?}");
    }
}
