//! Golden-snapshot tests for the experiment drivers: regenerate the
//! paper artifacts on a small grid and diff the CSV byte-for-byte against
//! the references committed under `tests/golden/`. Refactors that
//! silently shift paper numbers fail here, not in a reviewer's plot.
//!
//! To refresh the snapshots after an *intentional* model change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_experiments -- --include-ignored
//! ```
//!
//! and commit the diff — review then documents exactly which numbers
//! moved.

use pipefill::core::experiments::{
    fig4_scaling, fig5_fill_fraction, fig8_schedules, fig9_policies, fill_fraction, fleet,
    fleet_scale_with, policies, scaling, schedule_depth_sweep, schedules, table1,
};
use pipefill::executor::ExecutorConfig;
use pipefill::sim::SimDuration;

/// Renders a driver's CSV into a temp file and returns its bytes.
fn csv_bytes(name: &str, write: impl FnOnce(&str) -> std::io::Result<()>) -> String {
    let dir = std::env::temp_dir().join(format!("pipefill-golden-{}", std::process::id()));
    let path = dir.join(name);
    write(path.to_str().expect("temp path is utf-8")).expect("writing CSV");
    let bytes = std::fs::read_to_string(&path).expect("reading CSV back");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Byte-for-byte comparison against the committed snapshot, or a refresh
/// when `UPDATE_GOLDEN` is set.
fn golden_check(name: &str, fresh: &str, committed: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(name);
        std::fs::write(&path, fresh).expect("updating golden snapshot");
        return;
    }
    assert_eq!(
        fresh, committed,
        "tests/golden/{name} drifted; if the change is intentional, refresh \
         with UPDATE_GOLDEN=1 and commit the diff"
    );
}

#[test]
fn table1_matches_golden_snapshot() {
    let rows = table1::table1();
    let fresh = csv_bytes("table1.csv", |p| table1::save_table1(&rows, p));
    golden_check("table1.csv", &fresh, include_str!("golden/table1.csv"));
}

#[test]
fn fig4_scaling_matches_golden_snapshot() {
    let rows = fig4_scaling();
    let fresh = csv_bytes("fig4_scaling.csv", |p| scaling::save_scaling(&rows, p));
    golden_check(
        "fig4_scaling.csv",
        &fresh,
        include_str!("golden/fig4_scaling.csv"),
    );
}

#[test]
fn fig8_schedules_matches_golden_snapshot() {
    let rows = fig8_schedules(&ExecutorConfig::default());
    let fresh = csv_bytes("fig8_schedules.csv", |p| {
        schedules::save_schedules(&rows, p)
    });
    golden_check(
        "fig8_schedules.csv",
        &fresh,
        include_str!("golden/fig8_schedules.csv"),
    );
}

/// The 4-schedule × depth geometry sweep: pins the per-schedule bubble
/// geometry — GPipe, 1F1B, interleaved 1F1B, ZB-H1 — the engine derives,
/// byte for byte. A schedule-emission or engine change that moves any
/// bubble window shows up here first.
#[test]
fn schedule_depth_matches_golden_snapshot() {
    let rows = schedule_depth_sweep();
    let fresh = csv_bytes("schedule_depth.csv", |p| {
        schedules::save_depth_sweep(&rows, p)
    });
    golden_check(
        "schedule_depth.csv",
        &fresh,
        include_str!("golden/schedule_depth.csv"),
    );
}

/// The simulation-backed snapshot: Fig. 5 on the reduced 40-iteration
/// grid (seed 7). Heavier than the analysis drivers, so it rides the
/// `--include-ignored` CI gate rather than every local `cargo test`.
#[test]
#[ignore = "simulation-backed; run via cargo test -- --include-ignored (CI does)"]
fn fig5_fill_fraction_matches_golden_snapshot() {
    let rows = fig5_fill_fraction(40, 7);
    let fresh = csv_bytes("fig5_fill_fraction.csv", |p| {
        fill_fraction::save_fill_fraction(&rows, p)
    });
    golden_check(
        "fig5_fill_fraction.csv",
        &fresh,
        include_str!("golden/fig5_fill_fraction.csv"),
    );
}

/// Fig. 9 on a shortened trace horizon (seed 11): pins the coarse
/// backend + scheduler-policy pipeline end to end.
#[test]
#[ignore = "simulation-backed; run via cargo test -- --include-ignored (CI does)"]
fn fig9_policies_matches_golden_snapshot() {
    let rows = fig9_policies(11, SimDuration::from_secs(1200));
    let fresh = csv_bytes("fig9_policies.csv", |p| policies::save_policies(&rows, p));
    golden_check(
        "fig9_policies.csv",
        &fresh,
        include_str!("golden/fig9_policies.csv"),
    );
}

/// The fleet sweep on a reduced grid (1/2/4 jobs, 150 iterations, seed
/// 7): pins the multi-job backend, the fleet workload generator, and the
/// global fill queue end to end — byte-stable at any thread count.
#[test]
#[ignore = "simulation-backed; run via cargo test -- --include-ignored (CI does)"]
fn fleet_scale_matches_golden_snapshot() {
    let rows = fleet_scale_with(&[1, 2, 4], 150, 7);
    let fresh = csv_bytes("fleet_scale.csv", |p| fleet::save_fleet(&rows, p));
    golden_check(
        "fleet_scale.csv",
        &fresh,
        include_str!("golden/fleet_scale.csv"),
    );
}
