//! Registry-driven golden-snapshot tests: every experiment in the
//! registry regenerates its table on the reduced golden grid and diffs
//! the CSV byte-for-byte against the reference committed under
//! `tests/golden/<name>.csv`. Refactors that silently shift paper
//! numbers fail here, not in a reviewer's plot — and a newly registered
//! experiment is pinned automatically (its first run under
//! `UPDATE_GOLDEN=1` creates the snapshot).
//!
//! To refresh the snapshots after an *intentional* model change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_experiments -- --include-ignored
//! ```
//!
//! and commit the diff — review then documents exactly which numbers
//! moved.

use pipefill::scenario::{Experiment, Scale, REGISTRY};

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Byte-for-byte comparison against the committed snapshot, or a
/// refresh when `UPDATE_GOLDEN` is set.
fn golden_check(name: &str, fresh: &str) {
    let path = golden_dir().join(format!("{name}.csv"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, fresh).expect("updating golden snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}; every registered experiment is \
             golden-pinned — create it with UPDATE_GOLDEN=1 and commit",
            path.display()
        )
    });
    assert_eq!(
        fresh, committed,
        "tests/golden/{name}.csv drifted; if the change is intentional, refresh \
         with UPDATE_GOLDEN=1 and commit the diff"
    );
}

/// Regenerates one experiment on its golden grid and checks the pin
/// plus the schema invariants the registry guarantees.
fn check_experiment(exp: &dyn Experiment) {
    let table = exp.run(&exp.grid(Scale::Golden));
    assert!(!table.is_empty(), "{} produced no rows", exp.name());
    assert_eq!(
        table.columns(),
        exp.columns(),
        "{}: table schema drifted from the declared columns",
        exp.name()
    );
    golden_check(exp.name(), &table.to_csv_string());
}

/// The analysis-only experiments (no simulation backend): cheap enough
/// to pin on every local `cargo test`.
#[test]
fn analysis_experiments_match_golden_snapshots() {
    for exp in REGISTRY.iter().filter(|e| !e.simulation_backed()) {
        check_experiment(*exp);
    }
}

/// The simulation-backed experiments on their reduced golden grids.
/// Heavier, so they ride the `--include-ignored` CI gate rather than
/// every local `cargo test`.
#[test]
#[ignore = "simulation-backed; run via cargo test -- --include-ignored (CI does)"]
fn simulation_experiments_match_golden_snapshots() {
    for exp in REGISTRY.iter().filter(|e| e.simulation_backed()) {
        check_experiment(*exp);
    }
}

/// Every file under `tests/golden/` must belong to a registered
/// experiment: a golden whose driver was deleted or renamed is an
/// orphan that would otherwise pin nothing forever.
#[test]
fn no_orphan_goldens() {
    let entries = std::fs::read_dir(golden_dir()).expect("tests/golden exists");
    for entry in entries {
        let name = entry.expect("readable dir entry").file_name();
        let name = name.to_string_lossy();
        let stem = name
            .strip_suffix(".csv")
            .unwrap_or_else(|| panic!("non-CSV file in tests/golden: {name}"));
        assert!(
            REGISTRY.iter().any(|e| e.name() == stem),
            "orphan golden tests/golden/{name}: no registered experiment produces it \
             (delete it or register the experiment)"
        );
    }
}

/// The registry pins the full evaluation surface: all 12+ experiments
/// are present, every one has a golden file committed, and names are
/// CSV-stem-safe.
#[test]
fn every_registered_experiment_has_a_committed_golden() {
    assert!(
        REGISTRY.len() >= 12,
        "registry shrank to {}",
        REGISTRY.len()
    );
    for exp in REGISTRY {
        assert!(
            exp.name()
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "{}: experiment names double as file stems",
            exp.name()
        );
        let path = golden_dir().join(format!("{}.csv", exp.name()));
        assert!(
            path.exists(),
            "{} has no golden snapshot; create it with UPDATE_GOLDEN=1 cargo test \
             --test golden_experiments -- --include-ignored",
            exp.name()
        );
        // The committed header must match the declared schema even
        // without rerunning the (possibly simulation-backed) sweep.
        let committed = std::fs::read_to_string(&path).expect("readable golden");
        let header = committed.lines().next().unwrap_or("");
        assert_eq!(
            header,
            exp.columns().join(","),
            "{}: golden header drifted from the declared schema",
            exp.name()
        );
    }
}
