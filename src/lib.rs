//! # PipeFill — a reproduction of "PipeFill: Using GPUs During Bubbles in
//! Pipeline-parallel LLM Training" (MLSys 2025)
//!
//! PipeFill recovers the GPU time lost to pipeline bubbles in large-scale
//! pipeline-parallel (PP) training by context-switching to independent
//! *fill jobs* — pending training and batch-inference jobs — during each
//! bubble, and switching back before the bubble ends so the main job sees
//! <2% slowdown.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel;
//! * [`device`] — accelerator/cluster hardware models and the HBM
//!   memory-pool semantics the engine instruments;
//! * [`models`] — the model zoo (GPT-5B/40B main jobs, Table 1 fill
//!   jobs) and its analytical FLOPs/memory cost model;
//! * [`pipeline`] — pipeline schedules (GPipe, 1F1B), the instrumented
//!   engine with explicit bubble instructions, the bubble profiler, the
//!   main-job memory model and the optimizer-state offload planner;
//! * [`executor`] — per-configuration fill-job profiles, the Algorithm-1
//!   bubble-packing planner and the per-device executor state machine;
//! * [`scheduler`] — the score-function policy interface (FIFO / SJF /
//!   Makespan-Min / EDF / weighted compositions);
//! * [`trace`] — the synthetic Alibaba-style fill-job trace generator
//!   and HuggingFace-style model mix;
//! * [`core`] — the integrated system: coarse cluster simulator,
//!   fine-grained "physical" simulator, the heterogeneous +
//!   fault-injecting simulator, metrics, and one experiment driver per
//!   figure of the paper;
//! * [`scenario`] — the declarative layer: `ScenarioSpec` (TOML-subset
//!   scenario files lowering to backend configurations) and the
//!   `Experiment` trait/registry wrapping every driver behind one
//!   schema-carrying table interface;
//! * [`schedverify`] — schedcheck, the static schedule verifier: proves
//!   deadlock-freedom, memory bounds and bubble optimality of arbitrary
//!   instruction streams without running the engine.
//!
//! # Quickstart
//!
//! ```
//! use pipefill::pipeline::{MainJobSpec, ScheduleKind};
//! use pipefill::executor::{plan_best, ExecutorConfig, FillJobSpec};
//! use pipefill::models::{JobKind, ModelId};
//!
//! // The paper's 8K-GPU setting: a 40B LLM with a 65% bubble ratio.
//! let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
//! let timeline = main.engine_timeline();
//! assert!(timeline.bubble_ratio() > 0.6);
//!
//! // Plan a BERT batch-inference fill job into stage 8's bubbles.
//! let slots: Vec<_> = timeline.stages[8]
//!     .fillable_windows()
//!     .iter()
//!     .map(|w| (w.duration, w.free_memory))
//!     .collect();
//! let job = FillJobSpec::new(1, ModelId::BertBase, JobKind::BatchInference, 100_000);
//! let plan = plan_best(&job, &slots, &main.device, &ExecutorConfig::default())?;
//! assert!(plan.samples_per_pass > 0);
//! # Ok::<(), pipefill::executor::PlanError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Discrete-event simulation kernel ([`pipefill_sim_core`]).
pub mod sim {
    pub use pipefill_sim_core::*;
}

/// Device, node and cluster hardware models ([`pipefill_device`]).
pub mod device {
    pub use pipefill_device::*;
}

/// Model zoo and analytical cost model ([`pipefill_model_zoo`]).
pub mod models {
    pub use pipefill_model_zoo::*;
}

/// Pipeline engine, schedules and bubbles ([`pipefill_pipeline`]).
pub mod pipeline {
    pub use pipefill_pipeline::*;
}

/// Fill-job executor and Algorithm 1 ([`pipefill_executor`]).
pub mod executor {
    pub use pipefill_executor::*;
}

/// Fill-job scheduler and policies ([`pipefill_scheduler`]).
pub mod scheduler {
    pub use pipefill_scheduler::*;
}

/// Workload trace generation ([`pipefill_trace`]).
pub mod trace {
    pub use pipefill_trace::*;
}

/// The integrated PipeFill system and experiment drivers
/// ([`pipefill_core`]).
pub mod core {
    pub use pipefill_core::*;
}

/// Declarative scenarios and the experiment registry
/// ([`pipefill_scenario`]).
pub mod scenario {
    pub use pipefill_scenario::*;
}

/// schedcheck: the static schedule verifier ([`pipefill_schedverify`]).
pub mod schedverify {
    pub use pipefill_schedverify::*;
}
