//! Fault tolerance and heterogeneity: the third simulation fidelity.
//!
//! Part 1 injects GPU failures at a sweep of MTBFs and shows the
//! FreeRide-style accounting: every failure evicts the stage's fill job,
//! burns the work since its last checkpoint (lost FLOPs), and charges a
//! checkpoint-reload tax once the device returns — so goodput degrades
//! smoothly with the failure rate while the main job pays only the
//! outage itself.
//!
//! Part 2 mixes GPU generations across the pipeline: a slow stage paces
//! the whole pipeline (stretching the period), while upgraded stages
//! convert the extra slack into more recovered fill throughput.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use pipefill::core::{FaultSim, FaultSimConfig};
use pipefill::device::DeviceSpec;
use pipefill::pipeline::{MainJobSpec, ScheduleKind};
use pipefill::sim::SimDuration;

fn main() {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);

    println!("Part 1 — failure injection on the homogeneous 5B cluster:\n");
    println!(
        "{:>10} {:>9} {:>10} {:>13} {:>9} {:>10}",
        "MTBF", "failures", "evictions", "fill TFLOPS", "goodput", "slowdown"
    );
    for mtbf_secs in [f64::INFINITY, 28800.0, 7200.0, 1800.0, 600.0] {
        let mtbf = if mtbf_secs.is_finite() {
            SimDuration::from_secs_f64(mtbf_secs)
        } else {
            SimDuration::MAX
        };
        let mut cfg = FaultSimConfig::new(main.clone()).with_mtbf(mtbf);
        cfg.iterations = 300;
        let r = FaultSim::new(cfg).run();
        let label = if mtbf_secs.is_finite() {
            format!("{:.0}s", mtbf_secs)
        } else {
            "never".to_string()
        };
        println!(
            "{label:>10} {:>9} {:>10} {:>13.2} {:>8.1}% {:>9.2}%",
            r.failures,
            r.evictions,
            r.recovered_tflops_per_gpu,
            100.0 * r.goodput_fraction,
            100.0 * r.main_slowdown,
        );
    }

    println!("\nPart 2 — heterogeneous pipelines (per-stage GPU specs):\n");
    let p = main.engine_timeline().stages.len();
    let scenarios: Vec<(&str, Vec<DeviceSpec>)> = vec![
        ("all V100 (baseline)", vec![DeviceSpec::v100(); p]),
        ("half A100", {
            let mut d = vec![DeviceSpec::v100(); p];
            for dev in d.iter_mut().take(p / 2) {
                *dev = DeviceSpec::a100_40g();
            }
            d
        }),
        ("all A100", vec![DeviceSpec::a100_40g(); p]),
        ("one straggler (half-speed V100)", {
            let mut slow = DeviceSpec::v100();
            slow.peak_tflops /= 2.0;
            let mut d = vec![DeviceSpec::v100(); p];
            d[p / 2] = slow;
            d
        }),
    ];
    println!(
        "{:>34} {:>12} {:>13} {:>12}",
        "cluster", "period", "fill TFLOPS", "main TFLOPS"
    );
    for (name, devices) in scenarios {
        let mut cfg = FaultSimConfig::heterogeneous(main.clone(), devices);
        cfg.iterations = 300;
        let r = FaultSim::new(cfg).run();
        println!(
            "{name:>34} {:>12} {:>13.2} {:>12.2}",
            r.nominal_period, r.recovered_tflops_per_gpu, r.main_tflops_per_gpu,
        );
    }
    println!(
        "\nThe straggler stretches every stage's idle time, so PipeFill recovers \
         *more* fill throughput exactly when the main job suffers most — and \
         upgraded stages convert their speed into fill goodput without touching \
         the pipeline's pace."
    );
}
