//! Failure injection: demonstrate §4.3's memory-cap isolation — when the
//! actual free memory during a bubble falls below what the engine
//! profiled, the fill job's allocation dies against its per-process cap,
//! the bubble goes idle, and the main training job never notices.
//!
//! ```sh
//! cargo run --release --example failure_injection
//! ```

use pipefill::core::{PhysicalSim, PhysicalSimConfig};
use pipefill::pipeline::{MainJobSpec, ScheduleKind};

fn main() {
    println!(
        "{:>14} {:>14} {:>13} {:>14} {:>12}",
        "memory noise", "isolated OOMs", "fill TFLOPS", "main slowdown", "jobs done"
    );
    for cv in [0.0, 0.1, 0.2, 0.4] {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = PhysicalSimConfig::new(main);
        cfg.iterations = 300;
        cfg.memory_jitter_cv = cv;
        let r = PhysicalSim::new(cfg).run();
        println!(
            "{:>13.0}% {:>14} {:>13.2} {:>13.2}% {:>12}",
            100.0 * cv,
            r.isolated_ooms,
            r.recovered_tflops_per_gpu,
            100.0 * r.main_slowdown,
            r.jobs_completed,
        );
    }
    println!(
        "\nGrowing memory noise kills more fill attempts (isolated OOMs) and costs \
         recovered utilization — but the main job's slowdown stays flat: the \
         per-process memory cap keeps every failure inside the Executor."
    );
}
