//! The paper's headline story (Figs. 1 and 4): scaling a 40B LLM from 1K
//! to 8K GPUs cuts training time ~3× but wastes ever more GPU time in
//! pipeline bubbles — and PipeFill recovers most of it.
//!
//! ```sh
//! cargo run --release --example scale_out_llm
//! ```

use pipefill::scenario::{find, Scale};

fn main() {
    println!("Scaling the 40B LLM (GPipe, minibatch fixed at 1024 sequences):\n");
    let exp = find("fig4_scaling").expect("registered experiment");
    let table = exp.run(&exp.grid(Scale::Full));
    table.print();

    let first = |col: &str| table.f64_column(col)[0];
    let last = |col: &str| *table.f64_column(col).last().expect("non-empty sweep");
    println!(
        "\nScaling {}→{} GPUs cuts training {:.0}→{:.0} days but drops \
         traditional utilization {:.1}→{:.1} TFLOPS/GPU.",
        first("gpus"),
        last("gpus"),
        first("days_to_train"),
        last("days_to_train"),
        first("traditional_tflops"),
        last("traditional_tflops")
    );
    println!(
        "PipeFill lifts the {}-GPU point back to {:.1} TFLOPS/GPU (+{:.0}%) with the trace mix,",
        last("gpus"),
        last("pipefill_trace_mix_tflops"),
        100.0 * (last("pipefill_trace_mix_tflops") / last("traditional_tflops") - 1.0)
    );
    println!(
        "and {:.1} TFLOPS/GPU (+{:.0}%) with bubble-friendly BERT inference — \
         ≈{:.0} GPUs' worth of extra work.",
        last("pipefill_bert_inf_tflops"),
        100.0 * (last("pipefill_bert_inf_tflops") / last("traditional_tflops") - 1.0),
        last("gpus_saved_best")
    );
}
