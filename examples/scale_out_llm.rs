//! The paper's headline story (Figs. 1 and 4): scaling a 40B LLM from 1K
//! to 8K GPUs cuts training time ~3× but wastes ever more GPU time in
//! pipeline bubbles — and PipeFill recovers most of it.
//!
//! ```sh
//! cargo run --release --example scale_out_llm
//! ```

use pipefill::core::experiments::scaling::{fig4_scaling, print_scaling};

fn main() {
    let rows = fig4_scaling();
    println!("Scaling the 40B LLM (GPipe, minibatch fixed at 1024 sequences):\n");
    print_scaling(&rows);

    let low = &rows[0];
    let high = &rows[rows.len() - 1];
    println!(
        "\nScaling {}→{} GPUs cuts training {:.0}→{:.0} days but drops \
         traditional utilization {:.1}→{:.1} TFLOPS/GPU.",
        low.gpus,
        high.gpus,
        low.days_to_train,
        high.days_to_train,
        low.traditional_tflops,
        high.traditional_tflops
    );
    println!(
        "PipeFill lifts the {}-GPU point back to {:.1} TFLOPS/GPU (+{:.0}%) with the trace mix,",
        high.gpus,
        high.pipefill_trace_mix_tflops,
        100.0 * (high.pipefill_trace_mix_tflops / high.traditional_tflops - 1.0)
    );
    println!(
        "and {:.1} TFLOPS/GPU (+{:.0}%) with bubble-friendly BERT inference — \
         ≈{:.0} GPUs' worth of extra work.",
        high.pipefill_bert_inf_tflops,
        100.0 * (high.pipefill_bert_inf_tflops / high.traditional_tflops - 1.0),
        high.gpus_saved_best
    );
}
