//! Quickstart: stand up the paper's 8K-GPU main job, inspect its bubbles,
//! plan one fill job with Algorithm 1, and execute it bubble-by-bubble.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pipefill::executor::{plan_best, ExecutorConfig, FillJobExecutor, FillJobSpec, PlanError};
use pipefill::models::{JobKind, ModelId};
use pipefill::pipeline::{MainJobSpec, ScheduleKind};

fn main() -> Result<(), PlanError> {
    // 1. The main job: the paper's 40B-parameter LLM at the 8K-GPU scale
    //    (TP=8 within nodes, 16 pipeline stages, DP=64, 8 microbatches).
    let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
    let timeline = main.engine_timeline();
    println!(
        "main job: {} on {} GPUs",
        main.model.name,
        main.parallelism.total_gpus()
    );
    println!("iteration period : {}", timeline.period);
    println!(
        "bubble ratio     : {:.1}%  (formula (p-1)/(m+p-1) = {:.1}%)",
        100.0 * timeline.bubble_ratio(),
        100.0 * pipefill::pipeline::bubble_fraction(16, 8),
    );

    // 2. One device's bubbles: stage 8 of 16.
    let stage = &timeline.stages[8];
    println!("\nstage 8 bubble windows (one per iteration cycle):");
    for w in stage.fillable_windows() {
        println!(
            "  {:>12}  {}  free {}",
            w.kind.to_string(),
            w.duration,
            w.free_memory
        );
    }

    // 3. A fill job: BERT-base batch inference, 100K samples.
    let job = FillJobSpec::new(1, ModelId::BertBase, JobKind::BatchInference, 100_000);
    let slots: Vec<_> = stage
        .fillable_windows()
        .iter()
        .map(|w| (w.duration, w.free_memory))
        .collect();
    let plan = plan_best(&job, &slots, &main.device, &ExecutorConfig::default())?;
    println!("\nchosen config    : {}", plan.config);
    println!(
        "plan             : {} partitions, {} fill iterations/pass, {} samples/pass",
        plan.partitions.len(),
        plan.iterations_per_pass,
        plan.samples_per_pass
    );
    println!(
        "pass spans       : {} main-job iteration(s)",
        plan.main_iterations_per_pass
    );

    // 4. Execute bubble-by-bubble until the job completes.
    let n_slots = plan.bubbles_per_iteration;
    let mut executor = FillJobExecutor::new(job, plan);
    let mut bubbles = 0u64;
    while !executor.is_complete() {
        executor.on_bubble((bubbles as usize) % n_slots);
        bubbles += 1;
    }
    println!(
        "\ncompleted {} samples in {} bubbles ({} of bubble time) at {:.1} TFLOPS during execution",
        executor.samples_done(),
        bubbles,
        executor.bubble_time_used(),
        executor.tflops_during_execution(),
    );
    let iters = bubbles.div_ceil(n_slots as u64);
    println!(
        "wall-clock: ≈{} main-job iterations ≈ {:.1} s",
        iters,
        iters as f64 * timeline.period.as_secs_f64()
    );
    Ok(())
}
