//! Fleet-scale simulation: many pipeline-parallel main jobs, one
//! cluster-wide fill queue.
//!
//! Part 1 generates a rack-scale fleet (4 heterogeneous jobs, 512 GPUs)
//! with fault injection and shows the per-job view: each job keeps its
//! own workload stream, depth, period and device generation, while
//! evicted fill jobs ride the *global* queue — and can resume on a
//! different main job with matching bubble geometry (cross-job resumes).
//!
//! Part 2 is the degenerate pin the conformance suite enforces: a fleet
//! of exactly one homogeneous job reproduces the single-job physical
//! backend bit for bit.
//!
//! ```sh
//! cargo run --release --example fleet_simulation
//! ```

use pipefill::core::{FleetSim, FleetSimConfig, PhysicalSim, PhysicalSimConfig};
use pipefill::pipeline::{MainJobSpec, ScheduleKind};
use pipefill::sim::SimDuration;
use pipefill::trace::FleetWorkloadConfig;

fn main() {
    println!("Part 1 — a rack-scale fleet (4 jobs, 512 GPUs, MTBF 30 min):\n");
    let mut workload = FleetWorkloadConfig::rack_scale(7);
    workload.iterations = 150;
    let cfg = FleetSimConfig::from_workload(&workload).with_mtbf(SimDuration::from_secs(1800));
    let fleet = FleetSim::new(cfg).run();
    println!(
        "{:>4} {:>6} {:>7} {:>9} {:>6} {:>12} {:>12} {:>9}",
        "job", "GPUs", "stages", "device", "fill%", "fill TFLOPS", "main TFLOPS", "slowdown"
    );
    for job in &fleet.jobs {
        println!(
            "{:>4} {:>6} {:>7} {:>9} {:>5.0}% {:>12.2} {:>12.2} {:>8.2}%",
            job.job,
            job.gpus,
            job.stages,
            job.device,
            100.0 * job.fill_fraction,
            job.recovered_tflops_per_gpu,
            job.main_tflops_per_gpu,
            100.0 * job.main_slowdown,
        );
    }
    println!(
        "\nfleet: {} GPUs, {:.2} fill TFLOPS/GPU recovered, {} fill jobs done, \
         {} evictions ({} resumed cross-job, peak queue depth {})",
        fleet.total_gpus,
        fleet.recovered_tflops_per_gpu,
        fleet.fill_jobs_completed,
        fleet.evictions,
        fleet.cross_job_dispatches,
        fleet.peak_queue_depth,
    );

    println!("\nPart 2 — the degenerate pin: a 1-job fleet IS the physical backend:\n");
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut phys_cfg = PhysicalSimConfig::new(main);
    phys_cfg.iterations = 120;
    let phys = PhysicalSim::new(phys_cfg.clone()).run();
    let solo = FleetSim::new(FleetSimConfig::from_physical(&phys_cfg)).run();
    let job = &solo.jobs[0];
    println!(
        "physical: {:>10.4} fill TFLOPS/GPU, slowdown {:.4}%",
        phys.recovered_tflops_per_gpu,
        100.0 * phys.main_slowdown
    );
    println!(
        "fleet[0]: {:>10.4} fill TFLOPS/GPU, slowdown {:.4}%",
        job.recovered_tflops_per_gpu,
        100.0 * job.main_slowdown
    );
    assert_eq!(job.recovered_tflops_per_gpu, phys.recovered_tflops_per_gpu);
    assert_eq!(job.main_slowdown, phys.main_slowdown);
    assert_eq!(job.fill_flops, phys.fill_flops);
    println!("\nbit-for-bit equal — the fleet layer adds scale, not drift.");
}
