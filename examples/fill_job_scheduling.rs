//! Cluster-level fill-job scheduling: replay a synthetic Alibaba-style
//! trace against the 5B main job's bubbles under two policies and compare
//! completion times and makespan (the Fig. 9 experiment at one load).
//!
//! ```sh
//! cargo run --release --example fill_job_scheduling
//! ```

use pipefill::core::{ClusterSim, ClusterSimConfig, PolicyKind};
use pipefill::pipeline::{MainJobSpec, ScheduleKind};
use pipefill::sim::SimDuration;
use pipefill::trace::TraceConfig;

fn main() {
    let mut first = true;
    for policy in [PolicyKind::Fifo, PolicyKind::Sjf, PolicyKind::MakespanMin] {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut trace = TraceConfig::physical(42).with_load(2.5);
        trace.horizon = SimDuration::from_secs(3600);
        let mut cfg = ClusterSimConfig::new(main, trace);
        cfg.policy = policy;
        let result = ClusterSim::new(cfg).run();

        if first {
            println!(
                "trace: {} jobs over {}, {} devices, bubble ratio {:.1}%\n",
                result.completed.len(),
                result.horizon,
                result.num_devices,
                100.0 * result.bubble_ratio
            );
            println!(
                "{:>14} {:>10} {:>10} {:>10} {:>12} {:>12}",
                "policy", "mean JCT", "median", "p95", "makespan", "fill TFLOPS"
            );
            first = false;
        }
        println!(
            "{:>14} {:>9.0}s {:>9.0}s {:>9.0}s {:>11.0}s {:>12.2}",
            policy.to_string(),
            result.jct.mean_secs,
            result.jct.median_secs,
            result.jct.p95_secs,
            result.makespan.as_secs_f64(),
            result.recovered_tflops_per_gpu,
        );
    }
    println!(
        "\nSJF minimizes completion times; Makespan-Min trades JCT for an earlier \
         finish of the whole batch — exactly the Fig. 9 trade-off."
    );
}
