//! A guided tour of the PipeFill machinery on the physical-cluster setup
//! (5B LLM, 16 GPUs): schedule instructions with bubble markers, bubble
//! probing, free-memory accounting, offload planning, and Algorithm 1's
//! partitioning of an XLM inference job that does not fit in memory.
//!
//! ```sh
//! cargo run --example bubble_walkthrough
//! ```

use pipefill::device::Bytes;
use pipefill::executor::{
    build_profile, plan_best, ExecConfig, ExecTechnique, ExecutorConfig, FillJobSpec,
};
use pipefill::models::{JobKind, ModelId};
use pipefill::pipeline::{
    BubbleProbe, MainJobSpec, OffloadPlanner, PipelineInstruction, ScheduleKind,
};
use pipefill::sim::SimDuration;

fn main() {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let timeline = main.engine_timeline();

    // --- 1. The instrumented schedule -----------------------------------
    println!("== stage 12's GPipe instruction stream (m=8) ==");
    let instrs = ScheduleKind::GPipe.stage_instructions(12, 16, 8);
    for (i, instr) in instrs.iter().enumerate() {
        let tag = match instr {
            PipelineInstruction::Bubble { kind } => format!("<bubble marker: {kind}>"),
            other => format!("{other:?}"),
        };
        println!("  [{i:>2}] {tag}");
    }

    // --- 2. Bubble probing (§4.2) ----------------------------------------
    let stage = &timeline.stages[12];
    let windows = stage.fillable_windows();
    println!("\n== probing stage 12's bubbles (exponential doubling + bisection) ==");
    for w in &windows {
        let outcome = BubbleProbe::default().profile(w.duration);
        println!(
            "  {:>10} bubble: true {}, measured {} in {} probe iterations",
            w.kind.to_string(),
            w.duration,
            outcome.measured,
            outcome.iterations()
        );
    }

    // --- 3. Offloading the optimizer state (§4.2) ------------------------
    let partition = main.partition();
    let sp = &partition.stages()[12];
    let planner = OffloadPlanner::new(main.device.host_link_bandwidth);
    let fwd_window = sp.fwd_time * 8; // the forward phase hides the offload
    let sync_window = SimDuration::from_millis(400); // grad sync hides the onload
    let plan = planner.plan(sp.optimizer_state_bytes(), fwd_window, sync_window);
    println!(
        "\n== main-job offloading: {} of {} Adam state movable without stalls ==",
        plan.offloaded, plan.requested
    );

    // --- 4. Why XLM needs ZeRO-Infinity-style streaming (§6.2) -----------
    let xlm = ModelId::XlmRobertaXl.build();
    let bubble_mem = Bytes::from_gib_f64(4.5);
    let plain = build_profile(
        &xlm,
        JobKind::BatchInference,
        ExecConfig {
            batch_size: 4,
            technique: ExecTechnique::Plain,
        },
        &main.device,
    );
    let streamed = build_profile(
        &xlm,
        JobKind::BatchInference,
        ExecConfig {
            batch_size: 4,
            technique: ExecTechnique::OffloadParams,
        },
        &main.device,
    );
    println!("\n== XLM-Roberta-XL (2.8B) in a {bubble_mem} bubble ==");
    println!(
        "  plain    : peak {} {}",
        plain.peak_memory(),
        if plain.peak_memory() > bubble_mem {
            "→ does NOT fit"
        } else {
            "→ fits"
        }
    );
    println!(
        "  streaming: peak {} → fits; iteration {} vs {} plain",
        streamed.peak_memory(),
        streamed.iteration_time(),
        plain.iteration_time()
    );

    // --- 5. Algorithm 1 on the real bubble cycle -------------------------
    let slots: Vec<_> = windows
        .iter()
        .map(|w| (w.duration, w.free_memory))
        .collect();
    let job = FillJobSpec::new(7, ModelId::XlmRobertaXl, JobKind::BatchInference, 5_000);
    let plan = plan_best(&job, &slots, &main.device, &ExecutorConfig::default())
        .expect("streaming configs fit");
    println!("\n== Algorithm 1 plan for the XLM job on stage 12 ==");
    println!("  config: {}", plan.config);
    for (i, p) in plan.partitions.iter().enumerate().take(6) {
        println!(
            "  partition {i}: bubble slot {} | {} nodes | {} | peak {}",
            p.bubble_index, p.node_count, p.duration, p.memory
        );
    }
    if plan.partitions.len() > 6 {
        println!("  … {} more partitions", plan.partitions.len() - 6);
    }
    println!(
        "  {} fill-iterations per pass spanning {} main-job iterations",
        plan.iterations_per_pass, plan.main_iterations_per_pass
    );
}
