//! Regenerates every table and figure of the paper's evaluation and
//! writes CSVs under `target/experiments/`. This is the full artifact
//! run; expect a few minutes in release mode.
//!
//! ```sh
//! cargo run --release --example reproduce_all
//! ```

use pipefill::core::experiments::*;
use pipefill::executor::ExecutorConfig;
use pipefill::sim::SimDuration;

fn main() -> std::io::Result<()> {
    let exec = ExecutorConfig::default();
    let dir = "target/experiments";
    std::fs::create_dir_all(dir)?;

    println!("== Table 1: fill-job categories ==");
    let t1 = table1();
    table1::print_table1(&t1);
    table1::save_table1(&t1, &format!("{dir}/table1.csv"))?;

    println!("\n== Figs. 1 & 4: scaling the 40B main job ==");
    let scaling = fig4_scaling();
    scaling::print_scaling(&scaling);
    scaling::save_scaling(&scaling, &format!("{dir}/fig4_scaling.csv"))?;

    println!("\n== Fig. 5: fill-fraction sweep (physical 5B cluster) ==");
    let f5 = fig5_fill_fraction(300, 7);
    fill_fraction::print_fill_fraction(&f5);
    fill_fraction::save_fill_fraction(&f5, &format!("{dir}/fig5_fill_fraction.csv"))?;

    println!("\n== Fig. 6: simulator validation (XLM ↔ EfficientNet mix) ==");
    let f6 = fig6_validation(300, 7);
    validation::print_validation(&f6);
    validation::save_validation(&f6, &format!("{dir}/fig6_validation.csv"))?;

    println!("\n== Fig. 7: fill-job characterization ==");
    let f7 = fig7_characterization(&characterization::fig7_default_main(), &exec);
    characterization::print_characterization(&f7);
    characterization::save_characterization(&f7, &format!("{dir}/fig7_characterization.csv"))?;

    println!("\n== Fig. 8: GPipe vs 1F1B ==");
    let f8 = fig8_schedules(&exec);
    schedules::print_schedules(&f8);
    schedules::save_schedules(&f8, &format!("{dir}/fig8_schedules.csv"))?;

    println!("\n== Fig. 9: scheduling policies ==");
    let f9 = fig9_policies(11, SimDuration::from_secs(3600));
    policies::print_policies(&f9);
    policies::save_policies(&f9, &format!("{dir}/fig9_policies.csv"))?;

    println!("\n== Fig. 10: bubble-size and free-memory sensitivity ==");
    let f10a = fig10a_bubble_size(&exec);
    let f10b = fig10b_free_memory(&exec);
    sensitivity::print_sensitivity(&f10a, &f10b);
    sensitivity::save_sensitivity(
        &f10a,
        &f10b,
        &format!("{dir}/fig10a_bubble_size.csv"),
        &format!("{dir}/fig10b_free_memory.csv"),
    )?;

    println!("\n== What-if: offload bandwidth on newer hardware (§6.2 hypothesis) ==");
    let wi = whatif_offload_bandwidth();
    whatif::print_whatif(&wi);
    whatif::save_whatif(&wi, &format!("{dir}/whatif_offload_bandwidth.csv"))?;

    println!("\nCSV written under {dir}/");
    Ok(())
}
