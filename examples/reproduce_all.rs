//! Regenerates every table and figure of the paper's evaluation and
//! writes CSVs under `target/experiments/` — by iterating the experiment
//! registry rather than naming drivers one by one, so a newly registered
//! experiment is reproduced automatically. This is the full artifact
//! run; expect a few minutes in release mode.
//!
//! ```sh
//! cargo run --release --example reproduce_all
//! ```

use pipefill::scenario::{Scale, REGISTRY};

fn main() -> std::io::Result<()> {
    let dir = "target/experiments";
    std::fs::create_dir_all(dir)?;

    for &exp in REGISTRY {
        println!("== {} — {} ==", exp.name(), exp.description());
        let table = exp.run(&exp.grid(Scale::Full));
        table.print();
        let path = format!("{dir}/{}.csv", exp.name());
        table.save(&path)?;
        println!("CSV written to {path}\n");
    }

    println!("CSV written under {dir}/ ({} experiments)", REGISTRY.len());
    Ok(())
}
