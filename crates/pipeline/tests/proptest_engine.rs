//! Property tests for the pipeline engine: the closed-form bubble
//! formulas must fall out of the dependency simulation for arbitrary
//! pipeline shapes.

use proptest::prelude::*;

use pipefill_pipeline::{bubble_fraction, BubbleKind, EngineConfig, ScheduleKind};
use pipefill_sim_core::SimDuration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GPipe with uniform stages and no communication matches
    /// (p-1)/(m+p-1) exactly, with the per-stage split
    /// fwd-bwd = (p-1-s)(tf+tb), fill-drain = s(tf+tb).
    #[test]
    fn gpipe_closed_form(
        p in 1usize..12,
        m in 1usize..24,
        tf_ms in 1u64..40,
        tb_mult in 1u64..4,
    ) {
        let tf = SimDuration::from_millis(tf_ms);
        let tb = SimDuration::from_millis(tf_ms * tb_mult);
        let tl = EngineConfig::uniform(ScheduleKind::GPipe, p, m, tf, tb).run();
        prop_assert_eq!(tl.period, (tf + tb) * (m + p - 1) as u64);
        prop_assert!((tl.bubble_ratio() - bubble_fraction(p, m)).abs() < 1e-9);
        for (s, st) in tl.stages.iter().enumerate() {
            let fwd_bwd: SimDuration = st.windows.iter()
                .filter(|w| w.kind == BubbleKind::FwdBwd)
                .map(|w| w.duration)
                .sum();
            let fill_drain: SimDuration = st.windows.iter()
                .filter(|w| w.kind == BubbleKind::FillDrain)
                .map(|w| w.duration)
                .sum();
            prop_assert_eq!(fwd_bwd, (tf + tb) * (p - 1 - s) as u64);
            prop_assert_eq!(fill_drain, (tf + tb) * s as u64);
        }
    }

    /// For any schedule and shape: busy + bubbles = period on every
    /// stage, windows are disjoint and ordered, and every window's free
    /// memory matches the memory model.
    #[test]
    fn timeline_partitions_the_period(
        schedule in prop_oneof![
            Just(ScheduleKind::GPipe),
            Just(ScheduleKind::OneFOneB),
            Just(ScheduleKind::Interleaved { chunks: 2 }),
            Just(ScheduleKind::Interleaved { chunks: 3 }),
            Just(ScheduleKind::ZbH1),
        ],
        p in 1usize..10,
        m in 1usize..16,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
        comm_us in 0u64..2_000,
    ) {
        let mut cfg = EngineConfig::uniform(
            schedule,
            p,
            m,
            SimDuration::from_millis(tf_ms),
            SimDuration::from_millis(tb_ms),
        );
        cfg.comm = SimDuration::from_micros(comm_us);
        let tl = cfg.run();
        for st in &tl.stages {
            prop_assert_eq!(st.busy + st.bubble_time(), tl.period);
            let mut cursor = SimDuration::ZERO;
            for w in &st.windows {
                prop_assert!(w.offset >= cursor);
                cursor = w.offset + w.duration;
            }
            prop_assert!(cursor <= tl.period);
        }
        prop_assert!(tl.fillable_ratio() <= tl.bubble_ratio() + 1e-12);
    }

    /// 1F1B and GPipe have identical total bubble time for uniform
    /// stages without communication, and 1F1B never fills more.
    #[test]
    fn one_f_one_b_vs_gpipe(
        p in 2usize..10,
        m in 1usize..16,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
    ) {
        let tf = SimDuration::from_millis(tf_ms);
        let tb = SimDuration::from_millis(tb_ms);
        let g = EngineConfig::uniform(ScheduleKind::GPipe, p, m, tf, tb).run();
        let o = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb).run();
        prop_assert_eq!(g.period, o.period);
        prop_assert!((g.bubble_ratio() - o.bubble_ratio()).abs() < 1e-9);
        prop_assert!(o.fillable_ratio() <= g.fillable_ratio() + 1e-9);
    }

    /// The theoretical total-bubble-fraction ordering at equal depth and
    /// microbatch count: ZB-H1 ≤ 1F1B ≤ GPipe (the latter two are equal
    /// for uniform stages — GPipe never fractions *less*). The
    /// interleaved family is pinned separately at the repo's 2:1
    /// calibration: its greedy realization can sit a hair above 1F1B for
    /// adversarial forward/backward ratios.
    #[test]
    fn schedule_bubble_fraction_ordering(
        p in 2usize..10,
        m in 1usize..16,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
    ) {
        let tf = SimDuration::from_millis(tf_ms);
        let tb = SimDuration::from_millis(tb_ms);
        let ratio = |schedule| {
            EngineConfig::uniform(schedule, p, m, tf, tb).run().bubble_ratio()
        };
        let gpipe = ratio(ScheduleKind::GPipe);
        let ofob = ratio(ScheduleKind::OneFOneB);
        let zb = ratio(ScheduleKind::ZbH1);
        prop_assert!(ofob <= gpipe + 1e-9, "1F1B {} vs GPipe {}", ofob, gpipe);
        prop_assert!(zb <= ofob + 1e-9, "ZB-H1 {} vs 1F1B {}", zb, ofob);
    }

    /// At the repo's backward = 2×forward calibration and in
    /// interleaving's target regime — complete microbatch rounds,
    /// m ≡ 0 (mod p), exactly Megatron-LM's precondition — the
    /// interleaved schedule never exceeds 1F1B's total bubble and never
    /// beats the ideal closed-form floor. (Partial rounds and the
    /// chunk-count monotonicity are pinned loosely by the partition
    /// property and the engine unit tests; off-regime shapes can
    /// fragment past 1F1B.)
    #[test]
    fn interleaved_ordering_at_calibration(
        p in 2usize..10,
        rounds in 1usize..6,
        tf_ms in 1u64..30,
    ) {
        let m = p * rounds;
        let tf = SimDuration::from_millis(tf_ms);
        let tb = tf * 2;
        let ratio = |schedule| {
            EngineConfig::uniform(schedule, p, m, tf, tb).run().bubble_ratio()
        };
        let ofob = ratio(ScheduleKind::OneFOneB);
        let il2 = ratio(ScheduleKind::Interleaved { chunks: 2 });
        let il4 = ratio(ScheduleKind::Interleaved { chunks: 4 });
        prop_assert!(il2 <= ofob + 1e-9, "interleaved:2 {} vs 1F1B {}", il2, ofob);
        let ideal = |chunks| pipefill_pipeline::bubble_fraction_for(
            ScheduleKind::Interleaved { chunks },
            p,
            m,
            2.0,
        );
        prop_assert!(il2 >= ideal(2) - 1e-9);
        prop_assert!(il4 >= ideal(4) - 1e-9);
    }

    /// ZB-H1's closed form at the 2:1 calibration and m ≥ p: period
    /// stretches 1F1B's m(t_f+t_b) by (p-1)(t_f + t_B − t_W) = (p-1)t_f
    /// exactly, every stage. (Off-calibration ratios leave W remainders
    /// that the ordering property above still bounds.)
    #[test]
    fn zb_h1_closed_form(
        p in 2usize..9,
        m_extra in 0usize..8,
        tf_ms in 1u64..30,
    ) {
        let m = p + m_extra;
        let tf = SimDuration::from_millis(tf_ms);
        let tb = tf * 2;
        let tl = EngineConfig::uniform(ScheduleKind::ZbH1, p, m, tf, tb).run();
        let ramp = tf * (p - 1) as u64;
        prop_assert_eq!(tl.period, (tf + tb) * m as u64 + ramp);
        for st in &tl.stages {
            prop_assert_eq!(st.bubble_time(), ramp, "stage {}", st.stage);
        }
    }

    /// 1-chunk interleaved reproduces 1F1B bit for bit across arbitrary
    /// shapes — the conformance pin's property-level form.
    #[test]
    fn one_chunk_interleaved_is_one_f_one_b(
        p in 1usize..10,
        m in 1usize..16,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
        comm_us in 0u64..2_000,
    ) {
        let mk = |schedule| {
            let mut cfg = EngineConfig::uniform(
                schedule,
                p,
                m,
                SimDuration::from_millis(tf_ms),
                SimDuration::from_millis(tb_ms),
            );
            cfg.comm = SimDuration::from_micros(comm_us);
            cfg.run()
        };
        prop_assert_eq!(
            mk(ScheduleKind::Interleaved { chunks: 1 }),
            mk(ScheduleKind::OneFOneB)
        );
    }

    /// The 1F1B fwd-bwd bubble formula from §4.5:
    /// (p-s-1)·t_bwd + max(0, p-s-m)·t_fwd.
    #[test]
    fn one_f_one_b_fwd_bwd_formula(
        p in 2usize..10,
        m in 1usize..16,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
    ) {
        let tf = SimDuration::from_millis(tf_ms);
        let tb = SimDuration::from_millis(tb_ms);
        let tl = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb).run();
        for (s, st) in tl.stages.iter().enumerate() {
            let fwd_bwd: SimDuration = st.windows.iter()
                .filter(|w| w.kind == BubbleKind::FwdBwd)
                .map(|w| w.duration)
                .sum();
            let expect = tb * (p - 1 - s) as u64 + tf * (p - s).saturating_sub(m) as u64;
            prop_assert_eq!(fwd_bwd, expect, "stage {}", s);
        }
    }
}
