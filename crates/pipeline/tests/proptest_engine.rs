//! Property tests for the pipeline engine: the closed-form bubble
//! formulas must fall out of the dependency simulation for arbitrary
//! pipeline shapes.

use proptest::prelude::*;

use pipefill_pipeline::{bubble_fraction, BubbleKind, EngineConfig, ScheduleKind};
use pipefill_sim_core::SimDuration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GPipe with uniform stages and no communication matches
    /// (p-1)/(m+p-1) exactly, with the per-stage split
    /// fwd-bwd = (p-1-s)(tf+tb), fill-drain = s(tf+tb).
    #[test]
    fn gpipe_closed_form(
        p in 1usize..12,
        m in 1usize..24,
        tf_ms in 1u64..40,
        tb_mult in 1u64..4,
    ) {
        let tf = SimDuration::from_millis(tf_ms);
        let tb = SimDuration::from_millis(tf_ms * tb_mult);
        let tl = EngineConfig::uniform(ScheduleKind::GPipe, p, m, tf, tb).run();
        prop_assert_eq!(tl.period, (tf + tb) * (m + p - 1) as u64);
        prop_assert!((tl.bubble_ratio() - bubble_fraction(p, m)).abs() < 1e-9);
        for (s, st) in tl.stages.iter().enumerate() {
            let fwd_bwd: SimDuration = st.windows.iter()
                .filter(|w| w.kind == BubbleKind::FwdBwd)
                .map(|w| w.duration)
                .sum();
            let fill_drain: SimDuration = st.windows.iter()
                .filter(|w| w.kind == BubbleKind::FillDrain)
                .map(|w| w.duration)
                .sum();
            prop_assert_eq!(fwd_bwd, (tf + tb) * (p - 1 - s) as u64);
            prop_assert_eq!(fill_drain, (tf + tb) * s as u64);
        }
    }

    /// For any schedule and shape: busy + bubbles = period on every
    /// stage, windows are disjoint and ordered, and every window's free
    /// memory matches the memory model.
    #[test]
    fn timeline_partitions_the_period(
        schedule in prop_oneof![Just(ScheduleKind::GPipe), Just(ScheduleKind::OneFOneB)],
        p in 1usize..10,
        m in 1usize..16,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
        comm_us in 0u64..2_000,
    ) {
        let mut cfg = EngineConfig::uniform(
            schedule,
            p,
            m,
            SimDuration::from_millis(tf_ms),
            SimDuration::from_millis(tb_ms),
        );
        cfg.comm = SimDuration::from_micros(comm_us);
        let tl = cfg.run();
        for st in &tl.stages {
            prop_assert_eq!(st.busy + st.bubble_time(), tl.period);
            let mut cursor = SimDuration::ZERO;
            for w in &st.windows {
                prop_assert!(w.offset >= cursor);
                cursor = w.offset + w.duration;
            }
            prop_assert!(cursor <= tl.period);
        }
        prop_assert!(tl.fillable_ratio() <= tl.bubble_ratio() + 1e-12);
    }

    /// 1F1B and GPipe have identical total bubble time for uniform
    /// stages without communication, and 1F1B never fills more.
    #[test]
    fn one_f_one_b_vs_gpipe(
        p in 2usize..10,
        m in 1usize..16,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
    ) {
        let tf = SimDuration::from_millis(tf_ms);
        let tb = SimDuration::from_millis(tb_ms);
        let g = EngineConfig::uniform(ScheduleKind::GPipe, p, m, tf, tb).run();
        let o = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb).run();
        prop_assert_eq!(g.period, o.period);
        prop_assert!((g.bubble_ratio() - o.bubble_ratio()).abs() < 1e-9);
        prop_assert!(o.fillable_ratio() <= g.fillable_ratio() + 1e-9);
    }

    /// The 1F1B fwd-bwd bubble formula from §4.5:
    /// (p-s-1)·t_bwd + max(0, p-s-m)·t_fwd.
    #[test]
    fn one_f_one_b_fwd_bwd_formula(
        p in 2usize..10,
        m in 1usize..16,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
    ) {
        let tf = SimDuration::from_millis(tf_ms);
        let tb = SimDuration::from_millis(tb_ms);
        let tl = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb).run();
        for (s, st) in tl.stages.iter().enumerate() {
            let fwd_bwd: SimDuration = st.windows.iter()
                .filter(|w| w.kind == BubbleKind::FwdBwd)
                .map(|w| w.duration)
                .sum();
            let expect = tb * (p - 1 - s) as u64 + tf * (p - s).saturating_sub(m) as u64;
            prop_assert_eq!(fwd_bwd, expect, "stage {}", s);
        }
    }
}
