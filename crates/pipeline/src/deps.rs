//! Dependency-key introspection for instruction streams.
//!
//! The engine resolves cross-stage dependencies by keying activation and
//! gradient availability on `(virtual stage, microbatch)`; this module is
//! that keying as a standalone, inspectable artifact. [`produced`] and
//! [`consumed`] answer, for any instruction on any device, which key its
//! completion publishes and which key it must wait for — generalized over
//! virtual stages exactly as the engine executes them (chunk `c` on
//! device `s` is virtual stage `c·p + s`).
//!
//! Two consumers share it: the engine's list scheduler (so the executable
//! semantics and the published introspection cannot drift), and the
//! `schedverify` crate's static dependency graph, which proves streams
//! deadlock-free *before* execution by checking the very same edges for
//! acyclicity.

use crate::instructions::PipelineInstruction;

/// A cross-stage availability key: the engine's end-time maps are keyed
/// by `(iteration, DepKey)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKey {
    /// The forward activation of `microbatch` leaving virtual stage `vs`.
    Fwd {
        /// Virtual stage index in `0..chunks·p`.
        vs: usize,
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// The backward gradient of `microbatch` leaving virtual stage `vs`.
    Bwd {
        /// Virtual stage index in `0..chunks·p`.
        vs: usize,
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
}

/// One inbound dependency of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// The key the instruction waits for.
    pub key: DepKey,
    /// Whether satisfying it crosses a device boundary (and therefore
    /// pays the inter-stage communication latency). Chunk hand-offs that
    /// stay on the same device — `p == 1` wrap-arounds — do not.
    pub crosses_device: bool,
}

/// The key `instr` publishes when it completes on device `stage` of a
/// `p`-device pipeline, if any.
///
/// `BackwardWeight` publishes nothing (ZB-H1's `W` half has no
/// cross-stage consumers — that is the whole point of deferring it), and
/// neither do markers, gradient sync, or the optimizer step.
pub fn produced(instr: PipelineInstruction, stage: usize, p: usize) -> Option<DepKey> {
    match instr {
        PipelineInstruction::Forward { microbatch } => Some(DepKey::Fwd {
            vs: stage,
            microbatch,
        }),
        PipelineInstruction::ForwardChunk { chunk, microbatch } => Some(DepKey::Fwd {
            vs: chunk * p + stage,
            microbatch,
        }),
        PipelineInstruction::Backward { microbatch }
        | PipelineInstruction::BackwardInput { microbatch } => Some(DepKey::Bwd {
            vs: stage,
            microbatch,
        }),
        PipelineInstruction::BackwardChunk { chunk, microbatch } => Some(DepKey::Bwd {
            vs: chunk * p + stage,
            microbatch,
        }),
        PipelineInstruction::BackwardWeight { .. }
        | PipelineInstruction::Bubble { .. }
        | PipelineInstruction::GradSync
        | PipelineInstruction::OptimizerStep => None,
    }
}

/// The key `instr` must wait for before starting on device `stage` of a
/// `p`-device pipeline with `chunks` model chunks per device, if any.
///
/// `None` means the instruction is unconditionally runnable once the
/// device reaches it in program order: pipeline-entry forwards
/// (virtual stage 0), pipeline-exit backwards (the last virtual stage),
/// `BackwardWeight` (its `B` half precedes it in program order), and all
/// non-compute instructions.
pub fn consumed(
    instr: PipelineInstruction,
    stage: usize,
    p: usize,
    chunks: usize,
) -> Option<DepEdge> {
    match instr {
        PipelineInstruction::Forward { microbatch } => (stage > 0).then(|| DepEdge {
            key: DepKey::Fwd {
                vs: stage - 1,
                microbatch,
            },
            crosses_device: true,
        }),
        PipelineInstruction::ForwardChunk { chunk, microbatch } => {
            let vs = chunk * p + stage;
            (vs > 0).then(|| DepEdge {
                key: DepKey::Fwd {
                    vs: vs - 1,
                    microbatch,
                },
                // The previous virtual stage lives on the previous device
                // (wrapping across chunk boundaries), so the hand-off
                // pays the inter-stage link unless p == 1.
                crosses_device: (vs - 1) % p != stage,
            })
        }
        PipelineInstruction::Backward { microbatch }
        | PipelineInstruction::BackwardInput { microbatch } => (stage < p - 1).then(|| DepEdge {
            key: DepKey::Bwd {
                vs: stage + 1,
                microbatch,
            },
            crosses_device: true,
        }),
        PipelineInstruction::BackwardChunk { chunk, microbatch } => {
            let vs = chunk * p + stage;
            (vs < chunks * p - 1).then(|| DepEdge {
                key: DepKey::Bwd {
                    vs: vs + 1,
                    microbatch,
                },
                crosses_device: (vs + 1) % p != stage,
            })
        }
        PipelineInstruction::BackwardWeight { .. }
        | PipelineInstruction::Bubble { .. }
        | PipelineInstruction::GradSync
        | PipelineInstruction::OptimizerStep => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_chain_links_adjacent_stages() {
        let f = PipelineInstruction::Forward { microbatch: 3 };
        assert_eq!(consumed(f, 0, 4, 1), None, "stage 0 enters the pipeline");
        assert_eq!(
            consumed(f, 2, 4, 1),
            Some(DepEdge {
                key: DepKey::Fwd {
                    vs: 1,
                    microbatch: 3
                },
                crosses_device: true,
            })
        );
        assert_eq!(
            produced(f, 2, 4),
            Some(DepKey::Fwd {
                vs: 2,
                microbatch: 3
            })
        );
    }

    #[test]
    fn backward_chain_links_in_reverse() {
        let b = PipelineInstruction::Backward { microbatch: 1 };
        assert_eq!(consumed(b, 3, 4, 1), None, "last stage turns around");
        assert_eq!(
            consumed(b, 1, 4, 1).map(|e| e.key),
            Some(DepKey::Bwd {
                vs: 2,
                microbatch: 1
            })
        );
        // ZB-H1's B half keys identically to a full backward.
        let bi = PipelineInstruction::BackwardInput { microbatch: 1 };
        assert_eq!(consumed(bi, 1, 4, 1), consumed(b, 1, 4, 1));
        assert_eq!(produced(bi, 1, 4), produced(b, 1, 4));
    }

    #[test]
    fn chunk_handoffs_wrap_across_devices() {
        // p=4, v=2: chunk 1 on device 0 is virtual stage 4; its input
        // comes from virtual stage 3 = chunk 0 on device 3 — a real link.
        let f = PipelineInstruction::ForwardChunk {
            chunk: 1,
            microbatch: 0,
        };
        let e = consumed(f, 0, 4, 2).expect("vs 4 has an upstream");
        assert_eq!(
            e.key,
            DepKey::Fwd {
                vs: 3,
                microbatch: 0
            }
        );
        assert!(e.crosses_device);
        // p=1: every hand-off stays on the lone device.
        let e = consumed(f, 0, 1, 2).expect("vs 1 has an upstream");
        assert!(!e.crosses_device);
        // The last virtual stage's backward enters unconditionally.
        let b = PipelineInstruction::BackwardChunk {
            chunk: 1,
            microbatch: 0,
        };
        assert_eq!(consumed(b, 3, 4, 2), None);
        assert_eq!(
            consumed(b, 2, 4, 2).map(|e| e.key),
            Some(DepKey::Bwd {
                vs: 7,
                microbatch: 0
            })
        );
    }

    #[test]
    fn weight_half_and_markers_are_dependency_free() {
        for instr in [
            PipelineInstruction::BackwardWeight { microbatch: 2 },
            PipelineInstruction::GradSync,
            PipelineInstruction::OptimizerStep,
            PipelineInstruction::Bubble {
                kind: crate::bubbles::BubbleKind::FwdBwd,
            },
        ] {
            assert_eq!(produced(instr, 1, 4), None, "{instr:?}");
            assert_eq!(consumed(instr, 1, 4, 1), None, "{instr:?}");
        }
    }
}
