//! Main-job offloading (§4.2): moving the main job's optimizer state to
//! host memory to enlarge the free memory fill jobs see, *without ever
//! blocking the main job*.
//!
//! The feasibility rule from the paper: optimizer state is only needed at
//! the optimizer update, so it can live on the host during the rest of the
//! iteration — provided the offload transfer hides under the forward pass
//! and the onload transfer hides under gradient synchronization. The
//! planner computes how many bytes satisfy both windows.

use pipefill_device::Bytes;
use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

/// Plans optimizer-state offloading for one stage's GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadPlanner {
    /// Host↔device link bandwidth in bytes/second (PCIe on the paper's
    /// V100 nodes).
    pub host_link_bandwidth: f64,
}

/// The planner's decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadPlan {
    /// Optimizer-state bytes the stage holds.
    pub requested: Bytes,
    /// Bytes that can be offloaded without blocking the main job — the
    /// amount added to every bubble's free memory.
    pub offloaded: Bytes,
    /// Transfer time to push `offloaded` to the host (hidden under the
    /// forward pass).
    pub offload_time: SimDuration,
    /// Transfer time to pull it back (hidden under gradient sync).
    pub onload_time: SimDuration,
}

impl OffloadPlan {
    /// True if everything requested fits in the overlap windows.
    pub fn is_complete(&self) -> bool {
        self.offloaded == self.requested
    }
}

impl OffloadPlanner {
    /// Creates a planner.
    ///
    /// # Panics
    ///
    /// Panics if `host_link_bandwidth` is not positive.
    pub fn new(host_link_bandwidth: f64) -> Self {
        assert!(
            host_link_bandwidth > 0.0 && host_link_bandwidth.is_finite(),
            "bandwidth must be positive, got {host_link_bandwidth}"
        );
        OffloadPlanner {
            host_link_bandwidth,
        }
    }

    /// Computes the offloadable bytes given the stage's optimizer-state
    /// size and the two overlap windows: the forward-phase duration (for
    /// offload) and the gradient-sync duration (for onload).
    pub fn plan(
        &self,
        optimizer_state: Bytes,
        fwd_window: SimDuration,
        sync_window: SimDuration,
    ) -> OffloadPlan {
        let offload_cap =
            Bytes::new((fwd_window.as_secs_f64() * self.host_link_bandwidth).floor() as u64);
        let onload_cap =
            Bytes::new((sync_window.as_secs_f64() * self.host_link_bandwidth).floor() as u64);
        let offloaded = optimizer_state.min(offload_cap).min(onload_cap);
        OffloadPlan {
            requested: optimizer_state,
            offloaded,
            offload_time: self.transfer_time(offloaded),
            onload_time: self.transfer_time(offloaded),
        }
    }

    fn transfer_time(&self, bytes: Bytes) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_f64() / self.host_link_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> OffloadPlanner {
        OffloadPlanner::new(12.0e9) // V100 PCIe
    }

    #[test]
    fn ample_windows_offload_everything() {
        // 3.6 GB of optimizer state (≈300M params × 12 B), 1 s windows.
        let plan = planner().plan(
            Bytes::from_gib_f64(3.6),
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert!(plan.is_complete());
        assert!(plan.offload_time.as_secs_f64() < 0.4);
    }

    #[test]
    fn narrow_forward_window_limits_offload() {
        let plan = planner().plan(
            Bytes::from_gib_f64(3.6),
            SimDuration::from_millis(100), // only 1.2 GB fits
            SimDuration::from_secs(1),
        );
        assert!(!plan.is_complete());
        let gib = plan.offloaded.as_gib();
        assert!(
            (gib - 1.2e9 / (1u64 << 30) as f64).abs() < 0.01,
            "got {gib}"
        );
    }

    #[test]
    fn narrow_sync_window_limits_onload() {
        let plan = planner().plan(
            Bytes::from_gib_f64(3.6),
            SimDuration::from_secs(1),
            SimDuration::from_millis(50), // 0.6 GB
        );
        assert!(plan.offloaded < Bytes::from_gib(1));
    }

    #[test]
    fn transfer_times_match_offloaded_bytes() {
        let plan = planner().plan(
            Bytes::new(12_000_000_000),
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        );
        assert!((plan.offload_time.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(plan.offload_time, plan.onload_time);
    }

    #[test]
    fn zero_state_is_trivially_complete() {
        let plan = planner().plan(Bytes::ZERO, SimDuration::ZERO, SimDuration::ZERO);
        assert!(plan.is_complete());
        assert_eq!(plan.offloaded, Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = OffloadPlanner::new(0.0);
    }
}
