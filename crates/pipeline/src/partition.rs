//! Partitioning a model into pipeline stages and deriving per-stage,
//! per-GPU compute/memory profiles under tensor parallelism.

use pipefill_device::{Bytes, DeviceSpec};
use pipefill_model_zoo::{
    ModelGraph, ADAM_STATE_BYTES_PER_PARAM, FP16_BYTES, GRAD_BYTES_PER_PARAM,
};
use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

use crate::parallelism::ParallelismConfig;

/// Bytes of parameter-update traffic per parameter during the optimizer
/// step (read fp16 grad + fp32 master/moments, write them back): used to
/// derive the (memory-bound) optimizer-step duration.
const OPTIMIZER_TRAFFIC_BYTES_PER_PARAM: f64 = 32.0;

/// One pipeline stage's per-GPU profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage index in `0..p`.
    pub stage: usize,
    /// Half-open range of model layer indices assigned to this stage.
    pub layer_range: (usize, usize),
    /// Parameters held per GPU (stage parameters / tensor-parallel degree).
    pub params_per_gpu: u64,
    /// Forward time for one microbatch on one GPU.
    pub fwd_time: SimDuration,
    /// Backward time for one microbatch on one GPU (2× forward FLOPs).
    pub bwd_time: SimDuration,
    /// Optimizer-step time for this stage's shard.
    pub opt_time: SimDuration,
    /// Output (boundary) activation bytes per microbatch per GPU — the
    /// payload sent to the next stage.
    pub boundary_bytes_per_microbatch: Bytes,
    /// Full activation bytes per microbatch per GPU (no checkpointing).
    pub activation_bytes_per_microbatch: Bytes,
    /// Checkpointed activation bytes per microbatch per GPU (boundaries
    /// only; the recompute working set is charged separately).
    pub ckpt_boundary_bytes_per_microbatch: Bytes,
    /// Largest single-layer activation per microbatch per GPU (recompute
    /// working set under checkpointing).
    pub recompute_working_set: Bytes,
}

impl StageProfile {
    /// Persistent training state per GPU: fp16 weights + fp16 grads +
    /// Adam state.
    pub fn persistent_state_bytes(&self) -> Bytes {
        Bytes::new(
            self.params_per_gpu * (FP16_BYTES + GRAD_BYTES_PER_PARAM + ADAM_STATE_BYTES_PER_PARAM),
        )
    }

    /// Optimizer-state bytes per GPU (the offloadable portion).
    pub fn optimizer_state_bytes(&self) -> Bytes {
        Bytes::new(self.params_per_gpu * ADAM_STATE_BYTES_PER_PARAM)
    }
}

/// A model partitioned into `p` contiguous pipeline stages, balanced by
/// forward FLOPs (the greedy rule real planners use when stages must be
/// contiguous).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePartition {
    stages: Vec<StageProfile>,
}

impl StagePartition {
    /// Partitions `model` for `parallelism` on `device`.
    ///
    /// # Panics
    ///
    /// Panics if the model has fewer layers than pipeline stages.
    pub fn new(model: &ModelGraph, parallelism: &ParallelismConfig, device: &DeviceSpec) -> Self {
        let p = parallelism.pipeline_stages;
        let tp = parallelism.tensor_parallel as f64;
        let mb = parallelism.microbatch_size;
        assert!(
            model.layers.len() >= p,
            "model has fewer layers ({}) than pipeline stages ({p})",
            model.layers.len()
        );

        // Greedy contiguous split balancing forward FLOPs: close a stage
        // once it reaches its fair share of what remains, while always
        // leaving enough layers for the remaining stages.
        let flops: Vec<f64> = model
            .layers
            .iter()
            .map(|l| l.fwd_flops_per_sample)
            .collect();
        let mut ranges = Vec::with_capacity(p);
        let mut start = 0usize;
        let mut remaining_flops: f64 = flops.iter().sum();
        for stage in 0..p {
            let stages_left = p - stage;
            let target = remaining_flops / stages_left as f64;
            let mut end = start;
            let mut acc = 0.0;
            let max_end = model.layers.len() - (stages_left - 1);
            while end < max_end {
                // Always take at least one layer; stop when adding the
                // next layer would overshoot the target by more than it
                // undershoots.
                let next = flops[end];
                if end > start && acc + next / 2.0 > target {
                    break;
                }
                acc += next;
                end += 1;
            }
            remaining_flops -= acc;
            ranges.push((start, end));
            start = end;
        }
        assert_eq!(start, model.layers.len(), "partition must cover all layers");

        let eff = model.efficiency.at(mb);
        let stages = ranges
            .into_iter()
            .enumerate()
            .map(|(stage, (lo, hi))| {
                let layers = &model.layers[lo..hi];
                let params: u64 = layers.iter().map(|l| l.params).sum();
                let params_per_gpu = (params as f64 / tp).round() as u64;
                let fwd_flops: f64 = layers.iter().map(|l| l.fwd_flops(mb)).sum::<f64>() / tp;
                let fwd_time = device.compute_time(fwd_flops, eff);
                let bwd_time = device.compute_time(2.0 * fwd_flops, eff);
                let opt_bytes = params_per_gpu as f64 * OPTIMIZER_TRAFFIC_BYTES_PER_PARAM;
                let opt_time = SimDuration::from_secs_f64(opt_bytes / device.hbm_bandwidth);
                let boundary = layers
                    .last()
                    .map(|l| l.boundary_bytes(mb))
                    .unwrap_or(Bytes::ZERO)
                    .mul_f64(1.0 / tp);
                let act: Bytes = layers
                    .iter()
                    .map(|l| l.activation_bytes(mb))
                    .sum::<Bytes>()
                    .mul_f64(1.0 / tp);
                let ckpt: Bytes = layers
                    .iter()
                    .map(|l| l.boundary_bytes(mb))
                    .sum::<Bytes>()
                    .mul_f64(1.0 / tp);
                let recompute = layers
                    .iter()
                    .map(|l| l.activation_bytes(mb))
                    .max()
                    .unwrap_or(Bytes::ZERO)
                    .mul_f64(1.0 / tp);
                StageProfile {
                    stage,
                    layer_range: (lo, hi),
                    params_per_gpu,
                    fwd_time,
                    bwd_time,
                    opt_time,
                    boundary_bytes_per_microbatch: boundary,
                    activation_bytes_per_microbatch: act,
                    ckpt_boundary_bytes_per_microbatch: ckpt,
                    recompute_working_set: recompute,
                }
            })
            .collect();
        StagePartition { stages }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Per-stage profiles in stage order.
    pub fn stages(&self) -> &[StageProfile] {
        &self.stages
    }

    /// The slowest stage's forward time — the pipeline's cadence.
    pub fn max_fwd_time(&self) -> SimDuration {
        self.stages
            .iter()
            .map(|s| s.fwd_time)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Imbalance ratio: slowest stage forward time over mean.
    pub fn imbalance(&self) -> f64 {
        let times: Vec<f64> = self
            .stages
            .iter()
            .map(|s| s.fwd_time.as_secs_f64())
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            times.iter().cloned().fold(0.0, f64::max) / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_model_zoo::{gpt_40b, gpt_5b};

    fn cfg_40b() -> ParallelismConfig {
        ParallelismConfig::for_40b_at_scale(8192)
    }

    #[test]
    fn covers_all_layers_contiguously() {
        let model = gpt_40b();
        let part = StagePartition::new(&model, &cfg_40b(), &DeviceSpec::v100());
        assert_eq!(part.num_stages(), 16);
        let mut expect = 0;
        for s in part.stages() {
            assert_eq!(s.layer_range.0, expect);
            assert!(s.layer_range.1 > s.layer_range.0, "stage {} empty", s.stage);
            expect = s.layer_range.1;
        }
        assert_eq!(expect, model.layers.len());
    }

    #[test]
    fn stages_are_flop_balanced() {
        let model = gpt_40b();
        let part = StagePartition::new(&model, &cfg_40b(), &DeviceSpec::v100());
        // 48 uniform blocks over 16 stages: imbalance should be small.
        assert!(part.imbalance() < 1.35, "imbalance {}", part.imbalance());
    }

    #[test]
    fn forty_b_stage_forward_time_matches_calibration() {
        // DESIGN.md anchor: 3 blocks/stage over 8 TP GPUs at 60 TFLOPS
        // effective, microbatch 2 (4096 tokens) ≈ 43-48 ms.
        let model = gpt_40b();
        let part = StagePartition::new(&model, &cfg_40b(), &DeviceSpec::v100());
        let t = part.stages()[8].fwd_time.as_secs_f64() * 1e3;
        assert!((35.0..60.0).contains(&t), "fwd_time = {t} ms");
    }

    #[test]
    fn params_divided_by_tensor_parallelism() {
        let model = gpt_40b();
        let part = StagePartition::new(&model, &cfg_40b(), &DeviceSpec::v100());
        let total_per_gpu: u64 = part.stages().iter().map(|s| s.params_per_gpu).sum();
        // Whole model split over 8-way TP: per-"GPU column" share.
        let expected = model.total_params() / 8;
        let err = (total_per_gpu as f64 - expected as f64).abs() / expected as f64;
        assert!(err < 0.01, "per-gpu params off by {err}");
    }

    #[test]
    fn five_b_and_forty_b_have_similar_per_gpu_state() {
        // The paper measured the same 4.5 GB bubble free-memory on both
        // jobs; that falls out of both holding ≈300M parameters per GPU.
        let d = DeviceSpec::v100();
        let p5 = StagePartition::new(&gpt_5b(), &ParallelismConfig::for_5b_physical(8), &d);
        let p40 = StagePartition::new(&gpt_40b(), &cfg_40b(), &d);
        let s5 = p5.stages()[7].persistent_state_bytes();
        let s40 = p40.stages()[7].persistent_state_bytes();
        let ratio = s5.as_f64() / s40.as_f64();
        assert!((0.6..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn backward_is_twice_forward() {
        let model = gpt_5b();
        let part = StagePartition::new(
            &model,
            &ParallelismConfig::for_5b_physical(8),
            &DeviceSpec::v100(),
        );
        for s in part.stages() {
            let r = s.bwd_time.as_secs_f64() / s.fwd_time.as_secs_f64();
            assert!((r - 2.0).abs() < 1e-6, "stage {}: {r}", s.stage);
        }
    }

    #[test]
    #[should_panic(expected = "fewer layers")]
    fn too_few_layers_rejected() {
        let model = pipefill_model_zoo::TransformerConfig::decoder("tiny", 128, 2, 100, 32).build();
        // 4 layers into 16 stages is impossible.
        let _ = StagePartition::new(
            &model,
            &ParallelismConfig::new(1, 16, 1, 2, 32),
            &DeviceSpec::v100(),
        );
    }
}
