//! # pipefill-pipeline
//!
//! The pipeline-parallel training engine substrate: parallelism
//! configuration, model-to-stage partitioning, pipeline instruction
//! sequences with PipeFill's explicit *bubble instruction*, GPipe and 1F1B
//! schedule generators, a dependency-driven engine that derives each
//! stage's busy/bubble timeline, the bubble-duration profiler, the
//! main-job memory model, and the optimizer-state offload planner.
//!
//! This is the reproduction of §4.2 of the paper ("Pipeline Engine
//! Instrumentation") plus the §2 background machinery it instruments. The
//! engine here executes instruction streams through a deterministic
//! dependency simulation rather than CUDA streams, but exposes exactly
//! the artifacts PipeFill consumes: per-stage bubble windows (kind,
//! duration, free memory) repeating every minibatch iteration.
//!
//! # Example
//!
//! ```
//! use pipefill_pipeline::{MainJobSpec, ScheduleKind};
//!
//! // The paper's 8K-GPU setting: 40B LLM, 16 stages, 8 microbatches.
//! let job = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
//! let timeline = job.engine_timeline();
//! let ratio = timeline.bubble_ratio();
//! assert!((ratio - 0.652).abs() < 0.03); // (p-1)/(m+p-1) = 15/23
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod bubbles;
pub mod deps;
mod engine;
mod instructions;
mod job;
mod memory;
mod offload;
mod parallelism;
mod partition;
mod profiler;
mod render;
mod schedule;

pub use analysis::{bubble_fraction, bubble_fraction_for, days_to_train, ScalingPoint};
pub use bubbles::{BubbleKind, BubbleWindow};
pub use engine::{EngineConfig, EngineError, EngineTimeline, StageTimeline};
pub use instructions::PipelineInstruction;
pub use job::MainJobSpec;
pub use memory::{activation_envelope, BubbleMemoryModel, MainJobMemoryModel};
pub use offload::{OffloadPlan, OffloadPlanner};
pub use parallelism::ParallelismConfig;
pub use partition::{StagePartition, StageProfile};
pub use profiler::{BubbleProbe, ProbeOutcome};
pub use render::render_timeline;
pub use schedule::ScheduleKind;
