//! The instrumented pipeline engine: executes per-stage instruction
//! streams through a deterministic dependency simulation and extracts each
//! stage's periodic bubble timeline — the artifact PipeFill's Executor and
//! Scheduler consume.
//!
//! Instead of hand-coding the paper's closed-form bubble formulas, the
//! engine *derives* bubbles from actual instruction timing (forwards wait
//! for upstream activations, backwards for downstream gradients), and the
//! unit tests then verify the paper's formulas fall out. This keeps 1F1B's
//! non-contiguous bubbles — the ones PipeFill deliberately does not fill
//! (§4.5) — emergent rather than asserted.

use std::collections::HashMap;

use pipefill_sim_core::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::bubbles::{BubbleKind, BubbleWindow};
use crate::deps::{self, DepKey};
use crate::instructions::PipelineInstruction;
use crate::memory::BubbleMemoryModel;
use crate::schedule::ScheduleKind;

/// Number of iterations simulated; the timeline is extracted from a
/// steady-state iteration in the middle.
const SIM_ITERATIONS: usize = 4;
/// Which iteration the timeline is extracted from.
const STEADY_ITER: usize = 2;

/// Why an instruction-stream execution could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// In-order execution wedged: every device is either done or blocked
    /// on a dependency key no completed instruction has published.
    Deadlock {
        /// The lowest-numbered blocked device.
        stage: usize,
        /// Position of the blocked instruction in that device's stream.
        position: usize,
        /// The blocked instruction itself.
        instruction: PipelineInstruction,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Deadlock {
                stage,
                position,
                instruction,
            } => write!(
                f,
                "pipeline schedule deadlocked on stage {stage}: \
                 position {position} ({instruction:?}) waits on a \
                 dependency no instruction publishes"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// One executed instruction, as the list scheduler records it:
/// `(iteration, instruction, start, end)`.
type ExecRecord = (usize, PipelineInstruction, SimTime, SimTime);

/// Everything the engine needs to run one main job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Microbatches per iteration (`m`).
    pub microbatches: usize,
    /// Per-stage forward time for one microbatch.
    pub stage_fwd: Vec<SimDuration>,
    /// Per-stage backward time for one microbatch.
    pub stage_bwd: Vec<SimDuration>,
    /// Per-stage optimizer-step time.
    pub stage_opt: Vec<SimDuration>,
    /// Activation/gradient hand-off latency between adjacent stages.
    pub comm: SimDuration,
    /// Data-parallel gradient all-reduce duration.
    pub grad_sync: SimDuration,
    /// Whether gradient sync is overlapped with backward (contributing no
    /// timeline length, the common production setting). Either way its
    /// duration defines the onload window for main-job offloading.
    pub overlap_grad_sync: bool,
    /// How bubble free-memory is reported.
    pub memory: BubbleMemoryModel,
}

impl EngineConfig {
    /// Uniform-stage convenience constructor (used heavily in tests).
    pub fn uniform(
        schedule: ScheduleKind,
        stages: usize,
        microbatches: usize,
        fwd: SimDuration,
        bwd: SimDuration,
    ) -> Self {
        EngineConfig {
            schedule,
            microbatches,
            stage_fwd: vec![fwd; stages],
            stage_bwd: vec![bwd; stages],
            stage_opt: vec![SimDuration::ZERO; stages],
            comm: SimDuration::ZERO,
            grad_sync: SimDuration::ZERO,
            overlap_grad_sync: true,
            memory: BubbleMemoryModel::measured_default(),
        }
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stage_fwd.len()
    }

    fn validate(&self) {
        let p = self.num_stages();
        assert!(p > 0, "need at least one stage");
        assert_eq!(self.stage_bwd.len(), p, "stage_bwd length mismatch");
        assert_eq!(self.stage_opt.len(), p, "stage_opt length mismatch");
        assert!(self.microbatches > 0, "need at least one microbatch");
        assert!(
            self.schedule.chunk_count() > 0,
            "interleaved schedule needs at least 1 chunk per device"
        );
        if let BubbleMemoryModel::PerStage(v) = &self.memory {
            assert_eq!(v.len(), p, "per-stage memory length mismatch");
        }
    }

    /// Runs the dependency simulation and extracts the steady-state
    /// timeline.
    ///
    /// # Panics
    ///
    /// Panics on configuration inconsistencies or if the schedule
    /// deadlocks (which would indicate a generator bug).
    pub fn run(&self) -> EngineTimeline {
        self.validate();
        let p = self.num_stages();
        let m = self.microbatches;

        // Build per-stage instruction streams for SIM_ITERATIONS. One
        // generator pass covers every stage (the interleaved schedule
        // derives all streams from a single constructive simulation),
        // and the per-iteration stream is the same emission repeated.
        let streams: Vec<Vec<(usize, PipelineInstruction)>> = self
            .schedule
            .all_stage_instructions(p, m)
            .into_iter()
            .map(|stage_stream| {
                (0..SIM_ITERATIONS)
                    .flat_map(|iter| stage_stream.iter().map(move |&i| (iter, i)))
                    .collect()
            })
            .collect();

        let records = self
            .simulate(&streams)
            .unwrap_or_else(|e| panic!("{e} (generator bug)"));
        self.extract_timeline(&records)
    }

    /// Executes arbitrary per-device instruction streams (one iteration
    /// each) through the same in-order dependency simulation `run` uses,
    /// reporting whether they complete. This is the engine-safety oracle
    /// the `schedverify` differential harness pins its static verdicts
    /// against: a stream set is "engine-safe" iff this returns `Ok`.
    ///
    /// Dependency keying and instruction durations are identical to
    /// [`EngineConfig::run`] (chunk count taken from `self.schedule`);
    /// unlike `run`, a wedged schedule is a value, not a panic.
    ///
    /// # Errors
    ///
    /// [`EngineError::Deadlock`] when in-order execution cannot complete.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len()` differs from the configured stage count.
    pub fn execute_streams(&self, streams: &[Vec<PipelineInstruction>]) -> Result<(), EngineError> {
        assert_eq!(
            streams.len(),
            self.num_stages(),
            "stream count must match the configured stage count"
        );
        let tagged: Vec<Vec<(usize, PipelineInstruction)>> = streams
            .iter()
            .map(|stream| stream.iter().map(|&i| (0, i)).collect())
            .collect();
        self.simulate(&tagged).map(|_| ())
    }

    /// Dependency-driven list scheduling over iteration-tagged streams.
    /// End-time maps are keyed by `(iteration, DepKey)`; the keying
    /// itself — virtual stages, cross-device hand-offs — lives in
    /// [`crate::deps`], shared with the static verifier.
    fn simulate(
        &self,
        streams: &[Vec<(usize, PipelineInstruction)>],
    ) -> Result<Vec<Vec<ExecRecord>>, EngineError> {
        let p = self.num_stages();
        let chunks = self.schedule.chunk_count();
        let mut done: HashMap<(usize, DepKey), SimTime> = HashMap::new();
        let mut next = vec![0usize; p];
        let mut free = vec![SimTime::ZERO; p];
        let mut records: Vec<Vec<ExecRecord>> = vec![Vec::new(); p];

        loop {
            let mut progressed = false;
            for s in 0..p {
                while next[s] < streams[s].len() {
                    let (iter, instr) = streams[s][next[s]];
                    let dep = match deps::consumed(instr, s, p, chunks) {
                        None => SimTime::ZERO,
                        Some(edge) => match done.get(&(iter, edge.key)) {
                            Some(&t) if edge.crosses_device => t + self.comm,
                            Some(&t) => t,
                            None => break,
                        },
                    };
                    let start = free[s].max(dep);
                    let end = start + self.instruction_duration(instr, s);
                    if let Some(key) = deps::produced(instr, s, p) {
                        done.insert((iter, key), end);
                    }
                    records[s].push((iter, instr, start, end));
                    free[s] = end;
                    next[s] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for s in 0..p {
            if next[s] < streams[s].len() {
                return Err(EngineError::Deadlock {
                    stage: s,
                    position: next[s],
                    instruction: streams[s][next[s]].1,
                });
            }
        }
        Ok(records)
    }

    /// How long `instr` occupies device `stage` — exactly the durations
    /// the dependency simulation schedules with, published so static
    /// analyses can weight the same DAG the engine executes.
    ///
    /// Chunked compute slices `1/chunks` of the stage total (chunk count
    /// from the configured schedule), telescoped so chunk durations sum
    /// exactly to the stage's; ZB-H1's split makes `B` the
    /// activation-gradient half and `W` the weight-gradient remainder
    /// (together exactly the full backward).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn instruction_duration(&self, instr: PipelineInstruction, stage: usize) -> SimDuration {
        let chunks = self.schedule.chunk_count() as u64;
        // Per-chunk compute: slice `1/chunks` of the stage total,
        // telescoped so chunk durations sum exactly to the stage's.
        let chunk_slice = |total: SimDuration, c: usize| -> SimDuration {
            total * (c as u64 + 1) / chunks - total * c as u64 / chunks
        };
        match instr {
            PipelineInstruction::Forward { .. } => self.stage_fwd[stage],
            PipelineInstruction::Backward { .. } => self.stage_bwd[stage],
            PipelineInstruction::ForwardChunk { chunk, .. } => {
                chunk_slice(self.stage_fwd[stage], chunk)
            }
            PipelineInstruction::BackwardChunk { chunk, .. } => {
                chunk_slice(self.stage_bwd[stage], chunk)
            }
            PipelineInstruction::BackwardInput { .. } => self.stage_bwd[stage] / 2,
            PipelineInstruction::BackwardWeight { .. } => {
                self.stage_bwd[stage] - self.stage_bwd[stage] / 2
            }
            PipelineInstruction::OptimizerStep => self.stage_opt[stage],
            PipelineInstruction::GradSync => {
                if self.overlap_grad_sync {
                    SimDuration::ZERO
                } else {
                    self.grad_sync
                }
            }
            PipelineInstruction::Bubble { .. } => SimDuration::ZERO,
        }
    }

    fn extract_timeline(&self, records: &[Vec<ExecRecord>]) -> EngineTimeline {
        let p = self.num_stages();
        // Start of an iteration on a stage = start of its first busy
        // (non-zero-duration) instruction of that iteration. A miss means
        // the schedule emitted an all-idle iteration — a bug worth a loud
        // panic, not a defaulted timestamp.
        let iter_start = |s: usize, k: usize| -> SimTime {
            records[s]
                .iter()
                .find(|(iter, _, start, end)| *iter == k && end > start)
                .map(|&(_, _, start, _)| start)
                .expect("iteration has at least one busy instruction")
        };

        let t0 = iter_start(0, STEADY_ITER);
        let period = iter_start(0, STEADY_ITER + 1) - t0;
        // Periodicity check: the previous iteration must show the same
        // period, or we are not in steady state.
        let prev_period = t0 - iter_start(0, STEADY_ITER - 1);
        assert_eq!(
            period, prev_period,
            "engine not in steady state by iteration {STEADY_ITER}"
        );

        let mut stages = Vec::with_capacity(p);
        for (s, stage_records) in records.iter().enumerate().take(p) {
            let window_start = iter_start(s, STEADY_ITER);
            let window_end = iter_start(s, STEADY_ITER + 1);
            let anchor_offset = window_start.saturating_since(t0);

            // Busy intervals inside the stage's window, in time order.
            let mut intervals: Vec<(SimTime, SimTime, PipelineInstruction)> = stage_records
                .iter()
                .filter(|(iter, _, start, end)| *iter == STEADY_ITER && end > start)
                .map(|&(_, instr, start, end)| (start, end, instr))
                .collect();
            intervals.sort_by_key(|&(start, _, _)| start);

            let first_bwd_start = intervals
                .iter()
                .find(|(_, _, i)| i.is_backward())
                .map(|&(start, _, _)| start);

            let period = window_end - window_start;
            let mut windows = Vec::new();
            let mut busy = SimDuration::ZERO;
            let mut cursor = window_start;
            for &(start, end, _) in &intervals {
                if start > cursor {
                    let kind = if Some(start) == first_bwd_start {
                        BubbleKind::FwdBwd
                    } else {
                        BubbleKind::NonContiguous
                    };
                    windows.push(BubbleWindow::within_period(
                        kind,
                        cursor - window_start,
                        start - cursor,
                        self.memory.free(s, kind),
                        period,
                    ));
                }
                busy += end - start;
                cursor = cursor.max(end);
            }
            if window_end > cursor {
                windows.push(BubbleWindow::within_period(
                    BubbleKind::FillDrain,
                    cursor - window_start,
                    window_end - cursor,
                    self.memory.free(s, BubbleKind::FillDrain),
                    period,
                ));
            }
            debug_assert!(
                windows
                    .windows(2)
                    .all(|w| w[0].offset + w[0].duration <= w[1].offset),
                "stage {s}: bubble windows overlap or are unordered"
            );

            stages.push(StageTimeline {
                stage: s,
                anchor_offset,
                windows,
                busy,
            });
        }

        EngineTimeline { period, stages }
    }
}

/// One stage's periodic timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTimeline {
    /// Stage index.
    pub stage: usize,
    /// Phase of this stage's period window relative to stage 0's.
    pub anchor_offset: SimDuration,
    /// Idle windows within one period, ordered by offset (relative to
    /// this stage's anchor).
    pub windows: Vec<BubbleWindow>,
    /// Device-busy time per period.
    pub busy: SimDuration,
}

impl StageTimeline {
    /// Total bubble time per period.
    pub fn bubble_time(&self) -> SimDuration {
        self.windows.iter().map(|w| w.duration).sum()
    }

    /// Total fillable bubble time per period.
    pub fn fillable_time(&self) -> SimDuration {
        self.windows
            .iter()
            .filter(|w| w.fillable())
            .map(|w| w.duration)
            .sum()
    }

    /// The fillable windows, in period order.
    pub fn fillable_windows(&self) -> Vec<BubbleWindow> {
        self.windows
            .iter()
            .filter(|w| w.fillable())
            .copied()
            .collect()
    }
}

/// The engine's steady-state output: one period length plus per-stage
/// windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineTimeline {
    /// Iteration period (identical across stages).
    pub period: SimDuration,
    /// Per-stage timelines, indexed by stage.
    pub stages: Vec<StageTimeline>,
}

impl EngineTimeline {
    /// Fraction of all GPU time spent in bubbles — the paper's
    /// `(p-1)/(m+p-1)` for uniform stages.
    pub fn bubble_ratio(&self) -> f64 {
        let total: SimDuration = self.stages.iter().map(|s| s.bubble_time()).sum();
        total.ratio(self.period * self.stages.len() as u64)
    }

    /// Fraction of all GPU time in *fillable* bubbles (excludes 1F1B's
    /// non-contiguous gaps).
    pub fn fillable_ratio(&self) -> f64 {
        let total: SimDuration = self.stages.iter().map(|s| s.fillable_time()).sum();
        total.ratio(self.period * self.stages.len() as u64)
    }

    /// Total bubble time per iteration across stages.
    pub fn total_bubble_time(&self) -> SimDuration {
        self.stages.iter().map(|s| s.bubble_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    /// GPipe with uniform stages and zero comm must reproduce the
    /// closed-form bubble structure exactly.
    #[test]
    fn gpipe_matches_closed_form() {
        let (p, m) = (4usize, 6usize);
        let (tf, tb) = (ms(10), ms(20));
        let tl = EngineConfig::uniform(ScheduleKind::GPipe, p, m, tf, tb).run();
        // Period = (m + p - 1) (tf + tb).
        assert_eq!(tl.period, (tf + tb) * (m + p - 1) as u64);
        for (s, st) in tl.stages.iter().enumerate() {
            // Busy = m (tf + tb).
            assert_eq!(st.busy, (tf + tb) * m as u64, "stage {s}");
            // fwd-bwd bubble = (p-1-s)(tf+tb); fill-drain = s(tf+tb).
            let fwd_bwd: SimDuration = st
                .windows
                .iter()
                .filter(|w| w.kind == BubbleKind::FwdBwd)
                .map(|w| w.duration)
                .sum();
            let fill_drain: SimDuration = st
                .windows
                .iter()
                .filter(|w| w.kind == BubbleKind::FillDrain)
                .map(|w| w.duration)
                .sum();
            assert_eq!(fwd_bwd, (tf + tb) * (p - 1 - s) as u64, "stage {s} fwd-bwd");
            assert_eq!(fill_drain, (tf + tb) * s as u64, "stage {s} fill-drain");
            assert!(
                st.windows
                    .iter()
                    .all(|w| w.kind != BubbleKind::NonContiguous),
                "GPipe with uniform stages has no non-contiguous bubbles"
            );
        }
        // Bubble ratio = (p-1)/(m+p-1).
        let expect = (p - 1) as f64 / (m + p - 1) as f64;
        assert!((tl.bubble_ratio() - expect).abs() < 1e-9);
        assert!((tl.fillable_ratio() - expect).abs() < 1e-9);
    }

    /// 1F1B keeps the same period and total bubble time as GPipe but part
    /// of it becomes non-contiguous (§4.5: "the total bubble time is the
    /// same for both schedules").
    #[test]
    fn one_f_one_b_same_total_bubble_less_fillable() {
        let (p, m) = (4usize, 8usize);
        let (tf, tb) = (ms(10), ms(20));
        let gpipe = EngineConfig::uniform(ScheduleKind::GPipe, p, m, tf, tb).run();
        let ofob = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb).run();
        assert_eq!(gpipe.period, ofob.period);
        assert!((gpipe.bubble_ratio() - ofob.bubble_ratio()).abs() < 1e-9);
        assert!(
            ofob.fillable_ratio() < gpipe.fillable_ratio(),
            "1F1B: {} vs GPipe: {}",
            ofob.fillable_ratio(),
            gpipe.fillable_ratio()
        );
        // Non-contiguous bubbles exist on early stages.
        assert!(ofob.stages[0]
            .windows
            .iter()
            .any(|w| w.kind == BubbleKind::NonContiguous));
    }

    /// The paper's 1F1B fwd-bwd bubble formula:
    /// (p-s-1)·t_bwd + max(0, p-s-m)·t_fwd.
    #[test]
    fn one_f_one_b_fwd_bwd_formula() {
        let (p, m) = (6usize, 4usize);
        let (tf, tb) = (ms(10), ms(20));
        let tl = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb).run();
        for (s, st) in tl.stages.iter().enumerate() {
            let fwd_bwd: SimDuration = st
                .windows
                .iter()
                .filter(|w| w.kind == BubbleKind::FwdBwd)
                .map(|w| w.duration)
                .sum();
            let expect = tb * (p - 1 - s) as u64 + tf * (p - s).saturating_sub(m) as u64;
            assert_eq!(fwd_bwd, expect, "stage {s}");
        }
    }

    /// At large scale (small m) the non-contiguous share shrinks, closing
    /// the GPipe↔1F1B fillable gap (Fig. 8's trend).
    #[test]
    fn schedule_gap_closes_at_scale() {
        let (p, tf, tb) = (16usize, ms(10), ms(20));
        let gap = |m: usize| {
            let g = EngineConfig::uniform(ScheduleKind::GPipe, p, m, tf, tb)
                .run()
                .fillable_ratio();
            let o = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb)
                .run()
                .fillable_ratio();
            (g - o) / g
        };
        let gap_low_scale = gap(64); // 1K GPUs
        let gap_high_scale = gap(4); // 16K GPUs
        assert!(
            gap_high_scale < gap_low_scale,
            "low={gap_low_scale} high={gap_high_scale}"
        );
        // Raw fillable-time gap at m=4 is (m-1)·tf per stage ≈ 6-7%; the
        // paper's <5% figure is after fill-job efficiency compression.
        assert!(gap_high_scale < 0.08, "high-scale gap {gap_high_scale}");
    }

    #[test]
    fn bubble_windows_partition_idle_time() {
        let tl = EngineConfig::uniform(ScheduleKind::OneFOneB, 5, 7, ms(13), ms(29)).run();
        for st in &tl.stages {
            assert_eq!(st.busy + st.bubble_time(), tl.period, "stage {}", st.stage);
            // Windows are ordered and non-overlapping.
            let mut cursor = SimDuration::ZERO;
            for w in &st.windows {
                assert!(w.offset >= cursor, "window overlap on stage {}", st.stage);
                cursor = w.offset + w.duration;
            }
        }
    }

    #[test]
    fn comm_latency_stretches_period() {
        let base = EngineConfig::uniform(ScheduleKind::GPipe, 4, 4, ms(10), ms(20));
        let mut with_comm = base.clone();
        with_comm.comm = ms(2);
        assert!(with_comm.run().period > base.run().period);
    }

    #[test]
    fn optimizer_time_adds_busy_time() {
        let mut cfg = EngineConfig::uniform(ScheduleKind::GPipe, 4, 4, ms(10), ms(20));
        cfg.stage_opt = vec![ms(5); 4];
        let tl = cfg.run();
        assert_eq!(tl.stages[0].busy, ms((10 + 20) * 4 + 5));
    }

    #[test]
    fn non_overlapped_grad_sync_is_busy() {
        let mut cfg = EngineConfig::uniform(ScheduleKind::GPipe, 4, 4, ms(10), ms(20));
        cfg.grad_sync = ms(50);
        cfg.overlap_grad_sync = false;
        let tl = cfg.run();
        assert_eq!(tl.stages[0].busy, ms((10 + 20) * 4 + 50));
        cfg.overlap_grad_sync = true;
        assert_eq!(cfg.run().stages[0].busy, ms((10 + 20) * 4));
    }

    #[test]
    fn anchor_offsets_increase_downstream_for_gpipe() {
        let tl = EngineConfig::uniform(ScheduleKind::GPipe, 4, 4, ms(10), ms(20)).run();
        // Stage s starts its forward phase s·tf after stage 0.
        for (s, st) in tl.stages.iter().enumerate() {
            assert_eq!(st.anchor_offset, ms(10) * s as u64, "stage {s}");
        }
    }

    #[test]
    fn single_stage_pipeline_has_no_bubbles() {
        let tl = EngineConfig::uniform(ScheduleKind::GPipe, 1, 4, ms(10), ms(20)).run();
        assert_eq!(tl.bubble_ratio(), 0.0);
        assert!(tl.stages[0].windows.is_empty());
    }

    #[test]
    #[should_panic(expected = "stage_bwd length mismatch")]
    fn mismatched_config_rejected() {
        let mut cfg = EngineConfig::uniform(ScheduleKind::GPipe, 4, 4, ms(10), ms(20));
        cfg.stage_bwd.pop();
        let _ = cfg.run();
    }

    /// `execute_streams` is the non-panicking oracle: every built-in
    /// stream set completes, and a cross-device order inversion —
    /// wellformed on each device in isolation — reports a deadlock value
    /// instead of panicking.
    #[test]
    fn execute_streams_completes_builtins_and_reports_deadlock() {
        for kind in ScheduleKind::ALL {
            let cfg = EngineConfig::uniform(kind, 4, 8, ms(10), ms(20));
            let streams = kind.all_stage_instructions(4, 8);
            assert!(cfg.execute_streams(&streams).is_ok(), "{kind}");
        }
        // dev0: F0 B0 F1 B1 / dev1: F1 F0 B0 B1 — dev0's B0 waits on
        // dev1's B0, which program-order-follows dev1's F1, which waits
        // on dev0's F1, which program-order-follows dev0's B0.
        use PipelineInstruction::{Backward, Forward};
        let wedged = vec![
            vec![
                Forward { microbatch: 0 },
                Backward { microbatch: 0 },
                Forward { microbatch: 1 },
                Backward { microbatch: 1 },
            ],
            vec![
                Forward { microbatch: 1 },
                Forward { microbatch: 0 },
                Backward { microbatch: 0 },
                Backward { microbatch: 1 },
            ],
        ];
        let cfg = EngineConfig::uniform(ScheduleKind::OneFOneB, 2, 2, ms(10), ms(20));
        let err = cfg
            .execute_streams(&wedged)
            .expect_err("cyclic streams wedge");
        assert_eq!(
            err,
            EngineError::Deadlock {
                stage: 0,
                position: 1,
                instruction: Backward { microbatch: 0 },
            }
        );
        assert!(err.to_string().contains("deadlocked on stage 0"), "{err}");
    }

    /// The published per-instruction durations are the ones the
    /// simulation schedules with: chunk slices telescope to the stage
    /// total and the ZB-H1 halves recompose the full backward.
    #[test]
    fn instruction_durations_telescope() {
        let cfg = EngineConfig::uniform(
            ScheduleKind::Interleaved { chunks: 3 },
            4,
            4,
            ms(10),
            ms(25),
        );
        let fwd: SimDuration = (0..3)
            .map(|c| {
                cfg.instruction_duration(
                    PipelineInstruction::ForwardChunk {
                        chunk: c,
                        microbatch: 0,
                    },
                    1,
                )
            })
            .sum();
        assert_eq!(fwd, ms(10));
        let zb = EngineConfig::uniform(ScheduleKind::ZbH1, 4, 4, ms(10), ms(25));
        let b = zb.instruction_duration(PipelineInstruction::BackwardInput { microbatch: 0 }, 0);
        let w = zb.instruction_duration(PipelineInstruction::BackwardWeight { microbatch: 0 }, 0);
        assert_eq!(b + w, ms(25));
    }

    /// ZB-H1 with uniform stages and m ≥ p reproduces the Qi et al.
    /// closed form exactly: per-stage bubble (p-1)(t_f + t_B - t_W) and
    /// period m(t_f + t_b) + (p-1)(t_f + t_B - t_W).
    #[test]
    fn zb_h1_matches_closed_form() {
        for (p, m) in [(2usize, 4usize), (4, 8), (8, 16), (16, 16)] {
            let (tf, tb) = (ms(10), ms(20));
            let tl = EngineConfig::uniform(ScheduleKind::ZbH1, p, m, tf, tb).run();
            // t_B = t_W = t_b / 2, so the residual ramp term is t_f alone.
            let ramp = tf * (p - 1) as u64;
            assert_eq!(tl.period, (tf + tb) * m as u64 + ramp, "p={p} m={m}");
            for (s, st) in tl.stages.iter().enumerate() {
                assert_eq!(st.busy, (tf + tb) * m as u64, "p={p} m={m} stage {s}");
                assert_eq!(st.bubble_time(), ramp, "p={p} m={m} stage {s}");
            }
            let expect = (p - 1) as f64 * 10.0 / (m as f64 * 30.0 + (p - 1) as f64 * 10.0);
            assert!((tl.bubble_ratio() - expect).abs() < 1e-9, "p={p} m={m}");
        }
    }

    /// ZB-H1 strictly shrinks both total and fillable bubble relative to
    /// 1F1B, and every remaining window is fillable (the W-fill converts
    /// the fragmented drain gaps into solid compute).
    #[test]
    fn zb_h1_beats_one_f_one_b() {
        let (p, m) = (8usize, 16usize);
        let (tf, tb) = (ms(10), ms(20));
        let ofob = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb).run();
        let zb = EngineConfig::uniform(ScheduleKind::ZbH1, p, m, tf, tb).run();
        assert!(zb.period < ofob.period);
        assert!(zb.bubble_ratio() < ofob.bubble_ratio());
        assert!(zb.total_bubble_time() < ofob.total_bubble_time());
    }

    /// Interleaving shrinks the total bubble below 1F1B's, monotonically
    /// in the chunk count, while fragmenting what remains (fillable share
    /// drops even faster — the Fig. 8 trade-off at its sharpest).
    #[test]
    fn interleaving_shrinks_but_fragments_bubbles() {
        let (p, m) = (4usize, 8usize);
        let (tf, tb) = (ms(10), ms(20));
        let ofob = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, tf, tb).run();
        let il2 =
            EngineConfig::uniform(ScheduleKind::Interleaved { chunks: 2 }, p, m, tf, tb).run();
        let il4 =
            EngineConfig::uniform(ScheduleKind::Interleaved { chunks: 4 }, p, m, tf, tb).run();
        assert!(il2.bubble_ratio() < ofob.bubble_ratio());
        assert!(il4.bubble_ratio() < il2.bubble_ratio());
        assert!(il2.period < ofob.period);
        // The ideal interleaved geometry lower-bounds the realized one.
        let ideal2 = crate::analysis::bubble_fraction_for(
            ScheduleKind::Interleaved { chunks: 2 },
            p,
            m,
            2.0,
        );
        assert!(il2.bubble_ratio() >= ideal2 - 1e-9);
        // Fragmentation: interleaved fills a smaller share of a smaller
        // bubble than 1F1B does.
        assert!(il2.fillable_ratio() < ofob.fillable_ratio());
        assert!(
            il2.stages.iter().any(|s| s
                .windows
                .iter()
                .any(|w| w.kind == BubbleKind::NonContiguous)),
            "interleaving induces non-contiguous fragments"
        );
    }

    /// The conformance pin's engine half: 1-chunk interleaved is 1F1B
    /// bit for bit, timelines included.
    #[test]
    fn one_chunk_interleaved_timeline_equals_one_f_one_b() {
        for (p, m) in [(4usize, 8usize), (8, 4), (1, 2)] {
            let il = EngineConfig::uniform(
                ScheduleKind::Interleaved { chunks: 1 },
                p,
                m,
                ms(13),
                ms(29),
            )
            .run();
            let ofob = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, ms(13), ms(29)).run();
            assert_eq!(il, ofob, "p={p} m={m}");
        }
    }

    /// Busy + bubble time still partitions the period for the new
    /// schedules (the invariant the proptests sweep much wider).
    #[test]
    fn new_schedules_partition_the_period() {
        for schedule in [
            ScheduleKind::Interleaved { chunks: 2 },
            ScheduleKind::Interleaved { chunks: 3 },
            ScheduleKind::ZbH1,
        ] {
            let tl = EngineConfig::uniform(schedule, 5, 7, ms(13), ms(29)).run();
            for st in &tl.stages {
                assert_eq!(
                    st.busy + st.bubble_time(),
                    tl.period,
                    "{schedule} stage {}",
                    st.stage
                );
                let mut cursor = SimDuration::ZERO;
                for w in &st.windows {
                    assert!(w.offset >= cursor, "{schedule} window overlap");
                    cursor = w.offset + w.duration;
                }
                assert!(cursor <= tl.period, "{schedule} windows exceed period");
            }
        }
    }
}
