//! Closed-form pipeline analysis: the bubble-fraction formula and the
//! training-time arithmetic behind Figs. 1 and 4.

use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

/// The idle-time fraction of synchronous unidirectional pipeline
/// schedules: `(p − 1) / (m + p − 1)` (§2.1), for `p` stages and `m`
/// microbatches.
///
/// # Example
///
/// ```
/// use pipefill_pipeline::bubble_fraction;
///
/// // The paper's 8K-GPU point: p=16, m=8 → 65.2%.
/// assert!((bubble_fraction(16, 8) - 0.652).abs() < 0.001);
/// ```
///
/// # Panics
///
/// Panics if `p` or `m` is zero.
pub fn bubble_fraction(p: usize, m: usize) -> f64 {
    assert!(p > 0 && m > 0, "p and m must be positive");
    (p - 1) as f64 / (m + p - 1) as f64
}

/// Closed-form bubble fraction of each supported schedule, for `p`
/// stages, `m` microbatches and a backward/forward time ratio `r`
/// (`t_b = r·t_f`; the repo's calibration is `r = 2`). This is what the
/// coarse fidelity pins the engine against, and what the schedule sweeps
/// report alongside the measured geometry:
///
/// * GPipe and 1F1B: `(p-1)/(m+p-1)` — same total bubble, different
///   fillability (§2.1, §4.5).
/// * Interleaved 1F1B with `v` chunks: the fill/drain ramp shrinks to
///   `(p-1)/v` chunk-slots → `(p-1)/(v·m + p - 1)`. This is the ideal
///   (perfectly packed) geometry, a *lower bound* on what any realizable
///   interleaved schedule — including the engine's — measures; the
///   realized value sits between it and 1F1B's fraction.
/// * ZB-H1: per-stage bubble drops from `(p-1)(t_f+t_b)` to
///   `(p-1)(t_f + t_B - t_W)` with `t_B = t_W = t_b/2`, i.e.
///   `(p-1)·t_f` → `(p-1)/((1+r)·m + p - 1)`, which the engine
///   reproduces exactly for uniform stages.
///
/// Valid in the paper's regime `m >= p`; below it the schedules pick up
/// extra forward-starvation terms the engine measures directly.
///
/// # Panics
///
/// Panics if `p` or `m` is zero, or `r` is not positive.
pub fn bubble_fraction_for(
    schedule: crate::schedule::ScheduleKind,
    p: usize,
    m: usize,
    r: f64,
) -> f64 {
    use crate::schedule::ScheduleKind;
    assert!(p > 0 && m > 0, "p and m must be positive");
    assert!(r > 0.0, "backward/forward ratio must be positive");
    let p1 = (p - 1) as f64;
    match schedule {
        ScheduleKind::GPipe | ScheduleKind::OneFOneB => p1 / (m as f64 + p1),
        ScheduleKind::Interleaved { chunks } => {
            assert!(chunks > 0, "interleaved needs at least 1 chunk");
            p1 / (chunks as f64 * m as f64 + p1)
        }
        ScheduleKind::ZbH1 => p1 / ((1.0 + r) * m as f64 + p1),
    }
}

/// Wall-clock days to finish a token budget at one iteration per
/// `iteration_time`.
///
/// # Panics
///
/// Panics if `tokens_per_iteration` is not positive.
pub fn days_to_train(
    total_tokens: f64,
    tokens_per_iteration: f64,
    iteration_time: SimDuration,
) -> f64 {
    assert!(
        tokens_per_iteration > 0.0,
        "tokens per iteration must be positive"
    );
    let steps = total_tokens / tokens_per_iteration;
    steps * iteration_time.as_secs_f64() / 86_400.0
}

/// One point of the scaling study (a row of Fig. 4's series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Total GPUs.
    pub gpus: usize,
    /// Microbatches per pipeline replica.
    pub microbatches: usize,
    /// Engine-measured bubble ratio.
    pub bubble_ratio: f64,
    /// Fillable bubble ratio (excludes non-contiguous gaps).
    pub fillable_ratio: f64,
    /// Minibatch iteration time.
    pub iteration_time: SimDuration,
    /// Days to complete the training-token budget.
    pub days_to_train: f64,
    /// Main-job TFLOPS per GPU averaged over the iteration (Fig. 4c's
    /// "Traditional PP" series).
    pub main_job_tflops_per_gpu: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_fraction_matches_paper_series() {
        // DESIGN.md: m = 64/32/16/8/4 ↔ 19.0/31.9/48.4/65.2/78.9 %.
        let cases = [
            (64, 0.1899),
            (32, 0.3191),
            (16, 0.4839),
            (8, 0.6522),
            (4, 0.7895),
        ];
        for (m, expect) in cases {
            let got = bubble_fraction(16, m);
            assert!((got - expect).abs() < 5e-4, "m={m}: {got}");
        }
    }

    #[test]
    fn bubble_fraction_limits() {
        assert_eq!(bubble_fraction(1, 10), 0.0);
        assert!(bubble_fraction(1000, 1) >= 0.999);
    }

    #[test]
    fn per_schedule_fractions_are_ordered() {
        use crate::schedule::ScheduleKind;
        for (p, m) in [(4usize, 8usize), (8, 16), (16, 64)] {
            let gpipe = bubble_fraction_for(ScheduleKind::GPipe, p, m, 2.0);
            let ofob = bubble_fraction_for(ScheduleKind::OneFOneB, p, m, 2.0);
            let il2 = bubble_fraction_for(ScheduleKind::Interleaved { chunks: 2 }, p, m, 2.0);
            let il4 = bubble_fraction_for(ScheduleKind::Interleaved { chunks: 4 }, p, m, 2.0);
            let zb = bubble_fraction_for(ScheduleKind::ZbH1, p, m, 2.0);
            assert_eq!(gpipe, ofob, "total bubble is schedule-independent");
            assert_eq!(gpipe, bubble_fraction(p, m));
            assert!(il2 < ofob, "p={p} m={m}");
            assert!(il4 < il2, "p={p} m={m}");
            assert!(zb < ofob, "p={p} m={m}");
        }
        // 1-chunk interleaved degenerates to 1F1B's fraction.
        assert_eq!(
            bubble_fraction_for(ScheduleKind::Interleaved { chunks: 1 }, 8, 16, 2.0),
            bubble_fraction_for(ScheduleKind::OneFOneB, 8, 16, 2.0)
        );
        // ZB-H1's fraction at r=2 equals the (1+r)·m stretch: p=16, m=8
        // → 15 / (24 + 15).
        let zb = bubble_fraction_for(ScheduleKind::ZbH1, 16, 8, 2.0);
        assert!((zb - 15.0 / 39.0).abs() < 1e-12, "{zb}");
    }

    #[test]
    fn figure2_doubling_example() {
        // Fig. 2: p=4; doubling pipelines halves m from 4 to 2; the bubble
        // fraction rises from 3/7 to 3/5 — "about 40%".
        let before = bubble_fraction(4, 4);
        let after = bubble_fraction(4, 2);
        let increase = (after - before) / before;
        assert!((increase - 0.4).abs() < 0.01, "increase {increase}");
    }

    #[test]
    fn days_scale_inversely_with_iteration_time() {
        let d1 = days_to_train(1.0e12, 2.0e6, SimDuration::from_secs_f64(10.0));
        let d2 = days_to_train(1.0e12, 2.0e6, SimDuration::from_secs_f64(5.0));
        assert!((d1 / d2 - 2.0).abs() < 1e-9);
        // 500K steps × 10 s ≈ 57.9 days.
        assert!((d1 - 57.87).abs() < 0.01, "{d1}");
    }
}
