//! Closed-form pipeline analysis: the bubble-fraction formula and the
//! training-time arithmetic behind Figs. 1 and 4.

use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

/// The idle-time fraction of synchronous unidirectional pipeline
/// schedules: `(p − 1) / (m + p − 1)` (§2.1), for `p` stages and `m`
/// microbatches.
///
/// # Example
///
/// ```
/// use pipefill_pipeline::bubble_fraction;
///
/// // The paper's 8K-GPU point: p=16, m=8 → 65.2%.
/// assert!((bubble_fraction(16, 8) - 0.652).abs() < 0.001);
/// ```
///
/// # Panics
///
/// Panics if `p` or `m` is zero.
pub fn bubble_fraction(p: usize, m: usize) -> f64 {
    assert!(p > 0 && m > 0, "p and m must be positive");
    (p - 1) as f64 / (m + p - 1) as f64
}

/// Wall-clock days to finish a token budget at one iteration per
/// `iteration_time`.
///
/// # Panics
///
/// Panics if `tokens_per_iteration` is not positive.
pub fn days_to_train(
    total_tokens: f64,
    tokens_per_iteration: f64,
    iteration_time: SimDuration,
) -> f64 {
    assert!(
        tokens_per_iteration > 0.0,
        "tokens per iteration must be positive"
    );
    let steps = total_tokens / tokens_per_iteration;
    steps * iteration_time.as_secs_f64() / 86_400.0
}

/// One point of the scaling study (a row of Fig. 4's series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Total GPUs.
    pub gpus: usize,
    /// Microbatches per pipeline replica.
    pub microbatches: usize,
    /// Engine-measured bubble ratio.
    pub bubble_ratio: f64,
    /// Fillable bubble ratio (excludes non-contiguous gaps).
    pub fillable_ratio: f64,
    /// Minibatch iteration time.
    pub iteration_time: SimDuration,
    /// Days to complete the training-token budget.
    pub days_to_train: f64,
    /// Main-job TFLOPS per GPU averaged over the iteration (Fig. 4c's
    /// "Traditional PP" series).
    pub main_job_tflops_per_gpu: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_fraction_matches_paper_series() {
        // DESIGN.md: m = 64/32/16/8/4 ↔ 19.0/31.9/48.4/65.2/78.9 %.
        let cases = [
            (64, 0.1899),
            (32, 0.3191),
            (16, 0.4839),
            (8, 0.6522),
            (4, 0.7895),
        ];
        for (m, expect) in cases {
            let got = bubble_fraction(16, m);
            assert!((got - expect).abs() < 5e-4, "m={m}: {got}");
        }
    }

    #[test]
    fn bubble_fraction_limits() {
        assert_eq!(bubble_fraction(1, 10), 0.0);
        assert!(bubble_fraction(1000, 1) >= 0.999);
    }

    #[test]
    fn figure2_doubling_example() {
        // Fig. 2: p=4; doubling pipelines halves m from 4 to 2; the bubble
        // fraction rises from 3/7 to 3/5 — "about 40%".
        let before = bubble_fraction(4, 4);
        let after = bubble_fraction(4, 2);
        let increase = (after - before) / before;
        assert!((increase - 0.4).abs() < 0.01, "increase {increase}");
    }

    #[test]
    fn days_scale_inversely_with_iteration_time() {
        let d1 = days_to_train(1.0e12, 2.0e6, SimDuration::from_secs_f64(10.0));
        let d2 = days_to_train(1.0e12, 2.0e6, SimDuration::from_secs_f64(5.0));
        assert!((d1 / d2 - 2.0).abs() < 1e-9);
        // 500K steps × 10 s ≈ 57.9 days.
        assert!((d1 - 57.87).abs() < 0.01, "{d1}");
    }
}
