//! The main-job specification: everything needed to stand up one
//! pipeline-parallel training job and extract its bubble timeline.

use pipefill_device::{DeviceSpec, LinkSpec};
use pipefill_model_zoo::{gpt_40b, gpt_5b, ModelGraph};
use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

use crate::analysis::{days_to_train, ScalingPoint};
use crate::engine::{EngineConfig, EngineTimeline};
use crate::memory::BubbleMemoryModel;
use crate::parallelism::ParallelismConfig;
use crate::partition::StagePartition;
use crate::schedule::ScheduleKind;

/// The paper's 40B job trains on a fixed token budget; this value is
/// fitted so 1K GPUs ≈ 82 days (Fig. 4a's anchor).
pub const DEFAULT_TRAINING_TOKENS: f64 = 1.4e12;

/// A fully specified pipeline-parallel main job.
///
/// # Example
///
/// ```
/// use pipefill_pipeline::{MainJobSpec, ScheduleKind};
///
/// let job = MainJobSpec::simulator_40b(64, ScheduleKind::GPipe); // 1K GPUs
/// assert_eq!(job.parallelism.total_gpus(), 1024);
/// let point = job.scaling_point();
/// assert!((point.days_to_train - 82.0).abs() < 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MainJobSpec {
    /// The trained model.
    pub model: ModelGraph,
    /// Combined-parallelism configuration.
    pub parallelism: ParallelismConfig,
    /// Per-GPU hardware.
    pub device: DeviceSpec,
    /// Stage-to-stage interconnect (activations/gradients cross nodes).
    pub inter_stage_link: LinkSpec,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// How bubble free-memory is reported to fill jobs.
    pub memory: BubbleMemoryModel,
    /// Token budget for days-to-train arithmetic.
    pub training_tokens: f64,
    /// Idealize stages as uniform (mean forward/backward times). The
    /// paper's simulator replays one profiled instruction pattern for all
    /// stages, which is equivalent to this idealization; it is therefore
    /// the default. Disable to study the imbalance introduced by the
    /// embedding/LM-head stages.
    pub uniform_stages: bool,
}

impl MainJobSpec {
    /// The simulator's 40B main job (§5.2) at a given microbatch count
    /// (the data-parallel degree follows from the fixed 1024-sequence
    /// minibatch: m=64 ↔ 1K GPUs … m=4 ↔ 16K GPUs).
    ///
    /// # Panics
    ///
    /// Panics if `microbatches` does not divide the 512 global
    /// microbatches evenly.
    pub fn simulator_40b(microbatches: usize, schedule: ScheduleKind) -> Self {
        assert!(
            microbatches > 0 && 512 % microbatches == 0,
            "512 global microbatches must split evenly, got {microbatches} per replica"
        );
        let dp = 512 / microbatches;
        MainJobSpec {
            model: gpt_40b(),
            parallelism: ParallelismConfig::new(8, 16, dp, 2, 1024),
            device: DeviceSpec::v100(),
            inter_stage_link: LinkSpec::ethernet_25g(),
            schedule,
            memory: BubbleMemoryModel::measured_default(),
            training_tokens: DEFAULT_TRAINING_TOKENS,
            uniform_stages: true,
        }
    }

    /// The 40B job sized by GPU count (must be a multiple of 128).
    pub fn simulator_40b_at_scale(total_gpus: usize, schedule: ScheduleKind) -> Self {
        let cfg = ParallelismConfig::for_40b_at_scale(total_gpus);
        Self::simulator_40b(cfg.microbatches_per_replica(), schedule)
    }

    /// The physical-cluster 5B main job (§5.2): 16 stages on 16 GPUs, no
    /// tensor parallelism.
    pub fn physical_5b(microbatches: usize, schedule: ScheduleKind) -> Self {
        MainJobSpec {
            model: gpt_5b(),
            parallelism: ParallelismConfig::for_5b_physical(microbatches),
            device: DeviceSpec::v100(),
            inter_stage_link: LinkSpec::ethernet_25g(),
            schedule,
            memory: BubbleMemoryModel::measured_default(),
            training_tokens: DEFAULT_TRAINING_TOKENS,
            uniform_stages: true,
        }
    }

    /// Replaces the model (sensitivity studies scale the main job).
    pub fn with_model(mut self, model: ModelGraph) -> Self {
        self.model = model;
        self
    }

    /// Replaces the bubble memory model (Fig. 10b sweeps it).
    pub fn with_memory(mut self, memory: BubbleMemoryModel) -> Self {
        self.memory = memory;
        self
    }

    /// Stage partition for this job.
    pub fn partition(&self) -> StagePartition {
        StagePartition::new(&self.model, &self.parallelism, &self.device)
    }

    /// Builds the engine configuration (per-stage times, communication,
    /// memory reporting).
    pub fn engine_config(&self) -> EngineConfig {
        let partition = self.partition();
        let stages = partition.stages();
        // Activation hand-off: the largest stage boundary payload.
        let payload = stages
            .iter()
            .map(|s| s.boundary_bytes_per_microbatch)
            .max()
            .unwrap_or(pipefill_device::Bytes::ZERO);
        let comm = self.inter_stage_link.transfer_time(payload);
        // Ring all-reduce of fp16 gradients across data-parallel replicas
        // (≈ 2× payload over the slow link); overlapped with backward.
        let grad_bytes = stages
            .iter()
            .map(|s| pipefill_device::Bytes::new(s.params_per_gpu * 2))
            .max()
            .unwrap_or(pipefill_device::Bytes::ZERO);
        let grad_sync = if self.parallelism.data_parallel > 1 {
            SimDuration::from_secs_f64(2.0 * grad_bytes.as_f64() / self.inter_stage_link.bandwidth)
        } else {
            SimDuration::ZERO
        };
        let mean = |get: fn(&crate::partition::StageProfile) -> SimDuration| -> Vec<SimDuration> {
            if self.uniform_stages {
                let total: SimDuration = stages.iter().map(get).sum();
                vec![total / stages.len() as u64; stages.len()]
            } else {
                stages.iter().map(get).collect()
            }
        };
        EngineConfig {
            schedule: self.schedule,
            microbatches: self.parallelism.microbatches_per_replica(),
            stage_fwd: mean(|s| s.fwd_time),
            stage_bwd: mean(|s| s.bwd_time),
            stage_opt: mean(|s| s.opt_time),
            comm,
            grad_sync,
            overlap_grad_sync: true,
            memory: self.memory.clone(),
        }
    }

    /// Runs the engine and returns the steady-state timeline.
    pub fn engine_timeline(&self) -> EngineTimeline {
        self.engine_config().run()
    }

    /// Tokens consumed by the whole job per model update.
    pub fn tokens_per_iteration(&self) -> f64 {
        (self.parallelism.global_minibatch * self.model.seq_len.unwrap_or(1)) as f64
    }

    /// Main-job TFLOPS per GPU averaged over the iteration, given the
    /// engine timeline (compute FLOPs ÷ GPUs ÷ period).
    pub fn main_job_tflops_per_gpu(&self, timeline: &EngineTimeline) -> f64 {
        let per_replica_flops = self
            .model
            .train_step_flops(self.parallelism.global_minibatch / self.parallelism.data_parallel);
        let per_gpu_flops = per_replica_flops / self.parallelism.gpus_per_replica() as f64;
        per_gpu_flops / timeline.period.as_secs_f64() / 1e12
    }

    /// Computes the full scaling-point row for this job (Fig. 4).
    pub fn scaling_point(&self) -> ScalingPoint {
        let timeline = self.engine_timeline();
        ScalingPoint {
            gpus: self.parallelism.total_gpus(),
            microbatches: self.parallelism.microbatches_per_replica(),
            bubble_ratio: timeline.bubble_ratio(),
            fillable_ratio: timeline.fillable_ratio(),
            iteration_time: timeline.period,
            days_to_train: days_to_train(
                self.training_tokens,
                self.tokens_per_iteration(),
                timeline.period,
            ),
            main_job_tflops_per_gpu: self.main_job_tflops_per_gpu(&timeline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::bubble_fraction;

    #[test]
    fn scaling_series_matches_paper_days() {
        // Fig. 4a anchors: ~82 days at 1K GPUs, ~50 at 2K, ~34 at 4K,
        // ~26 at 8K (tolerances cover engine comm/optimizer overheads).
        let cases = [
            (64usize, 82.0, 8.0),
            (32, 50.0, 5.0),
            (16, 34.0, 4.0),
            (8, 26.0, 3.0),
        ];
        for (m, days, tol) in cases {
            let point = MainJobSpec::simulator_40b(m, ScheduleKind::GPipe).scaling_point();
            assert!(
                (point.days_to_train - days).abs() < tol,
                "m={m}: got {} days, want ≈{days}",
                point.days_to_train
            );
        }
    }

    #[test]
    fn engine_bubble_ratio_tracks_formula() {
        for m in [64usize, 8] {
            let job = MainJobSpec::simulator_40b(m, ScheduleKind::GPipe);
            let got = job.engine_timeline().bubble_ratio();
            let expect = bubble_fraction(16, m);
            assert!(
                (got - expect).abs() < 0.04,
                "m={m}: engine {got} vs formula {expect}"
            );
        }
    }

    #[test]
    fn traditional_tflops_fall_with_scale() {
        // Fig. 1: ~48 TFLOPS/GPU at 1K falling ≈60% by 8K.
        let t1k = MainJobSpec::simulator_40b(64, ScheduleKind::GPipe)
            .scaling_point()
            .main_job_tflops_per_gpu;
        let t8k = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe)
            .scaling_point()
            .main_job_tflops_per_gpu;
        assert!((40.0..55.0).contains(&t1k), "1K: {t1k}");
        assert!((14.0..24.0).contains(&t8k), "8K: {t8k}");
        let drop = 1.0 - t8k / t1k;
        assert!((0.5..0.7).contains(&drop), "drop {drop}");
    }

    #[test]
    fn physical_5b_bubble_ratio_is_65_percent() {
        // §6.1: "8 microbatches per minibatch … results in a bubble ratio
        // of 65%".
        let job = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let ratio = job.engine_timeline().bubble_ratio();
        assert!((ratio - 0.65).abs() < 0.03, "got {ratio}");
    }

    #[test]
    fn forty_b_iteration_time_near_three_seconds_at_8k() {
        // DESIGN.md anchor: (8+15)·128 ms ≈ 2.9 s.
        let job = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
        let t = job.engine_timeline().period.as_secs_f64();
        assert!((2.4..3.6).contains(&t), "period {t}");
    }

    #[test]
    fn one_f_one_b_same_period_as_gpipe() {
        let g = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe).engine_timeline();
        let o = MainJobSpec::simulator_40b(8, ScheduleKind::OneFOneB).engine_timeline();
        let rel = (g.period.as_secs_f64() - o.period.as_secs_f64()).abs() / g.period.as_secs_f64();
        assert!(rel < 0.02, "periods differ by {rel}");
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn bad_microbatch_count_rejected() {
        let _ = MainJobSpec::simulator_40b(7, ScheduleKind::GPipe);
    }
}
