//! The pipeline-instruction IR.
//!
//! "Existing pipeline engines execute a sequence of pipeline instructions
//! … PipeFill's bubble instruction is inserted into the schedule to
//! indicate where large bubbles are expected to occur" (§4.2). Schedules
//! here are per-stage instruction sequences; activation/gradient
//! send/receive pairs are represented as cross-stage dependencies resolved
//! by the engine (with a configurable transfer cost) rather than separate
//! instructions, which keeps the streams compact without losing timing.

use serde::{Deserialize, Serialize};

use crate::bubbles::BubbleKind;

/// One instruction in a stage's pipeline schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineInstruction {
    /// Forward computation of one microbatch (global microbatch index
    /// within the iteration).
    Forward {
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// Backward computation of one microbatch.
    Backward {
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// PipeFill's explicit bubble marker: zero-cost, but tells the engine
    /// where to profile and where to signal the fill-job Executor.
    Bubble {
        /// Which bubble this marker announces.
        kind: BubbleKind,
    },
    /// Data-parallel gradient synchronization (all-reduce across
    /// replicas). The engine can model it as overlapped with backward
    /// (contributing no timeline length) while still exposing its duration
    /// as the onload window for main-job offloading.
    GradSync,
    /// Optimizer step (Adam update of this stage's parameters).
    OptimizerStep,
}

impl PipelineInstruction {
    /// True for instructions that occupy the device (forward/backward/
    /// optimizer); false for markers and overlapped communication.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            PipelineInstruction::Forward { .. }
                | PipelineInstruction::Backward { .. }
                | PipelineInstruction::OptimizerStep
        )
    }

    /// The microbatch this instruction processes, if any.
    pub fn microbatch(self) -> Option<usize> {
        match self {
            PipelineInstruction::Forward { microbatch }
            | PipelineInstruction::Backward { microbatch } => Some(microbatch),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_classification() {
        assert!(PipelineInstruction::Forward { microbatch: 0 }.is_compute());
        assert!(PipelineInstruction::Backward { microbatch: 0 }.is_compute());
        assert!(PipelineInstruction::OptimizerStep.is_compute());
        assert!(!PipelineInstruction::GradSync.is_compute());
        assert!(!PipelineInstruction::Bubble {
            kind: BubbleKind::FwdBwd
        }
        .is_compute());
    }

    #[test]
    fn microbatch_extraction() {
        assert_eq!(
            PipelineInstruction::Forward { microbatch: 3 }.microbatch(),
            Some(3)
        );
        assert_eq!(PipelineInstruction::GradSync.microbatch(), None);
    }
}
