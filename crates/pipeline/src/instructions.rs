//! The pipeline-instruction IR.
//!
//! "Existing pipeline engines execute a sequence of pipeline instructions
//! … PipeFill's bubble instruction is inserted into the schedule to
//! indicate where large bubbles are expected to occur" (§4.2). Schedules
//! here are per-stage instruction sequences; activation/gradient
//! send/receive pairs are represented as cross-stage dependencies resolved
//! by the engine (with a configurable transfer cost) rather than separate
//! instructions, which keeps the streams compact without losing timing.

use serde::{Deserialize, Serialize};

use crate::bubbles::BubbleKind;

/// One instruction in a stage's pipeline schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineInstruction {
    /// Forward computation of one microbatch (global microbatch index
    /// within the iteration).
    Forward {
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// Backward computation of one microbatch.
    Backward {
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// Forward of one microbatch through one *virtual* pipeline stage
    /// (interleaved 1F1B: each device hosts `v` model chunks; chunk `c`
    /// on device `s` is virtual stage `c·p + s`, and its compute is
    /// `1/v` of the device's full forward).
    ForwardChunk {
        /// Model-chunk index in `0..v`.
        chunk: usize,
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// Backward of one microbatch through one virtual pipeline stage
    /// (interleaved 1F1B).
    BackwardChunk {
        /// Model-chunk index in `0..v`.
        chunk: usize,
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// ZB-H1's `B` instruction: the activation-gradient half of the
    /// backward pass. It is the only dependency-critical part — the
    /// upstream stage's backward waits on it, not on the weight half.
    BackwardInput {
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// ZB-H1's `W` instruction: the weight-gradient half of the backward
    /// pass. Purely local work with no cross-stage consumers, so the
    /// schedule defers it into what would otherwise be bubble time.
    BackwardWeight {
        /// Microbatch index in `0..m`.
        microbatch: usize,
    },
    /// PipeFill's explicit bubble marker: zero-cost, but tells the engine
    /// where to profile and where to signal the fill-job Executor.
    Bubble {
        /// Which bubble this marker announces.
        kind: BubbleKind,
    },
    /// Data-parallel gradient synchronization (all-reduce across
    /// replicas). The engine can model it as overlapped with backward
    /// (contributing no timeline length) while still exposing its duration
    /// as the onload window for main-job offloading.
    GradSync,
    /// Optimizer step (Adam update of this stage's parameters).
    OptimizerStep,
}

impl PipelineInstruction {
    /// True for instructions that occupy the device (forward/backward/
    /// optimizer); false for markers and overlapped communication.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            PipelineInstruction::Forward { .. }
                | PipelineInstruction::Backward { .. }
                | PipelineInstruction::ForwardChunk { .. }
                | PipelineInstruction::BackwardChunk { .. }
                | PipelineInstruction::BackwardInput { .. }
                | PipelineInstruction::BackwardWeight { .. }
                | PipelineInstruction::OptimizerStep
        )
    }

    /// True for any flavour of backward compute (full, chunked, or either
    /// ZB-H1 half) — what the engine uses to spot a stage's fwd-bwd
    /// transition.
    pub fn is_backward(self) -> bool {
        matches!(
            self,
            PipelineInstruction::Backward { .. }
                | PipelineInstruction::BackwardChunk { .. }
                | PipelineInstruction::BackwardInput { .. }
                | PipelineInstruction::BackwardWeight { .. }
        )
    }

    /// The microbatch this instruction processes, if any.
    pub fn microbatch(self) -> Option<usize> {
        match self {
            PipelineInstruction::Forward { microbatch }
            | PipelineInstruction::Backward { microbatch }
            | PipelineInstruction::ForwardChunk { microbatch, .. }
            | PipelineInstruction::BackwardChunk { microbatch, .. }
            | PipelineInstruction::BackwardInput { microbatch }
            | PipelineInstruction::BackwardWeight { microbatch } => Some(microbatch),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_classification() {
        assert!(PipelineInstruction::Forward { microbatch: 0 }.is_compute());
        assert!(PipelineInstruction::Backward { microbatch: 0 }.is_compute());
        assert!(PipelineInstruction::ForwardChunk {
            chunk: 1,
            microbatch: 0
        }
        .is_compute());
        assert!(PipelineInstruction::BackwardChunk {
            chunk: 1,
            microbatch: 0
        }
        .is_compute());
        assert!(PipelineInstruction::BackwardInput { microbatch: 0 }.is_compute());
        assert!(PipelineInstruction::BackwardWeight { microbatch: 0 }.is_compute());
        assert!(PipelineInstruction::OptimizerStep.is_compute());
        assert!(!PipelineInstruction::GradSync.is_compute());
        assert!(!PipelineInstruction::Bubble {
            kind: BubbleKind::FwdBwd
        }
        .is_compute());
    }

    #[test]
    fn backward_classification() {
        assert!(PipelineInstruction::Backward { microbatch: 0 }.is_backward());
        assert!(PipelineInstruction::BackwardChunk {
            chunk: 0,
            microbatch: 0
        }
        .is_backward());
        assert!(PipelineInstruction::BackwardInput { microbatch: 0 }.is_backward());
        assert!(PipelineInstruction::BackwardWeight { microbatch: 0 }.is_backward());
        assert!(!PipelineInstruction::Forward { microbatch: 0 }.is_backward());
        assert!(!PipelineInstruction::ForwardChunk {
            chunk: 0,
            microbatch: 0
        }
        .is_backward());
        assert!(!PipelineInstruction::OptimizerStep.is_backward());
    }

    #[test]
    fn microbatch_extraction() {
        assert_eq!(
            PipelineInstruction::Forward { microbatch: 3 }.microbatch(),
            Some(3)
        );
        assert_eq!(
            PipelineInstruction::ForwardChunk {
                chunk: 2,
                microbatch: 5
            }
            .microbatch(),
            Some(5)
        );
        assert_eq!(
            PipelineInstruction::BackwardWeight { microbatch: 4 }.microbatch(),
            Some(4)
        );
        assert_eq!(PipelineInstruction::GradSync.microbatch(), None);
    }
}
