//! Bubble-duration profiling (§4.2, "Bubble characterization").
//!
//! "For each bubble instruction, the pipeline engine will wait a certain
//! amount of time (e.g. 100 ms) before proceeding … if \[the main job's
//! throughput\] is unaffected then on the next minibatch iteration it will
//! wait 2× … until the pipeline engine observes a drop in the main job's
//! throughput, at which point it will know the duration of the pipeline
//! bubble."
//!
//! The doubling phase brackets the duration within a factor of two; we add
//! a short bisection phase (still one probe per minibatch iteration) so the
//! measured value converges from below — the engine must never report a
//! duration longer than the true bubble, or fill jobs would overrun it.

use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

/// The probing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BubbleProbe {
    /// First wait issued at the bubble instruction (paper example: 100 ms).
    pub initial_wait: SimDuration,
    /// Bisection refinements after the doubling phase brackets the
    /// duration.
    pub refine_steps: usize,
    /// Safety cap on doubling iterations.
    pub max_doublings: usize,
}

impl Default for BubbleProbe {
    fn default() -> Self {
        BubbleProbe {
            initial_wait: SimDuration::from_millis(100),
            refine_steps: 6,
            max_doublings: 24,
        }
    }
}

/// Result of profiling one bubble instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeOutcome {
    /// The duration the engine will report to the Executor. Guaranteed
    /// `≤` the true duration.
    pub measured: SimDuration,
    /// Every wait issued, in order (each costs one minibatch iteration of
    /// profiling).
    pub probes: Vec<SimDuration>,
}

impl ProbeOutcome {
    /// Minibatch iterations consumed by profiling this bubble.
    pub fn iterations(&self) -> usize {
        self.probes.len()
    }
}

impl BubbleProbe {
    /// Profiles a bubble whose true duration is `true_duration` (known to
    /// the simulation, unknown to the engine).
    ///
    /// A probe of length `w` leaves the main job's throughput unaffected
    /// iff `w ≤ true_duration`; a longer probe delays the next instruction
    /// and is observed as a throughput drop.
    pub fn profile(&self, true_duration: SimDuration) -> ProbeOutcome {
        let mut probes = Vec::new();
        let mut lo = SimDuration::ZERO;
        let mut hi: Option<SimDuration> = None;
        let mut w = self.initial_wait;

        for _ in 0..self.max_doublings {
            probes.push(w);
            if w <= true_duration {
                lo = w;
                w = match w.checked_add(w) {
                    Some(next) => next,
                    None => break,
                };
            } else {
                hi = Some(w);
                break;
            }
        }

        if let Some(mut hi) = hi {
            for _ in 0..self.refine_steps {
                let mid = lo + (hi - lo) / 2;
                if mid == lo {
                    break; // nanosecond-converged
                }
                probes.push(mid);
                if mid <= true_duration {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }

        ProbeOutcome {
            measured: lo,
            probes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn measured_never_exceeds_true_duration() {
        let probe = BubbleProbe::default();
        for true_ms in [0u64, 1, 37, 99, 100, 101, 250, 777, 1600, 10_000] {
            let out = probe.profile(ms(true_ms));
            assert!(
                out.measured <= ms(true_ms),
                "true={true_ms}ms measured={}",
                out.measured
            );
        }
    }

    #[test]
    fn doubling_phase_matches_paper_description() {
        // A 777 ms bubble: probes go 100, 200, 400, 800(drop), then bisect.
        let out = BubbleProbe::default().profile(ms(777));
        assert_eq!(&out.probes[..4], &[ms(100), ms(200), ms(400), ms(800)]);
        assert!(out.measured >= ms(700), "measured={}", out.measured);
        assert!(out.measured <= ms(777));
    }

    #[test]
    fn refinement_tightens_the_bracket() {
        let coarse = BubbleProbe {
            refine_steps: 0,
            ..Default::default()
        };
        let fine = BubbleProbe {
            refine_steps: 10,
            ..Default::default()
        };
        let d = ms(777);
        let c = coarse.profile(d).measured;
        let f = fine.profile(d).measured;
        assert_eq!(c, ms(400), "doubling alone brackets to the lower bound");
        assert!(f > c);
        // 10 bisections on a 400ms bracket: within 1ms.
        assert!(d - f < ms(1), "residual {}", d - f);
    }

    #[test]
    fn sub_initial_bubbles_are_still_measured() {
        // A 40 ms bubble: the very first 100 ms probe already drops
        // throughput; bisection on [0, 100ms) recovers it.
        let out = BubbleProbe::default().profile(ms(40));
        assert!(out.measured <= ms(40));
        assert!(out.measured >= ms(37), "measured={}", out.measured);
    }

    #[test]
    fn zero_bubble_measures_zero() {
        let out = BubbleProbe::default().profile(SimDuration::ZERO);
        assert_eq!(out.measured, SimDuration::ZERO);
    }

    #[test]
    fn profiling_cost_is_logarithmic() {
        let out = BubbleProbe::default().profile(ms(100_000));
        // 10 doublings + ≤6 refinements, not thousands of iterations.
        assert!(out.iterations() <= 20, "used {}", out.iterations());
    }

    #[test]
    fn huge_bubble_hits_doubling_cap() {
        let probe = BubbleProbe {
            max_doublings: 4,
            ..Default::default()
        };
        let out = probe.profile(SimDuration::from_secs(3600));
        assert_eq!(out.probes.len(), 4);
        assert_eq!(out.measured, ms(800));
    }
}
