//! ASCII rendering of engine timelines — the textual equivalent of the
//! paper's Fig. 2 pipeline diagrams, used by the examples and the CLI to
//! make bubble structure visible.

use crate::bubbles::BubbleKind;
use crate::engine::EngineTimeline;

/// Glyphs used by [`render_timeline`].
pub const GLYPH_BUSY: char = '█';
/// Fwd-bwd bubble glyph.
pub const GLYPH_FWD_BWD: char = '░';
/// Fill-drain bubble glyph.
pub const GLYPH_FILL_DRAIN: char = '·';
/// Non-contiguous (unfillable) bubble glyph.
pub const GLYPH_NON_CONTIG: char = '▒';

/// Renders one steady-state iteration of every stage as fixed-width rows
/// of glyphs: `█` busy, `░` fwd-bwd bubble, `·` fill-drain bubble, `▒`
/// non-contiguous bubble. Stage phases are aligned on a common absolute
/// axis, so the diagonal pipeline fill/drain pattern of the paper's
/// Fig. 2 is visible directly.
///
/// # Example
///
/// ```
/// use pipefill_pipeline::{render_timeline, EngineConfig, ScheduleKind};
/// use pipefill_sim_core::SimDuration;
///
/// let tl = EngineConfig::uniform(
///     ScheduleKind::GPipe, 4, 4,
///     SimDuration::from_millis(10), SimDuration::from_millis(20),
/// ).run();
/// let art = render_timeline(&tl, 70);
/// assert_eq!(art.lines().count(), 4 + 1); // stages + legend
/// ```
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn render_timeline(timeline: &EngineTimeline, width: usize) -> String {
    assert!(width > 0, "render width must be positive");
    let period = timeline.period.as_secs_f64();
    let mut out = String::new();

    for stage in &timeline.stages {
        let mut row = vec![GLYPH_BUSY; width];
        let anchor = stage.anchor_offset.as_secs_f64();
        for w in &stage.windows {
            let glyph = match w.kind {
                BubbleKind::FwdBwd => GLYPH_FWD_BWD,
                BubbleKind::FillDrain => GLYPH_FILL_DRAIN,
                BubbleKind::NonContiguous => GLYPH_NON_CONTIG,
            };
            // Absolute offsets within the common period, wrapped.
            let start = (anchor + w.offset.as_secs_f64()) / period;
            let end = start + w.duration.as_secs_f64() / period;
            let lo = (start * width as f64).round() as usize;
            let hi = (end * width as f64).round() as usize;
            // Cells wrap across the period boundary (fill-drain bubbles
            // straddle it).
            for k in lo..hi {
                row[k % width] = glyph;
            }
        }
        out.push_str(&format!("s{:02} ", stage.stage));
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "    {GLYPH_BUSY}=compute {GLYPH_FWD_BWD}=fwd-bwd {GLYPH_FILL_DRAIN}=fill-drain {GLYPH_NON_CONTIG}=non-contiguous  (one iteration, {:.3}s)",
        period
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::schedule::ScheduleKind;
    use pipefill_sim_core::SimDuration;

    fn tl(schedule: ScheduleKind, p: usize, m: usize) -> EngineTimeline {
        EngineConfig::uniform(
            schedule,
            p,
            m,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        )
        .run()
    }

    #[test]
    fn renders_one_row_per_stage_plus_legend() {
        let art = render_timeline(&tl(ScheduleKind::GPipe, 4, 4), 80);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("s00 "));
        assert!(lines[3].starts_with("s03 "));
        assert!(lines[4].contains("compute"));
    }

    #[test]
    fn glyph_budget_matches_bubble_ratio() {
        let timeline = tl(ScheduleKind::GPipe, 4, 6);
        let width = 200;
        let art = render_timeline(&timeline, width);
        let bubbles = art
            .lines()
            .take(4)
            .flat_map(|l| l.chars())
            .filter(|&c| c == GLYPH_FWD_BWD || c == GLYPH_FILL_DRAIN || c == GLYPH_NON_CONTIG)
            .count();
        let got = bubbles as f64 / (4 * width) as f64;
        let expect = timeline.bubble_ratio();
        assert!(
            (got - expect).abs() < 0.04,
            "rendered bubble share {got} vs actual {expect}"
        );
    }

    #[test]
    fn first_stage_has_no_fill_drain_and_last_no_fwd_bwd() {
        let art = render_timeline(&tl(ScheduleKind::GPipe, 4, 4), 120);
        let lines: Vec<&str> = art.lines().collect();
        assert!(!lines[0].contains(GLYPH_FILL_DRAIN));
        assert!(!lines[3].contains(GLYPH_FWD_BWD));
    }

    #[test]
    fn one_f_one_b_shows_non_contiguous_gaps() {
        let art = render_timeline(&tl(ScheduleKind::OneFOneB, 4, 8), 240);
        assert!(art.contains(GLYPH_NON_CONTIG));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = render_timeline(&tl(ScheduleKind::GPipe, 2, 2), 0);
    }
}
