//! Bubble taxonomy and the bubble windows the engine exposes to the rest
//! of PipeFill.

use pipefill_device::Bytes;
use pipefill_sim_core::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The three bubble kinds the paper identifies (§4.5):
///
/// * *fill-drain* — between the drain of one minibatch iteration and the
///   fill of the next (identical for GPipe and 1F1B);
/// * *fwd-bwd* — between a stage's forward-pass saturation and the start
///   of its backward work (schedule-dependent);
/// * *non-contiguous* — the small steady-state gaps inside 1F1B, **which
///   PipeFill does not fill**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BubbleKind {
    /// Iteration-boundary bubble (drain + next fill).
    FillDrain,
    /// Mid-iteration bubble between forward and backward phases.
    FwdBwd,
    /// Fragmented steady-state gaps (1F1B only); not fillable.
    NonContiguous,
}

impl BubbleKind {
    /// Whether PipeFill attempts to fill this kind of bubble.
    pub fn fillable(self) -> bool {
        !matches!(self, BubbleKind::NonContiguous)
    }
}

impl std::fmt::Display for BubbleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BubbleKind::FillDrain => write!(f, "fill-drain"),
            BubbleKind::FwdBwd => write!(f, "fwd-bwd"),
            BubbleKind::NonContiguous => write!(f, "non-contiguous"),
        }
    }
}

/// One idle window on one stage within a single iteration period.
///
/// `offset` is relative to the period start, so the absolute start of the
/// window in iteration `k` is `k · period + offset`. `free_memory` is what
/// the engine measured as available to a fill job during this window
/// (after releasing transient buffers, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BubbleWindow {
    /// Bubble kind.
    pub kind: BubbleKind,
    /// Start offset within the iteration period.
    pub offset: SimDuration,
    /// Window length.
    pub duration: SimDuration,
    /// HBM available to fill jobs during the window.
    pub free_memory: Bytes,
}

impl BubbleWindow {
    /// Validated constructor: a window must lie entirely within its
    /// iteration period (`offset + duration <= period`), or every
    /// consumer that multiplies by the period — fill partitioning, the
    /// coarse backend's slot table, the renderer — silently works with
    /// phantom idle time. The duration is clamped to the period
    /// boundary, and exceeding it is a debug-build error (an emission
    /// site produced an impossible window).
    ///
    /// # Panics
    ///
    /// Panics if `offset > period` (the window starts outside the
    /// period); debug-panics if the duration had to be clamped.
    pub fn within_period(
        kind: BubbleKind,
        offset: SimDuration,
        duration: SimDuration,
        free_memory: Bytes,
        period: SimDuration,
    ) -> BubbleWindow {
        assert!(
            offset <= period,
            "bubble window starts at {offset}, outside the {period} period"
        );
        debug_assert!(
            offset + duration <= period,
            "bubble window [{offset}, {}) overruns the {period} period",
            offset + duration,
        );
        let duration = duration.min(period - offset);
        BubbleWindow {
            kind,
            offset,
            duration,
            free_memory,
        }
    }

    /// Absolute start time of this window in iteration `k`.
    pub fn start_in_iteration(&self, period: SimDuration, k: u64) -> SimTime {
        SimTime::ZERO + period * k + self.offset
    }

    /// True if PipeFill will try to fill this window.
    pub fn fillable(&self) -> bool {
        self.kind.fillable() && !self.duration.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_contiguous_is_not_fillable() {
        assert!(BubbleKind::FillDrain.fillable());
        assert!(BubbleKind::FwdBwd.fillable());
        assert!(!BubbleKind::NonContiguous.fillable());
    }

    #[test]
    fn zero_duration_window_is_not_fillable() {
        let w = BubbleWindow {
            kind: BubbleKind::FwdBwd,
            offset: SimDuration::ZERO,
            duration: SimDuration::ZERO,
            free_memory: Bytes::from_gib(4),
        };
        assert!(!w.fillable());
    }

    #[test]
    fn window_start_advances_with_iterations() {
        let w = BubbleWindow {
            kind: BubbleKind::FillDrain,
            offset: SimDuration::from_millis(250),
            duration: SimDuration::from_millis(100),
            free_memory: Bytes::from_gib(4),
        };
        let period = SimDuration::from_secs(2);
        assert_eq!(
            w.start_in_iteration(period, 0),
            SimTime::from_secs_f64(0.25)
        );
        assert_eq!(
            w.start_in_iteration(period, 3),
            SimTime::from_secs_f64(6.25)
        );
    }

    #[test]
    fn within_period_accepts_valid_windows() {
        let w = BubbleWindow::within_period(
            BubbleKind::FwdBwd,
            SimDuration::from_millis(100),
            SimDuration::from_millis(50),
            Bytes::from_gib(4),
            SimDuration::from_millis(150),
        );
        assert_eq!(w.duration, SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn within_period_rejects_offset_beyond_period() {
        let _ = BubbleWindow::within_period(
            BubbleKind::FwdBwd,
            SimDuration::from_millis(200),
            SimDuration::from_millis(1),
            Bytes::from_gib(4),
            SimDuration::from_millis(150),
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "overruns"))]
    fn within_period_clamps_overrunning_duration() {
        // Release builds clamp; debug builds flag the emission-site bug.
        let w = BubbleWindow::within_period(
            BubbleKind::FillDrain,
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
            Bytes::from_gib(4),
            SimDuration::from_millis(150),
        );
        assert_eq!(w.duration, SimDuration::from_millis(50));
    }

    #[test]
    fn kinds_display() {
        assert_eq!(BubbleKind::FillDrain.to_string(), "fill-drain");
        assert_eq!(BubbleKind::FwdBwd.to_string(), "fwd-bwd");
        assert_eq!(BubbleKind::NonContiguous.to_string(), "non-contiguous");
    }
}
