//! Combined-parallelism configuration (§2.2): tensor parallelism within a
//! node, pipeline stages across nodes, data-parallel replication of the
//! whole pipeline.

use serde::{Deserialize, Serialize};

/// How a training job is parallelized.
///
/// The paper's scaling rule (§3.1): tensor and pipeline degrees are fixed
/// by the model and node shape; scaling out raises the data-parallel
/// degree, and because the global minibatch is fixed (1024 sequences at
/// microbatch 2), the number of microbatches per pipeline replica falls —
/// which is what inflates the bubble fraction.
///
/// # Example
///
/// ```
/// use pipefill_pipeline::ParallelismConfig;
///
/// // The 40B job at 8K GPUs: TP=8, PP=16, DP=64.
/// let cfg = ParallelismConfig::new(8, 16, 64, 2, 1024);
/// assert_eq!(cfg.total_gpus(), 8192);
/// assert_eq!(cfg.microbatches_per_replica(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Tensor-parallel degree (within a node).
    pub tensor_parallel: usize,
    /// Number of pipeline stages.
    pub pipeline_stages: usize,
    /// Data-parallel degree (pipeline replicas).
    pub data_parallel: usize,
    /// Sequences per microbatch.
    pub microbatch_size: usize,
    /// Global minibatch in sequences, fixed across scales (the paper fixes
    /// 1024 sequences ≈ 2M tokens per model update).
    pub global_minibatch: usize,
}

impl ParallelismConfig {
    /// Creates and validates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any degree is zero or the global minibatch does not
    /// divide evenly into per-replica microbatches.
    pub fn new(
        tensor_parallel: usize,
        pipeline_stages: usize,
        data_parallel: usize,
        microbatch_size: usize,
        global_minibatch: usize,
    ) -> Self {
        let cfg = ParallelismConfig {
            tensor_parallel,
            pipeline_stages,
            data_parallel,
            microbatch_size,
            global_minibatch,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(
            self.tensor_parallel > 0
                && self.pipeline_stages > 0
                && self.data_parallel > 0
                && self.microbatch_size > 0
                && self.global_minibatch > 0,
            "all parallelism degrees must be positive: {self:?}"
        );
        let per_replica = self.global_minibatch / self.data_parallel;
        assert!(
            per_replica * self.data_parallel == self.global_minibatch,
            "global minibatch {} does not divide across {} replicas",
            self.global_minibatch,
            self.data_parallel
        );
        assert!(
            per_replica.is_multiple_of(self.microbatch_size),
            "per-replica minibatch {per_replica} does not divide into microbatches of {}",
            self.microbatch_size
        );
        assert!(
            self.microbatches_per_replica() >= 1,
            "need at least one microbatch per replica"
        );
    }

    /// GPUs in one pipeline replica.
    pub fn gpus_per_replica(&self) -> usize {
        self.tensor_parallel * self.pipeline_stages
    }

    /// Total GPUs across all replicas.
    pub fn total_gpus(&self) -> usize {
        self.gpus_per_replica() * self.data_parallel
    }

    /// Microbatches each replica processes per model update: `m` in the
    /// bubble-fraction formula `(p-1)/(m+p-1)`.
    pub fn microbatches_per_replica(&self) -> usize {
        self.global_minibatch / self.data_parallel / self.microbatch_size
    }

    /// The paper's 40B-job scaling series: TP=8, PP=16 fixed, DP chosen to
    /// hit `total_gpus` (must be a multiple of 128).
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus` is not a positive multiple of 128 or the
    /// resulting replica count cannot split 512 microbatches evenly.
    pub fn for_40b_at_scale(total_gpus: usize) -> Self {
        assert!(
            total_gpus > 0 && total_gpus.is_multiple_of(128),
            "the 40B job allocates GPUs in replica units of 128, got {total_gpus}"
        );
        ParallelismConfig::new(8, 16, total_gpus / 128, 2, 1024)
    }

    /// The paper's 5B physical-cluster job: PP=16, no TP, one replica of
    /// 16 GPUs, with a configurable microbatch count (8 in the headline
    /// 65%-bubble-ratio experiments).
    pub fn for_5b_physical(microbatches: usize) -> Self {
        assert!(microbatches > 0, "need at least one microbatch");
        // One replica: the global minibatch seen by this replica is
        // microbatches × microbatch size.
        ParallelismConfig::new(1, 16, 1, 2, 2 * microbatches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaling_series() {
        // GPUs -> microbatches per replica: 1K/64, 2K/32, 4K/16, 8K/8, 16K/4.
        for (gpus, m) in [(1024, 64), (2048, 32), (4096, 16), (8192, 8), (16384, 4)] {
            let cfg = ParallelismConfig::for_40b_at_scale(gpus);
            assert_eq!(cfg.total_gpus(), gpus);
            assert_eq!(cfg.microbatches_per_replica(), m, "at {gpus} GPUs");
        }
    }

    #[test]
    fn physical_5b_job_shape() {
        let cfg = ParallelismConfig::for_5b_physical(8);
        assert_eq!(cfg.total_gpus(), 16);
        assert_eq!(cfg.pipeline_stages, 16);
        assert_eq!(cfg.tensor_parallel, 1);
        assert_eq!(cfg.microbatches_per_replica(), 8);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn uneven_microbatches_rejected() {
        let _ = ParallelismConfig::new(1, 4, 1, 3, 8);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_degree_rejected() {
        let _ = ParallelismConfig::new(0, 4, 1, 2, 8);
    }

    #[test]
    #[should_panic(expected = "replica units of 128")]
    fn non_replica_multiple_rejected() {
        let _ = ParallelismConfig::for_40b_at_scale(1000);
    }
}
