//! The main job's device-memory model: how much HBM is free for fill jobs
//! during each bubble kind on each stage.
//!
//! The paper's engine *measures* free memory with allocator statistics
//! and seeds its simulator with the measurement — 4.5 GB on both the 5B
//! and 40B jobs (§6.1). [`BubbleMemoryModel::Uniform`] reproduces that
//! seeding path and is the default for the headline experiments (and the
//! knob swept in Fig. 10b). [`MainJobMemoryModel`] additionally *derives*
//! per-stage, per-bubble-kind free memory from the partition structure,
//! capturing the heterogeneity §3.2 mentions (fill-drain bubbles hold no
//! activations, fwd-bwd bubbles hold every in-flight microbatch's).

use pipefill_device::{Bytes, DeviceSpec};
use serde::{Deserialize, Serialize};

use crate::bubbles::BubbleKind;
use crate::parallelism::ParallelismConfig;
use crate::partition::StagePartition;
use crate::schedule::ScheduleKind;

/// Free memory during each bubble kind on one stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageMemory {
    /// Free HBM during the fwd-bwd bubble (activations still resident).
    pub fwd_bwd_free: Bytes,
    /// Free HBM during the fill-drain bubble (activations released).
    pub fill_drain_free: Bytes,
}

/// How the engine reports bubble free-memory to the Executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BubbleMemoryModel {
    /// One measured value for every stage and bubble (the paper's 4.5 GB
    /// seeding; also the Fig. 10b sweep axis).
    Uniform(Bytes),
    /// Structurally derived per-stage values.
    PerStage(Vec<StageMemory>),
}

impl BubbleMemoryModel {
    /// The paper's measured default: 4.5 GB free during bubbles, on both
    /// the 5B and 40B jobs, without main-job offloading (§6.1).
    pub fn measured_default() -> Self {
        BubbleMemoryModel::Uniform(Bytes::from_gib_f64(4.5))
    }

    /// Free memory for a bubble of `kind` on `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for a per-stage model.
    pub fn free(&self, stage: usize, kind: BubbleKind) -> Bytes {
        match self {
            BubbleMemoryModel::Uniform(b) => *b,
            BubbleMemoryModel::PerStage(stages) => {
                let s = &stages[stage];
                match kind {
                    BubbleKind::FwdBwd | BubbleKind::NonContiguous => s.fwd_bwd_free,
                    BubbleKind::FillDrain => s.fill_drain_free,
                }
            }
        }
    }

    /// Returns a copy with every reported value increased by `extra`
    /// (what main-job offloading buys, §4.2).
    pub fn with_extra(&self, extra: Bytes) -> BubbleMemoryModel {
        match self {
            BubbleMemoryModel::Uniform(b) => BubbleMemoryModel::Uniform(*b + extra),
            BubbleMemoryModel::PerStage(stages) => BubbleMemoryModel::PerStage(
                stages
                    .iter()
                    .map(|s| StageMemory {
                        fwd_bwd_free: s.fwd_bwd_free + extra,
                        fill_drain_free: s.fill_drain_free + extra,
                    })
                    .collect(),
            ),
        }
    }
}

/// Structural model of the main job's per-stage memory use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MainJobMemoryModel {
    /// Whether the main job checkpoints activations (recommended and on
    /// by default for LLM-scale jobs).
    pub activation_checkpointing: bool,
    /// Memory not visible to the allocator arithmetic: CUDA context,
    /// NCCL buffers, fragmentation. A fitted constant.
    pub runtime_reserve: Bytes,
    /// Fraction of the computed free memory the engine actually
    /// advertises to fill jobs ("to ensure there are no out-of-memory
    /// errors PipeFill may opt only to allocate some fraction of the free
    /// memory", §4.2).
    pub safety_fraction: f64,
}

impl Default for MainJobMemoryModel {
    fn default() -> Self {
        MainJobMemoryModel {
            activation_checkpointing: true,
            runtime_reserve: Bytes::from_gib(2),
            safety_fraction: 0.9,
        }
    }
}

impl MainJobMemoryModel {
    /// Derives per-stage free-memory values from the stage partition.
    ///
    /// # Panics
    ///
    /// Panics if `safety_fraction` is outside `(0, 1]`.
    pub fn derive(
        &self,
        partition: &StagePartition,
        parallelism: &ParallelismConfig,
        device: &DeviceSpec,
        schedule: ScheduleKind,
    ) -> BubbleMemoryModel {
        assert!(
            self.safety_fraction > 0.0 && self.safety_fraction <= 1.0,
            "safety fraction must be in (0, 1], got {}",
            self.safety_fraction
        );
        let p = parallelism.pipeline_stages;
        let m = parallelism.microbatches_per_replica();
        let hbm = device.hbm;
        let envelope = activation_envelope(schedule, p, m);
        let stages = partition
            .stages()
            .iter()
            .map(|sp| {
                let in_flight = envelope[sp.stage];
                let act_per_mb = if self.activation_checkpointing {
                    sp.ckpt_boundary_bytes_per_microbatch
                } else {
                    sp.activation_bytes_per_microbatch
                };
                let recompute = if self.activation_checkpointing {
                    sp.recompute_working_set
                } else {
                    Bytes::ZERO
                };
                let persistent = sp.persistent_state_bytes() + self.runtime_reserve;
                let fwd_bwd_used = persistent + act_per_mb * in_flight + recompute;
                let fill_drain_used = persistent;
                StageMemory {
                    fwd_bwd_free: hbm
                        .saturating_sub(fwd_bwd_used)
                        .mul_f64(self.safety_fraction),
                    fill_drain_free: hbm
                        .saturating_sub(fill_drain_used)
                        .mul_f64(self.safety_fraction),
                }
            })
            .collect();
        BubbleMemoryModel::PerStage(stages)
    }
}

/// Peak resident microbatch-activations per device for `schedule` on `p`
/// stages and `m` microbatches — the stage-partition-independent half of
/// [`MainJobMemoryModel::derive`], published so the static schedule
/// verifier can cross-validate its stream-measured envelope against the
/// memory model's.
///
/// Microbatches whose activations are resident during the fwd-bwd
/// bubble: GPipe keeps all `m`; 1F1B keeps at most `p - stage` in
/// flight; 1-chunk interleaved *is* 1F1B. ZB-H1 shares 1F1B's envelope
/// by modeling assumption (the H1 variant defers only W work, which this
/// model treats as holding no extra activations). The multi-chunk
/// interleaved schedule's residency is not 1F1B's — its greedy
/// realization runs forwards further ahead than the 1F1B warmup — so its
/// per-stage peak is measured from the emitted streams: the prefix count
/// of chunk-forwards minus chunk-backwards is the exact residency
/// trajectory for any stage timing, since a device executes its stream
/// in order. Each chunk activation is `1/v` of a full microbatch's, so
/// the chunk-unit peak rounds up to whole microbatches.
///
/// # Panics
///
/// Panics if `p` or `m` is zero, or an interleaved schedule has zero
/// chunks.
pub fn activation_envelope(schedule: ScheduleKind, p: usize, m: usize) -> Vec<u64> {
    assert!(p > 0 && m > 0, "p and m must be positive");
    match schedule {
        ScheduleKind::GPipe => vec![m as u64; p],
        ScheduleKind::Interleaved { chunks } if chunks > 1 => schedule
            .all_stage_instructions(p, m)
            .iter()
            .map(|stream| {
                let mut resident = 0u64;
                let mut peak = 0u64;
                for instr in stream {
                    match instr {
                        crate::instructions::PipelineInstruction::ForwardChunk { .. } => {
                            resident += 1;
                            peak = peak.max(resident);
                        }
                        crate::instructions::PipelineInstruction::BackwardChunk { .. } => {
                            resident -= 1
                        }
                        _ => {}
                    }
                }
                peak.div_ceil(chunks as u64)
            })
            .collect(),
        ScheduleKind::OneFOneB | ScheduleKind::Interleaved { .. } | ScheduleKind::ZbH1 => {
            (0..p).map(|s| m.min(p - s) as u64).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_model_zoo::gpt_40b;

    fn derived(schedule: ScheduleKind) -> BubbleMemoryModel {
        let model = gpt_40b();
        let cfg = ParallelismConfig::for_40b_at_scale(8192);
        let device = DeviceSpec::v100();
        let part = StagePartition::new(&model, &cfg, &device);
        MainJobMemoryModel::default().derive(&part, &cfg, &device, schedule)
    }

    #[test]
    fn activation_envelope_matches_closed_forms() {
        assert_eq!(activation_envelope(ScheduleKind::GPipe, 4, 6), vec![6; 4]);
        assert_eq!(
            activation_envelope(ScheduleKind::OneFOneB, 4, 6),
            vec![4, 3, 2, 1]
        );
        assert_eq!(
            activation_envelope(ScheduleKind::ZbH1, 4, 2),
            vec![2, 2, 2, 1]
        );
        assert_eq!(
            activation_envelope(ScheduleKind::Interleaved { chunks: 1 }, 4, 6),
            activation_envelope(ScheduleKind::OneFOneB, 4, 6)
        );
        // Multi-chunk peaks are measured, never below 1F1B's closed form.
        let il = activation_envelope(ScheduleKind::Interleaved { chunks: 2 }, 4, 8);
        for (s, &peak) in il.iter().enumerate() {
            assert!(peak >= (8usize.min(4 - s)) as u64, "stage {s}: {peak}");
        }
    }

    #[test]
    fn uniform_model_is_kind_and_stage_independent() {
        let m = BubbleMemoryModel::measured_default();
        let v = Bytes::from_gib_f64(4.5);
        assert_eq!(m.free(0, BubbleKind::FwdBwd), v);
        assert_eq!(m.free(15, BubbleKind::FillDrain), v);
    }

    #[test]
    fn fill_drain_frees_at_least_as_much_as_fwd_bwd() {
        let m = derived(ScheduleKind::GPipe);
        for s in 0..16 {
            assert!(
                m.free(s, BubbleKind::FillDrain) >= m.free(s, BubbleKind::FwdBwd),
                "stage {s}"
            );
        }
    }

    #[test]
    fn derived_free_memory_is_plausible() {
        // DESIGN.md anchor: the paper measured ≈4.5 GB free; the derived
        // model should land in single-digit GiB, not 0 or 16.
        let m = derived(ScheduleKind::GPipe);
        for s in 0..16 {
            let f = m.free(s, BubbleKind::FwdBwd).as_gib();
            assert!((1.0..12.0).contains(&f), "stage {s}: {f} GiB");
        }
    }

    #[test]
    fn one_f_one_b_holds_fewer_activations_on_late_stages() {
        let gpipe = derived(ScheduleKind::GPipe);
        let ofob = derived(ScheduleKind::OneFOneB);
        // At m=8, p=16: stage 15 keeps min(8, 1)=1 microbatch under 1F1B
        // vs 8 under GPipe.
        assert!(
            ofob.free(15, BubbleKind::FwdBwd) >= gpipe.free(15, BubbleKind::FwdBwd),
            "1F1B should free at least as much on the last stage"
        );
    }

    #[test]
    fn interleaved_residency_is_measured_not_borrowed_from_one_f_one_b() {
        // The interleaved greedy runs forwards further ahead than 1F1B's
        // warmup, so early stages hold *more* activation memory — the
        // derived model must reflect the emitted schedule, not 1F1B's
        // closed form. Needs m ≥ p for the bounds to separate (below
        // that both cap at m): the 2K-GPU point is m=32 on p=16.
        let derived = |schedule| {
            let model = gpt_40b();
            let cfg = ParallelismConfig::for_40b_at_scale(2048);
            let device = DeviceSpec::v100();
            let part = StagePartition::new(&model, &cfg, &device);
            MainJobMemoryModel::default().derive(&part, &cfg, &device, schedule)
        };
        let ofob = derived(ScheduleKind::OneFOneB);
        let il2 = derived(ScheduleKind::Interleaved { chunks: 2 });
        assert!(
            il2.free(0, BubbleKind::FwdBwd) < ofob.free(0, BubbleKind::FwdBwd),
            "stage 0 should hold more under interleaved: {} vs {}",
            il2.free(0, BubbleKind::FwdBwd),
            ofob.free(0, BubbleKind::FwdBwd)
        );
        // 1-chunk interleaved is 1F1B bit for bit, memory model included.
        let il1 = derived(ScheduleKind::Interleaved { chunks: 1 });
        assert_eq!(il1, ofob);
    }

    #[test]
    fn with_extra_shifts_everything() {
        let m = BubbleMemoryModel::measured_default().with_extra(Bytes::from_gib(2));
        assert_eq!(m.free(3, BubbleKind::FwdBwd), Bytes::from_gib_f64(6.5));
        let per = derived(ScheduleKind::GPipe).with_extra(Bytes::from_gib(1));
        let base = derived(ScheduleKind::GPipe);
        assert_eq!(
            per.free(2, BubbleKind::FillDrain),
            base.free(2, BubbleKind::FillDrain) + Bytes::from_gib(1)
        );
    }

    #[test]
    fn checkpointing_raises_fwd_bwd_free_memory() {
        let model = gpt_40b();
        let cfg = ParallelismConfig::for_40b_at_scale(8192);
        let device = DeviceSpec::v100();
        let part = StagePartition::new(&model, &cfg, &device);
        let with = MainJobMemoryModel {
            activation_checkpointing: true,
            ..Default::default()
        }
        .derive(&part, &cfg, &device, ScheduleKind::GPipe);
        let without = MainJobMemoryModel {
            activation_checkpointing: false,
            ..Default::default()
        }
        .derive(&part, &cfg, &device, ScheduleKind::GPipe);
        assert!(with.free(8, BubbleKind::FwdBwd) > without.free(8, BubbleKind::FwdBwd));
    }
}
