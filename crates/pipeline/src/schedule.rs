//! Pipeline schedule generators: GPipe, 1F1B, interleaved 1F1B and
//! ZB-H1 per-stage instruction sequences with PipeFill's bubble markers
//! inserted where the large bubbles are expected (§4.2, §4.5).
//!
//! The two schedule families beyond the paper's pair reshape the bubble
//! geometry PipeFill gets to fill:
//!
//! * **Interleaved 1F1B** (Megatron-LM virtual pipeline stages): each
//!   device hosts `v` model chunks, shrinking the fill/drain ramp to
//!   `(p-1)/v` chunk-slots at the cost of extra mid-iteration
//!   fragmentation (more, smaller gaps — which PipeFill classifies as
//!   non-contiguous and does not fill).
//! * **ZB-H1** (Qi et al., *Zero Bubble Pipeline Parallelism*): the
//!   backward pass splits into a dependency-critical activation-gradient
//!   half (`B`) and a freely movable weight-gradient half (`W`); the
//!   schedule defers `W` work into what 1F1B leaves as fwd-bwd/drain
//!   bubble, shrinking total bubble time to roughly
//!   `(p-1)·(t_f + t_B - t_W)` per stage.

use serde::{Deserialize, Serialize};

use crate::bubbles::BubbleKind;
use crate::instructions::PipelineInstruction;

/// Which pipeline schedule the main job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// GPipe (Huang et al., 2019): all forwards, then all backwards.
    GPipe,
    /// 1F1B (PipeDream-flush; Narayanan et al., 2019): warmup forwards,
    /// then alternate one-forward-one-backward, then drain.
    OneFOneB,
    /// Interleaved 1F1B (Narayanan et al., 2021): `chunks` virtual
    /// pipeline stages per device. `chunks == 1` is exactly 1F1B (pinned
    /// bit for bit by the conformance suite).
    Interleaved {
        /// Model chunks (virtual stages) per device, `>= 1`.
        chunks: usize,
    },
    /// ZB-H1 (Qi et al., 2023): backward split into B/W instructions;
    /// deferred W work fills what was fwd-bwd bubble, within 1F1B's
    /// activation-memory budget.
    ZbH1,
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleKind::GPipe => write!(f, "GPipe"),
            ScheduleKind::OneFOneB => write!(f, "1F1B"),
            ScheduleKind::Interleaved { chunks } => write!(f, "interleaved:{chunks}"),
            ScheduleKind::ZbH1 => write!(f, "ZB-H1"),
        }
    }
}

impl std::str::FromStr for ScheduleKind {
    type Err = String;

    /// Parses CLI spellings: `gpipe`, `1f1b`, `interleaved` (2 chunks),
    /// `interleaved:<v>`, `zb-h1`. Case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canonical = s.to_ascii_lowercase();
        match canonical.as_str() {
            "gpipe" => Ok(ScheduleKind::GPipe),
            "1f1b" | "one-f-one-b" => Ok(ScheduleKind::OneFOneB),
            "interleaved" => Ok(ScheduleKind::Interleaved { chunks: 2 }),
            "zb-h1" | "zbh1" => Ok(ScheduleKind::ZbH1),
            other => {
                if let Some(v) = other.strip_prefix("interleaved:") {
                    // `usize::from_str` accepts `+2`, `02` and friends;
                    // the round-trip check pins the suffix to the one
                    // canonical decimal spelling so a chunk count never
                    // has two spellings in configs or golden output.
                    let chunks: usize = v.parse().map_err(|_| {
                        format!("interleaved chunk count must be an integer, got '{v}'")
                    })?;
                    if chunks == 0 {
                        return Err(
                            "interleaved needs at least 1 chunk per device, got 'interleaved:0'"
                                .into(),
                        );
                    }
                    if v != chunks.to_string() {
                        return Err(format!(
                            "interleaved chunk count must be a canonical decimal \
                             (write 'interleaved:{chunks}'), got '{v}'"
                        ));
                    }
                    return Ok(ScheduleKind::Interleaved { chunks });
                }
                Err(format!(
                    "unknown schedule '{s}' (gpipe|1f1b|interleaved[:v]|zb-h1)"
                ))
            }
        }
    }
}

impl ScheduleKind {
    /// The four canonical schedules the sweeps and CLI expose
    /// (interleaved at its default 2 chunks per device).
    pub const ALL: [ScheduleKind; 4] = [
        ScheduleKind::GPipe,
        ScheduleKind::OneFOneB,
        ScheduleKind::Interleaved { chunks: 2 },
        ScheduleKind::ZbH1,
    ];

    /// Model chunks per device: `chunks` for the interleaved schedule,
    /// 1 for everything else.
    pub fn chunk_count(self) -> usize {
        match self {
            ScheduleKind::Interleaved { chunks } => chunks,
            _ => 1,
        }
    }

    /// The instruction stream for one iteration on stage `stage` of a
    /// `p`-stage pipeline processing `m` microbatches.
    ///
    /// All schedules end with gradient sync, the optimizer step, and the
    /// fill-drain bubble marker; all carry a fwd-bwd marker immediately
    /// before the stage's first backward.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= p`, `m == 0`, or an interleaved schedule has
    /// zero chunks.
    pub fn stage_instructions(self, stage: usize, p: usize, m: usize) -> Vec<PipelineInstruction> {
        assert!(stage < p, "stage {stage} out of range for {p} stages");
        if let ScheduleKind::Interleaved { chunks } = self {
            assert!(chunks > 0, "interleaved needs at least 1 chunk per device");
            if chunks > 1 {
                // The constructive derivation produces every device's
                // stream in one pass; single-stage callers pay for the
                // fleet, so the engine uses all_stage_instructions.
                return interleaved_all_stage_instructions(p, m, chunks).swap_remove(stage);
            }
        }
        assert!(m > 0, "need at least one microbatch");
        let mut out = Vec::with_capacity(2 * m + 4);
        match self {
            ScheduleKind::GPipe => {
                for i in 0..m {
                    out.push(PipelineInstruction::Forward { microbatch: i });
                }
                out.push(PipelineInstruction::Bubble {
                    kind: BubbleKind::FwdBwd,
                });
                for i in 0..m {
                    out.push(PipelineInstruction::Backward { microbatch: i });
                }
            }
            ScheduleKind::OneFOneB => {
                let warmup = (p - 1 - stage).min(m);
                for i in 0..warmup {
                    out.push(PipelineInstruction::Forward { microbatch: i });
                }
                out.push(PipelineInstruction::Bubble {
                    kind: BubbleKind::FwdBwd,
                });
                let mut next_fwd = warmup;
                for bwd in 0..m {
                    if next_fwd < m {
                        out.push(PipelineInstruction::Forward {
                            microbatch: next_fwd,
                        });
                        next_fwd += 1;
                    }
                    out.push(PipelineInstruction::Backward { microbatch: bwd });
                }
            }
            ScheduleKind::Interleaved { .. } => {
                // chunks == 1 (the multi-chunk case returned above): one
                // chunk per device *is* 1F1B; delegating keeps the
                // instruction streams — and therefore every derived
                // timeline — identical bit for bit.
                return ScheduleKind::OneFOneB.stage_instructions(stage, p, m);
            }
            ScheduleKind::ZbH1 => {
                // Same warmup (and so the same activation-memory envelope)
                // as 1F1B; backwards split into B (emitted eagerly, it
                // unblocks the upstream stage) and W (deferred — during the
                // drain phase one deferred W slots in front of each B,
                // filling the gap 1F1B leaves there, and the rest flush
                // back-to-back before the optimizer step).
                let warmup = (p - 1 - stage).min(m);
                for i in 0..warmup {
                    out.push(PipelineInstruction::Forward { microbatch: i });
                }
                out.push(PipelineInstruction::Bubble {
                    kind: BubbleKind::FwdBwd,
                });
                let mut next_fwd = warmup;
                let mut next_w = 0;
                for bwd in 0..m {
                    if next_fwd < m {
                        out.push(PipelineInstruction::Forward {
                            microbatch: next_fwd,
                        });
                        next_fwd += 1;
                    } else if next_w < bwd {
                        out.push(PipelineInstruction::BackwardWeight { microbatch: next_w });
                        next_w += 1;
                    }
                    out.push(PipelineInstruction::BackwardInput { microbatch: bwd });
                }
                while next_w < m {
                    out.push(PipelineInstruction::BackwardWeight { microbatch: next_w });
                    next_w += 1;
                }
            }
        }
        out.push(PipelineInstruction::GradSync);
        out.push(PipelineInstruction::OptimizerStep);
        out.push(PipelineInstruction::Bubble {
            kind: BubbleKind::FillDrain,
        });
        out
    }

    /// Every stage's instruction stream for one iteration, in stage
    /// order — semantically `(0..p).map(|s| stage_instructions(s, p, m))`,
    /// but the multi-chunk interleaved schedule derives all `p` streams
    /// from a single constructive pass instead of re-simulating the whole
    /// fleet once per stage. The engine builds its streams through this.
    ///
    /// # Panics
    ///
    /// As [`ScheduleKind::stage_instructions`].
    pub fn all_stage_instructions(self, p: usize, m: usize) -> Vec<Vec<PipelineInstruction>> {
        assert!(p > 0, "need at least one stage");
        if let ScheduleKind::Interleaved { chunks } = self {
            assert!(chunks > 0, "interleaved needs at least 1 chunk per device");
            if chunks > 1 {
                return interleaved_all_stage_instructions(p, m, chunks);
            }
        }
        (0..p).map(|s| self.stage_instructions(s, p, m)).collect()
    }
}

/// Interleaved-1F1B streams for every device, derived constructively: a
/// unit-time greedy simulation over the `v·p` virtual stages (per-chunk
/// forward = 1 unit, backward = 2, matching the repo's 2:1 calibration)
/// schedules every (chunk, microbatch) unit work-conservingly —
/// globally-earliest start first, backwards preferred over forwards on
/// ties (the 1F1B discipline; forward run-ahead is bounded only by this
/// preference plus dependency latency, not by an explicit warmup cap),
/// Megatron round order breaking the rest. The committed order is a
/// linearization of a real execution, so the engine's in-order replay can
/// never deadlock, whatever the stage timings.
fn interleaved_all_stage_instructions(
    p: usize,
    m: usize,
    v: usize,
) -> Vec<Vec<PipelineInstruction>> {
    assert!(m > 0, "need at least one microbatch");
    const UNSCHEDULED: u64 = u64::MAX;
    let vs_total = v * p;
    let (t_fwd, t_bwd) = (1u64, 2u64);
    // Megatron's microbatch grouping: forwards proceed in rounds of
    // `g` microbatches per chunk (chunk 0's round, then chunk 1's, …).
    let g = p.min(m);
    // Per-virtual-stage cursors (microbatches run in order) and unit
    // completion times.
    let mut next_f = vec![0usize; vs_total];
    let mut next_b = vec![0usize; vs_total];
    let mut f_end = vec![vec![UNSCHEDULED; m]; vs_total];
    let mut b_end = vec![vec![UNSCHEDULED; m]; vs_total];
    let mut dev_free = vec![0u64; p];

    let mut per_device: Vec<Vec<PipelineInstruction>> = vec![Vec::new(); p];
    let total_units = 2 * vs_total * m;
    let mut committed = 0usize;
    while committed < total_units {
        // The globally earliest-starting runnable unit. Ties prefer
        // backwards over forwards (the 1F1B discipline that bounds
        // activation run-ahead), then Megatron's round order: forwards
        // chunk-ascending within a round, backwards chunk-descending.
        let mut best: Option<(u64, u8, usize, bool, usize)> = None;
        for vs in 0..vs_total {
            let dev = vs % p;
            let chunk = vs / p;
            let i = next_b[vs];
            if i < m && f_end[vs][i] != UNSCHEDULED {
                let dep = if vs == vs_total - 1 {
                    f_end[vs][i]
                } else {
                    b_end[vs + 1][i]
                };
                if dep != UNSCHEDULED {
                    let rank = (i / g) * v + (v - 1 - chunk);
                    let key = (dev_free[dev].max(dep), 0u8, rank);
                    if best.is_none_or(|(s0, k0, r0, _, _)| key < (s0, k0, r0)) {
                        best = Some((key.0, key.1, key.2, false, vs));
                    }
                }
            }
            let i = next_f[vs];
            if i < m {
                let dep = if vs == 0 { 0 } else { f_end[vs - 1][i] };
                if dep != UNSCHEDULED {
                    let rank = (i / g) * v + chunk;
                    let key = (dev_free[dev].max(dep), 1u8, rank);
                    if best.is_none_or(|(s0, k0, r0, _, _)| key < (s0, k0, r0)) {
                        best = Some((key.0, key.1, key.2, true, vs));
                    }
                }
            }
        }
        // Deadlock detector: a wedged schedule must panic loudly rather
        // than emit a truncated timeline.
        let (start, _, _, is_fwd, vs) =
            best.expect("interleaved schedule wedged: no runnable unit");
        let dev = vs % p;
        let chunk = vs / p;
        if is_fwd {
            let i = next_f[vs];
            f_end[vs][i] = start + t_fwd;
            next_f[vs] += 1;
            dev_free[dev] = start + t_fwd;
            per_device[dev].push(PipelineInstruction::ForwardChunk {
                chunk,
                microbatch: i,
            });
        } else {
            let i = next_b[vs];
            b_end[vs][i] = start + t_bwd;
            next_b[vs] += 1;
            dev_free[dev] = start + t_bwd;
            per_device[dev].push(PipelineInstruction::BackwardChunk {
                chunk,
                microbatch: i,
            });
        }
        committed += 1;
    }

    per_device
        .into_iter()
        .map(|stream| {
            let mut out = Vec::with_capacity(stream.len() + 4);
            let first_bwd = stream
                .iter()
                .position(|i| i.is_backward())
                .unwrap_or(stream.len());
            out.extend_from_slice(&stream[..first_bwd]);
            out.push(PipelineInstruction::Bubble {
                kind: BubbleKind::FwdBwd,
            });
            out.extend_from_slice(&stream[first_bwd..]);
            out.push(PipelineInstruction::GradSync);
            out.push(PipelineInstruction::OptimizerStep);
            out.push(PipelineInstruction::Bubble {
                kind: BubbleKind::FillDrain,
            });
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_fwd_bwd(instrs: &[PipelineInstruction]) -> (usize, usize) {
        let f = instrs
            .iter()
            .filter(|i| matches!(i, PipelineInstruction::Forward { .. }))
            .count();
        let b = instrs
            .iter()
            .filter(|i| matches!(i, PipelineInstruction::Backward { .. }))
            .count();
        (f, b)
    }

    #[test]
    fn gpipe_emits_all_forwards_then_all_backwards() {
        let instrs = ScheduleKind::GPipe.stage_instructions(2, 4, 3);
        let kinds: Vec<_> = instrs.iter().collect();
        assert!(matches!(
            kinds[0],
            PipelineInstruction::Forward { microbatch: 0 }
        ));
        assert!(matches!(
            kinds[3],
            PipelineInstruction::Bubble {
                kind: BubbleKind::FwdBwd
            }
        ));
        assert!(matches!(
            kinds[4],
            PipelineInstruction::Backward { microbatch: 0 }
        ));
        assert_eq!(count_fwd_bwd(&instrs), (3, 3));
    }

    #[test]
    fn one_f_one_b_warmup_depends_on_stage() {
        let p = 4;
        let m = 6;
        // Last stage: no warmup, strict F,B alternation.
        let last = ScheduleKind::OneFOneB.stage_instructions(3, p, m);
        assert!(matches!(
            last[0],
            PipelineInstruction::Bubble {
                kind: BubbleKind::FwdBwd
            }
        ));
        assert!(matches!(
            last[1],
            PipelineInstruction::Forward { microbatch: 0 }
        ));
        assert!(matches!(
            last[2],
            PipelineInstruction::Backward { microbatch: 0 }
        ));
        // First stage: p-1 = 3 warmup forwards.
        let first = ScheduleKind::OneFOneB.stage_instructions(0, p, m);
        let warmups = first
            .iter()
            .take_while(|i| matches!(i, PipelineInstruction::Forward { .. }))
            .count();
        assert_eq!(warmups, 3);
        assert_eq!(count_fwd_bwd(&first), (m, m));
        assert_eq!(count_fwd_bwd(&last), (m, m));
    }

    #[test]
    fn warmup_capped_by_microbatch_count() {
        // p=8, m=2: stage 0 would want 7 warmups but only 2 exist.
        let instrs = ScheduleKind::OneFOneB.stage_instructions(0, 8, 2);
        assert_eq!(count_fwd_bwd(&instrs), (2, 2));
        let warmups = instrs
            .iter()
            .take_while(|i| matches!(i, PipelineInstruction::Forward { .. }))
            .count();
        assert_eq!(warmups, 2);
    }

    #[test]
    fn both_schedules_end_with_sync_opt_filldrain() {
        for kind in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let instrs = kind.stage_instructions(1, 4, 4);
            let n = instrs.len();
            assert_eq!(instrs[n - 3], PipelineInstruction::GradSync);
            assert_eq!(instrs[n - 2], PipelineInstruction::OptimizerStep);
            assert_eq!(
                instrs[n - 1],
                PipelineInstruction::Bubble {
                    kind: BubbleKind::FillDrain
                }
            );
        }
    }

    #[test]
    fn backwards_are_in_microbatch_order() {
        for kind in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let instrs = kind.stage_instructions(1, 4, 5);
            let bwds: Vec<usize> = instrs
                .iter()
                .filter_map(|i| match i {
                    PipelineInstruction::Backward { microbatch } => Some(*microbatch),
                    _ => None,
                })
                .collect();
            assert_eq!(bwds, vec![0, 1, 2, 3, 4], "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_stage_rejected() {
        let _ = ScheduleKind::GPipe.stage_instructions(4, 4, 2);
    }

    #[test]
    fn parses_and_prints_all_schedules() {
        for kind in ScheduleKind::ALL {
            let round_trip: ScheduleKind = kind.to_string().parse().unwrap();
            assert_eq!(round_trip, kind, "{kind}");
        }
        assert_eq!(
            "interleaved".parse::<ScheduleKind>().unwrap(),
            ScheduleKind::Interleaved { chunks: 2 }
        );
        assert_eq!(
            "interleaved:4".parse::<ScheduleKind>().unwrap(),
            ScheduleKind::Interleaved { chunks: 4 }
        );
        assert_eq!("ZB-H1".parse::<ScheduleKind>().unwrap(), ScheduleKind::ZbH1);
        assert!("interleaved:0".parse::<ScheduleKind>().is_err());
        assert!("interleaved:two".parse::<ScheduleKind>().is_err());
        assert!("bidirectional".parse::<ScheduleKind>().is_err());
        // The canonical spelling is the only accepted one.
        assert!("interleaved:02".parse::<ScheduleKind>().is_err());
        assert!("interleaved:+2".parse::<ScheduleKind>().is_err());
        assert!("interleaved:".parse::<ScheduleKind>().is_err());
        assert_eq!(ScheduleKind::Interleaved { chunks: 3 }.chunk_count(), 3);
        assert_eq!(ScheduleKind::ZbH1.chunk_count(), 1);
    }

    /// The exact diagnostics every `--schedule` surface relays: the CLI
    /// and scenario layers parse through this one `FromStr`, so these
    /// messages are the contract their rejection tests assert.
    #[test]
    fn malformed_interleaved_suffixes_get_exact_diagnostics() {
        let err = "interleaved:0".parse::<ScheduleKind>().unwrap_err();
        assert_eq!(
            err,
            "interleaved needs at least 1 chunk per device, got 'interleaved:0'"
        );
        let err = "interleaved:two".parse::<ScheduleKind>().unwrap_err();
        assert_eq!(err, "interleaved chunk count must be an integer, got 'two'");
        let err = "interleaved:".parse::<ScheduleKind>().unwrap_err();
        assert_eq!(err, "interleaved chunk count must be an integer, got ''");
        let err = "interleaved:-2".parse::<ScheduleKind>().unwrap_err();
        assert_eq!(err, "interleaved chunk count must be an integer, got '-2'");
        for (spelling, canon) in [("02", "2"), ("+2", "2"), ("0004", "4")] {
            let err = format!("interleaved:{spelling}")
                .parse::<ScheduleKind>()
                .unwrap_err();
            assert_eq!(
                err,
                format!(
                    "interleaved chunk count must be a canonical decimal \
                     (write 'interleaved:{canon}'), got '{spelling}'"
                )
            );
        }
        // Case-insensitivity still holds for the canonical spellings.
        assert_eq!(
            "Interleaved:4".parse::<ScheduleKind>().unwrap(),
            ScheduleKind::Interleaved { chunks: 4 }
        );
    }

    #[test]
    fn one_chunk_interleaved_is_one_f_one_b_bit_for_bit() {
        for (p, m) in [(4usize, 6usize), (8, 2), (1, 3), (5, 5)] {
            for stage in 0..p {
                assert_eq!(
                    ScheduleKind::Interleaved { chunks: 1 }.stage_instructions(stage, p, m),
                    ScheduleKind::OneFOneB.stage_instructions(stage, p, m),
                    "p={p} m={m} stage={stage}"
                );
            }
        }
    }

    #[test]
    fn zb_h1_splits_every_backward_and_defers_weight_work() {
        let (p, m) = (4usize, 8usize);
        for stage in 0..p {
            let instrs = ScheduleKind::ZbH1.stage_instructions(stage, p, m);
            let inputs: Vec<usize> = instrs
                .iter()
                .filter_map(|i| match i {
                    PipelineInstruction::BackwardInput { microbatch } => Some(*microbatch),
                    _ => None,
                })
                .collect();
            let weights: Vec<usize> = instrs
                .iter()
                .filter_map(|i| match i {
                    PipelineInstruction::BackwardWeight { microbatch } => Some(*microbatch),
                    _ => None,
                })
                .collect();
            let expect: Vec<usize> = (0..m).collect();
            assert_eq!(inputs, expect, "stage {stage}: every B exactly once");
            assert_eq!(weights, expect, "stage {stage}: every W exactly once");
            assert!(
                !instrs
                    .iter()
                    .any(|i| matches!(i, PipelineInstruction::Backward { .. })),
                "ZB-H1 never emits an unsplit backward"
            );
            // W_i never runs before its B_i.
            for i in 0..m {
                let b_pos = instrs
                    .iter()
                    .position(|x| *x == PipelineInstruction::BackwardInput { microbatch: i })
                    .unwrap();
                let w_pos = instrs
                    .iter()
                    .position(|x| *x == PipelineInstruction::BackwardWeight { microbatch: i })
                    .unwrap();
                assert!(b_pos < w_pos, "stage {stage} microbatch {i}");
            }
        }
        // The last stage ends with a burst of deferred W's.
        let last = ScheduleKind::ZbH1.stage_instructions(p - 1, p, m);
        let n = last.len();
        assert_eq!(
            last[n - 4],
            PipelineInstruction::BackwardWeight { microbatch: m - 1 }
        );
    }

    #[test]
    fn interleaved_emits_every_chunk_unit_exactly_once() {
        for (p, m, v) in [(4usize, 8usize, 2usize), (4, 4, 4), (3, 2, 2), (2, 5, 3)] {
            for stage in 0..p {
                let instrs =
                    ScheduleKind::Interleaved { chunks: v }.stage_instructions(stage, p, m);
                let mut fwd = vec![vec![false; m]; v];
                let mut bwd = vec![vec![false; m]; v];
                for i in &instrs {
                    match i {
                        PipelineInstruction::ForwardChunk { chunk, microbatch } => {
                            assert!(!fwd[*chunk][*microbatch], "duplicate F");
                            fwd[*chunk][*microbatch] = true;
                        }
                        PipelineInstruction::BackwardChunk { chunk, microbatch } => {
                            assert!(!bwd[*chunk][*microbatch], "duplicate B");
                            bwd[*chunk][*microbatch] = true;
                        }
                        PipelineInstruction::Forward { .. }
                        | PipelineInstruction::Backward { .. } => {
                            panic!("interleaved streams are fully chunked")
                        }
                        _ => {}
                    }
                }
                assert!(fwd.iter().flatten().all(|&x| x), "p={p} m={m} v={v}");
                assert!(bwd.iter().flatten().all(|&x| x), "p={p} m={m} v={v}");
            }
        }
    }

    #[test]
    fn all_schedules_end_with_sync_opt_filldrain() {
        for kind in ScheduleKind::ALL {
            let instrs = kind.stage_instructions(1, 4, 4);
            let n = instrs.len();
            assert_eq!(instrs[n - 3], PipelineInstruction::GradSync, "{kind}");
            assert_eq!(instrs[n - 2], PipelineInstruction::OptimizerStep, "{kind}");
            assert_eq!(
                instrs[n - 1],
                PipelineInstruction::Bubble {
                    kind: BubbleKind::FillDrain
                },
                "{kind}"
            );
            assert_eq!(
                instrs
                    .iter()
                    .filter(|i| matches!(
                        i,
                        PipelineInstruction::Bubble {
                            kind: BubbleKind::FwdBwd
                        }
                    ))
                    .count(),
                1,
                "{kind}: exactly one fwd-bwd marker"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 chunk")]
    fn zero_chunk_interleaved_rejected() {
        let _ = ScheduleKind::Interleaved { chunks: 0 }.stage_instructions(0, 4, 4);
    }

    #[test]
    fn all_stage_instructions_matches_per_stage_emission() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 1 },
            ScheduleKind::Interleaved { chunks: 2 },
            ScheduleKind::Interleaved { chunks: 3 },
            ScheduleKind::ZbH1,
        ] {
            for (p, m) in [(1usize, 1usize), (4, 6), (5, 3)] {
                let all = kind.all_stage_instructions(p, m);
                assert_eq!(all.len(), p, "{kind} p={p} m={m}");
                for (s, expect) in all.iter().enumerate() {
                    assert_eq!(
                        &kind.stage_instructions(s, p, m),
                        expect,
                        "{kind} p={p} m={m} stage {s}"
                    );
                }
            }
        }
    }
}
