//! Pipeline schedule generators: GPipe and 1F1B per-stage instruction
//! sequences with PipeFill's bubble markers inserted where the large
//! bubbles are expected (§4.2, §4.5).

use serde::{Deserialize, Serialize};

use crate::bubbles::BubbleKind;
use crate::instructions::PipelineInstruction;

/// Which pipeline schedule the main job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// GPipe (Huang et al., 2019): all forwards, then all backwards.
    GPipe,
    /// 1F1B (PipeDream-flush; Narayanan et al., 2019): warmup forwards,
    /// then alternate one-forward-one-backward, then drain.
    OneFOneB,
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleKind::GPipe => write!(f, "GPipe"),
            ScheduleKind::OneFOneB => write!(f, "1F1B"),
        }
    }
}

impl ScheduleKind {
    /// The instruction stream for one iteration on stage `stage` of a
    /// `p`-stage pipeline processing `m` microbatches.
    ///
    /// Both schedules end with gradient sync, the optimizer step, and the
    /// fill-drain bubble marker; both carry a fwd-bwd marker immediately
    /// before the stage's first backward.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= p` or `m == 0`.
    pub fn stage_instructions(self, stage: usize, p: usize, m: usize) -> Vec<PipelineInstruction> {
        assert!(stage < p, "stage {stage} out of range for {p} stages");
        assert!(m > 0, "need at least one microbatch");
        let mut out = Vec::with_capacity(2 * m + 4);
        match self {
            ScheduleKind::GPipe => {
                for i in 0..m {
                    out.push(PipelineInstruction::Forward { microbatch: i });
                }
                out.push(PipelineInstruction::Bubble {
                    kind: BubbleKind::FwdBwd,
                });
                for i in 0..m {
                    out.push(PipelineInstruction::Backward { microbatch: i });
                }
            }
            ScheduleKind::OneFOneB => {
                let warmup = (p - 1 - stage).min(m);
                for i in 0..warmup {
                    out.push(PipelineInstruction::Forward { microbatch: i });
                }
                out.push(PipelineInstruction::Bubble {
                    kind: BubbleKind::FwdBwd,
                });
                let mut next_fwd = warmup;
                for bwd in 0..m {
                    if next_fwd < m {
                        out.push(PipelineInstruction::Forward {
                            microbatch: next_fwd,
                        });
                        next_fwd += 1;
                    }
                    out.push(PipelineInstruction::Backward { microbatch: bwd });
                }
            }
        }
        out.push(PipelineInstruction::GradSync);
        out.push(PipelineInstruction::OptimizerStep);
        out.push(PipelineInstruction::Bubble {
            kind: BubbleKind::FillDrain,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_fwd_bwd(instrs: &[PipelineInstruction]) -> (usize, usize) {
        let f = instrs
            .iter()
            .filter(|i| matches!(i, PipelineInstruction::Forward { .. }))
            .count();
        let b = instrs
            .iter()
            .filter(|i| matches!(i, PipelineInstruction::Backward { .. }))
            .count();
        (f, b)
    }

    #[test]
    fn gpipe_emits_all_forwards_then_all_backwards() {
        let instrs = ScheduleKind::GPipe.stage_instructions(2, 4, 3);
        let kinds: Vec<_> = instrs.iter().collect();
        assert!(matches!(
            kinds[0],
            PipelineInstruction::Forward { microbatch: 0 }
        ));
        assert!(matches!(
            kinds[3],
            PipelineInstruction::Bubble {
                kind: BubbleKind::FwdBwd
            }
        ));
        assert!(matches!(
            kinds[4],
            PipelineInstruction::Backward { microbatch: 0 }
        ));
        assert_eq!(count_fwd_bwd(&instrs), (3, 3));
    }

    #[test]
    fn one_f_one_b_warmup_depends_on_stage() {
        let p = 4;
        let m = 6;
        // Last stage: no warmup, strict F,B alternation.
        let last = ScheduleKind::OneFOneB.stage_instructions(3, p, m);
        assert!(matches!(
            last[0],
            PipelineInstruction::Bubble {
                kind: BubbleKind::FwdBwd
            }
        ));
        assert!(matches!(
            last[1],
            PipelineInstruction::Forward { microbatch: 0 }
        ));
        assert!(matches!(
            last[2],
            PipelineInstruction::Backward { microbatch: 0 }
        ));
        // First stage: p-1 = 3 warmup forwards.
        let first = ScheduleKind::OneFOneB.stage_instructions(0, p, m);
        let warmups = first
            .iter()
            .take_while(|i| matches!(i, PipelineInstruction::Forward { .. }))
            .count();
        assert_eq!(warmups, 3);
        assert_eq!(count_fwd_bwd(&first), (m, m));
        assert_eq!(count_fwd_bwd(&last), (m, m));
    }

    #[test]
    fn warmup_capped_by_microbatch_count() {
        // p=8, m=2: stage 0 would want 7 warmups but only 2 exist.
        let instrs = ScheduleKind::OneFOneB.stage_instructions(0, 8, 2);
        assert_eq!(count_fwd_bwd(&instrs), (2, 2));
        let warmups = instrs
            .iter()
            .take_while(|i| matches!(i, PipelineInstruction::Forward { .. }))
            .count();
        assert_eq!(warmups, 2);
    }

    #[test]
    fn both_schedules_end_with_sync_opt_filldrain() {
        for kind in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let instrs = kind.stage_instructions(1, 4, 4);
            let n = instrs.len();
            assert_eq!(instrs[n - 3], PipelineInstruction::GradSync);
            assert_eq!(instrs[n - 2], PipelineInstruction::OptimizerStep);
            assert_eq!(
                instrs[n - 1],
                PipelineInstruction::Bubble {
                    kind: BubbleKind::FillDrain
                }
            );
        }
    }

    #[test]
    fn backwards_are_in_microbatch_order() {
        for kind in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            let instrs = kind.stage_instructions(1, 4, 5);
            let bwds: Vec<usize> = instrs
                .iter()
                .filter_map(|i| match i {
                    PipelineInstruction::Backward { microbatch } => Some(*microbatch),
                    _ => None,
                })
                .collect();
            assert_eq!(bwds, vec![0, 1, 2, 3, 4], "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_stage_rejected() {
        let _ = ScheduleKind::GPipe.stage_instructions(4, 4, 2);
    }
}
