//! Property tests for the scenario API: `render → parse` is identity
//! over arbitrary valid specs, and a scenario that went through text
//! produces byte-identical `BackendMetrics` to its builder-constructed
//! twin across seeds.

use proptest::prelude::*;

use pipefill_core::{BackendConfig, BackendKind, PolicyKind};
use pipefill_pipeline::ScheduleKind;
use pipefill_scenario::{toml, ScenarioSpec};

/// An arbitrary schedule from the canonical family.
fn schedule_for(pick: u8) -> ScheduleKind {
    match pick % 5 {
        0 => ScheduleKind::GPipe,
        1 => ScheduleKind::OneFOneB,
        2 => ScheduleKind::ZbH1,
        3 => ScheduleKind::Interleaved { chunks: 2 },
        _ => ScheduleKind::Interleaved { chunks: 4 },
    }
}

fn policy_for(pick: u8) -> PolicyKind {
    match pick % 4 {
        0 => PolicyKind::Fifo,
        1 => PolicyKind::Sjf,
        2 => PolicyKind::MakespanMin,
        _ => PolicyKind::DeadlineThenSjf,
    }
}

/// Builds a *valid* spec for the chosen backend, setting each applicable
/// field only when its mask bit is on — so the round trip is exercised
/// over every subset of explicitly-set keys, not just full specs.
fn spec_for(backend_pick: u8, mask: u16, seed: u64, pick: u8) -> ScenarioSpec {
    let backend = match backend_pick % 4 {
        0 => BackendKind::Coarse,
        1 => BackendKind::Physical,
        2 => BackendKind::Fault,
        _ => BackendKind::Fleet,
    };
    let mut spec = ScenarioSpec::run(backend);
    let on = |bit: u16| mask & (1 << bit) != 0;
    if on(0) {
        spec = spec.with_name("prop scenario #1");
    }
    if on(1) {
        spec = spec.with_schedule(schedule_for(pick));
    }
    if on(2) {
        spec = spec.with_seed(seed);
    }
    match backend {
        BackendKind::Coarse => {
            if on(3) {
                spec = spec.with_horizon_secs(300 + seed % 600);
            }
            if on(4) {
                spec = spec.with_load(0.5 + (seed % 8) as f64 * 0.37);
            }
            if on(5) {
                spec = spec.with_policy(policy_for(pick));
            }
        }
        BackendKind::Physical | BackendKind::Fault => {
            if on(3) {
                spec = spec.with_iterations(10 + (seed % 40) as usize);
            }
            if on(4) {
                spec = spec.with_fill_fraction((seed % 101) as f64 / 100.0);
            }
            if backend == BackendKind::Fault {
                if on(5) {
                    spec = spec.with_mtbf_secs(if seed.is_multiple_of(3) {
                        f64::INFINITY
                    } else {
                        30.0 + (seed % 1000) as f64 * 1.7
                    });
                }
                if on(6) {
                    spec = spec.with_checkpoint_secs((seed % 80) as f64 / 10.0);
                }
            }
        }
        BackendKind::Fleet => {
            let jobs = 1 + (seed % 3) as usize;
            if on(3) {
                spec = spec.with_jobs(jobs);
            }
            if on(4) {
                spec = spec.with_gpus(jobs.max(1) * (128 + (seed % 4) as usize * 32));
            }
            if on(5) {
                spec = spec.with_iterations(10 + (seed % 30) as usize);
            }
            if on(6) {
                spec = spec.with_mtbf_secs(600.0 + (seed % 100) as f64 * 13.0);
            }
            if on(7) {
                spec = spec.with_policy(policy_for(pick));
            }
        }
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(render(spec)) == spec`, including which fields are
    /// explicitly set, for every backend and every subset of applicable
    /// keys.
    #[test]
    fn render_parse_round_trip_is_identity(
        backend_pick in 0u8..4,
        mask in 0u16..256,
        seed in 0u64..1_000_000,
        pick in 0u8..20,
    ) {
        let spec = spec_for(backend_pick, mask, seed, pick);
        prop_assert!(spec.validate().is_ok(), "generated spec must be valid");
        let text = toml::render(&spec);
        let parsed = toml::parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&parsed, &spec, "round trip drifted for:\n{}", text);
        // Idempotent: rendering the reparse reproduces the document.
        prop_assert_eq!(toml::render(&parsed), text);
    }

    /// Experiment-mode specs round-trip too (grid-override keys only).
    #[test]
    fn experiment_specs_round_trip(iterations in 1usize..500, seed in 0u64..1000, set_iters in 0u8..2) {
        let mut spec = ScenarioSpec::experiment("fig5_fill_fraction").with_seed(seed);
        if set_iters == 1 {
            spec = spec.with_iterations(iterations);
        }
        let text = toml::render(&spec);
        prop_assert_eq!(toml::parse(&text).expect("reparse"), spec);
    }
}

/// Runs a lowered spec to completion and returns the metrics.
fn metrics_of(config: BackendConfig) -> pipefill_core::BackendMetrics {
    config.run().metrics
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The full pipeline is faithful: a spec that went through
    /// render → parse lowers to a run producing **byte-identical**
    /// metrics to its builder-constructed twin, across seeds and
    /// backends. (Cheap grids: short horizons, few iterations.)
    #[test]
    fn parsed_scenario_matches_builder_twin_bitwise(
        backend_pick in 0u8..3,
        seed in 0u64..100,
    ) {
        let spec = match backend_pick % 3 {
            0 => ScenarioSpec::run(BackendKind::Coarse)
                .with_seed(seed)
                .with_horizon_secs(300),
            1 => ScenarioSpec::run(BackendKind::Physical)
                .with_seed(seed)
                .with_iterations(15),
            _ => ScenarioSpec::run(BackendKind::Fault)
                .with_seed(seed)
                .with_iterations(15)
                .with_mtbf_secs(120.0),
        };
        let twin = toml::parse(&toml::render(&spec)).expect("reparse");
        prop_assert_eq!(&twin, &spec);
        let built = metrics_of(spec.lower().expect("valid spec lowers"));
        let parsed = metrics_of(twin.lower().expect("valid twin lowers"));
        prop_assert_eq!(built, parsed, "seed {}: metrics diverged after text round trip", seed);
    }
}
