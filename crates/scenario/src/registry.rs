//! The static experiment registry: every table and figure of the
//! paper's evaluation (plus the extension studies) as an
//! [`Experiment`], discoverable by name.
//!
//! Adding an experiment is a one-file change: implement the trait here
//! and append the instance to [`REGISTRY`]. It is then listed by
//! `pipefill-cli exp --list`, runnable by `exp <name>` or a scenario
//! file, written as `target/experiments/<name>.csv`, and pinned by the
//! registry-driven golden-snapshot suite against
//! `tests/golden/<name>.csv`.

use pipefill_core::experiments::{
    characterization, faults, fill_fraction, fleet, policies, scaling, schedules, sensitivity,
    table1, validation, whatif,
};
use pipefill_executor::ExecutorConfig;
use pipefill_sim_core::SimDuration;

use crate::experiment::{Axis, Experiment, Grid, Scale, Table};
use crate::row;

/// Every registered experiment, in the order `all` runs and `exp
/// --list` prints them.
pub static REGISTRY: &[&dyn Experiment] = &[
    &Table1,
    &Fig4Scaling,
    &Fig5FillFraction,
    &Fig6Validation,
    &Fig6Agreement,
    &Fig7Characterization,
    &Fig8Schedules,
    &ScheduleDepth,
    &Fig9Policies,
    &Fig10aBubbleSize,
    &Fig10bFreeMemory,
    &WhatifOffloadBandwidth,
    &WhatifFaults,
    &FleetScale,
];

/// Looks an experiment up by canonical name or alias.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY
        .iter()
        .find(|e| e.name() == name || e.aliases().contains(&name))
        .copied()
}

/// Spellings that fan out to more than one experiment — the historical
/// `fig8` subcommand printed the depth sweep alongside the schedule
/// comparison, and `fig10` prints both sensitivity panels.
const MULTI_ALIASES: &[(&str, &[&str])] = &[
    ("fig8", &["fig8_schedules", "schedule_depth"]),
    ("fig10", &["fig10a_bubble_size", "fig10b_free_memory"]),
];

/// Resolves an experiment spelling — canonical name, alias, or
/// multi-experiment alias — to the experiments it runs, in run order.
/// This is the one resolution path the CLI, scenario files and library
/// callers share, so `exp fig10` and `experiment = "fig10"` agree.
pub fn resolve(name: &str) -> Option<Vec<&'static dyn Experiment>> {
    if let Some((_, names)) = MULTI_ALIASES.iter().find(|(alias, _)| *alias == name) {
        return Some(
            names
                .iter()
                .map(|n| find(n).expect("multi-alias names a registered experiment"))
                .collect(),
        );
    }
    find(name).map(|e| vec![e])
}

/// Table 1.
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn description(&self) -> &'static str {
        "Table 1: fill-job categories vs the paper's parameter counts"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "size_class",
            "model",
            "params_millions",
            "paper_params_millions",
            "domain",
        ]
    }
    fn grid(&self, _scale: Scale) -> Grid {
        Grid::default()
    }
    fn run(&self, _grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in table1::table1() {
            t.push(row![
                r.model.size_class().to_string(),
                r.model.name(),
                r.params_millions,
                r.paper_params_millions,
                r.model.domain().to_string(),
            ]);
        }
        t
    }
}

/// Figs. 1 & 4.
pub struct Fig4Scaling;

impl Experiment for Fig4Scaling {
    fn name(&self) -> &'static str {
        "fig4_scaling"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig4", "fig1"]
    }
    fn description(&self) -> &'static str {
        "Figs. 1 & 4: scaling the 40B main job 1K-8K GPUs (days, bubble, TFLOPS, GPUs saved)"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "gpus",
            "microbatches",
            "bubble_ratio",
            "days_to_train",
            "traditional_tflops",
            "pipefill_trace_mix_tflops",
            "pipefill_bert_inf_tflops",
            "gpus_saved_trace_mix",
            "gpus_saved_best",
        ]
    }
    fn grid(&self, _scale: Scale) -> Grid {
        Grid::default()
    }
    fn run(&self, _grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in scaling::fig4_scaling() {
            t.push(row![
                r.gpus,
                r.microbatches,
                r.bubble_ratio,
                r.days_to_train,
                r.traditional_tflops,
                r.pipefill_trace_mix_tflops,
                r.pipefill_bert_inf_tflops,
                r.gpus_saved_trace_mix,
                r.gpus_saved_best,
            ]);
        }
        t
    }
}

/// Fig. 5.
pub struct Fig5FillFraction;

impl Experiment for Fig5FillFraction {
    fn name(&self) -> &'static str {
        "fig5_fill_fraction"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig5"]
    }
    fn description(&self) -> &'static str {
        "Fig. 5: fill-fraction sweep on the physical 5B cluster (slowdown vs recovered TFLOPS)"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "fill_fraction",
            "main_slowdown",
            "recovered_tflops",
            "total_tflops",
        ]
    }
    fn grid(&self, scale: Scale) -> Grid {
        match scale {
            Scale::Full => Grid::sim(300, 7),
            Scale::Golden => Grid::sim(40, 7),
        }
    }
    fn axes(&self) -> &'static [Axis] {
        &[Axis::Iterations, Axis::Seed]
    }
    fn simulation_backed(&self) -> bool {
        true
    }
    fn run(&self, grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in fill_fraction::fig5_fill_fraction(grid.iterations, grid.seed) {
            t.push(row![
                r.fill_fraction,
                r.main_slowdown,
                r.recovered_tflops,
                r.total_tflops,
            ]);
        }
        t
    }
}

/// Fig. 6 (mix sweep).
pub struct Fig6Validation;

impl Experiment for Fig6Validation {
    fn name(&self) -> &'static str {
        "fig6_validation"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig6"]
    }
    fn description(&self) -> &'static str {
        "Fig. 6: simulator validation across the XLM/EfficientNet mix sweep"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "xlm_fraction",
            "physical_slowdown",
            "physical_recovered",
            "simulator_recovered",
            "relative_error",
        ]
    }
    fn grid(&self, scale: Scale) -> Grid {
        match scale {
            Scale::Full => Grid::sim(300, 7),
            Scale::Golden => Grid::sim(60, 7),
        }
    }
    fn axes(&self) -> &'static [Axis] {
        &[Axis::Iterations, Axis::Seed]
    }
    fn simulation_backed(&self) -> bool {
        true
    }
    fn summary(&self, table: &Table) -> Option<String> {
        let max_err = table
            .f64_column("relative_error")
            .into_iter()
            .fold(0.0, f64::max);
        Some(format!(
            "maximum simulator error: {:.2}% (paper: <2%)",
            100.0 * max_err
        ))
    }
    fn run(&self, grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in validation::fig6_validation(grid.iterations, grid.seed) {
            t.push(row![
                r.xlm_fraction,
                r.physical_slowdown,
                r.physical_recovered,
                r.simulator_recovered,
                r.relative_error,
            ]);
        }
        t
    }
}

/// Fig. 6 (cross-backend agreement).
pub struct Fig6Agreement;

impl Experiment for Fig6Agreement {
    fn name(&self) -> &'static str {
        "fig6_agreement"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["agree", "agreement"]
    }
    fn description(&self) -> &'static str {
        "Fig. 6: coarse-vs-physical backend agreement, replicated across seeds"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "seed",
            "coarse_recovered",
            "physical_recovered",
            "physical_slowdown",
            "relative_error",
        ]
    }
    fn grid(&self, scale: Scale) -> Grid {
        match scale {
            Scale::Full => Grid {
                seeds: 3,
                iterations: 200,
                ..Grid::default()
            },
            Scale::Golden => Grid {
                seeds: 2,
                iterations: 60,
                ..Grid::default()
            },
        }
    }
    fn axes(&self) -> &'static [Axis] {
        &[Axis::Seeds, Axis::Iterations]
    }
    fn simulation_backed(&self) -> bool {
        true
    }
    fn summary(&self, table: &Table) -> Option<String> {
        let max_err = table
            .f64_column("relative_error")
            .into_iter()
            .fold(0.0, f64::max);
        Some(format!(
            "maximum disagreement: {:.2}% (paper Fig. 6: <2%; tolerance {:.0}%)",
            100.0 * max_err,
            100.0 * validation::AGREEMENT_TOLERANCE
        ))
    }
    fn run(&self, grid: &Grid) -> Table {
        let seeds: Vec<u64> = (1..=grid.seeds).collect();
        let mut t = Table::new(self.columns());
        for r in validation::fig6_agreement(&seeds, grid.iterations) {
            t.push(row![
                r.seed,
                r.coarse_recovered,
                r.physical_recovered,
                r.physical_slowdown,
                r.relative_error,
            ]);
        }
        t
    }
}

/// Fig. 7.
pub struct Fig7Characterization;

impl Experiment for Fig7Characterization {
    fn name(&self) -> &'static str {
        "fig7_characterization"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig7"]
    }
    fn description(&self) -> &'static str {
        "Fig. 7: fill-job characterization (achieved TFLOPS, relative performance, Alg-1 ablation)"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "model",
            "kind",
            "tflops_during_execution",
            "relative_performance",
            "feasible_stages",
            "recovered_tflops",
            "naive_recovered_tflops",
        ]
    }
    fn grid(&self, _scale: Scale) -> Grid {
        Grid::default()
    }
    fn run(&self, _grid: &Grid) -> Table {
        let rows = characterization::fig7_characterization(
            &characterization::fig7_default_main(),
            &ExecutorConfig::default(),
        );
        let mut t = Table::new(self.columns());
        for r in rows {
            t.push(row![
                r.model.name(),
                r.kind.to_string(),
                r.tflops_during_execution,
                r.relative_performance,
                r.feasible_stages,
                r.recovered_tflops,
                r.naive_recovered_tflops,
            ]);
        }
        t
    }
}

/// Fig. 8.
pub struct Fig8Schedules;

impl Experiment for Fig8Schedules {
    fn name(&self) -> &'static str {
        "fig8_schedules"
    }
    // "fig8" is a multi-alias (this sweep + the depth sweep), resolved
    // by [`resolve`] — listing it here too would make `find("fig8")`
    // silently run half of what `resolve("fig8")` runs.
    fn aliases(&self) -> &'static [&'static str] {
        &["schedules"]
    }
    fn description(&self) -> &'static str {
        "Fig. 8: GPipe vs 1F1B fillable bubble and recovered TFLOPS, 2K-16K GPUs"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "gpus",
            "schedule",
            "bubble_ratio",
            "fillable_ratio",
            "recovered_tflops",
        ]
    }
    fn grid(&self, _scale: Scale) -> Grid {
        Grid::default()
    }
    fn run(&self, _grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in schedules::fig8_schedules(&ExecutorConfig::default()) {
            t.push(row![
                r.gpus,
                r.schedule.to_string(),
                r.bubble_ratio,
                r.fillable_ratio,
                r.recovered_tflops,
            ]);
        }
        t
    }
}

/// The 4-schedule × depth geometry sweep.
pub struct ScheduleDepth;

impl Experiment for ScheduleDepth {
    fn name(&self) -> &'static str {
        "schedule_depth"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["depth"]
    }
    fn description(&self) -> &'static str {
        "Extension: 4-schedule x depth bubble-geometry sweep (engine vs closed forms)"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "schedule",
            "stages",
            "microbatches",
            "period_secs",
            "bubble_ratio",
            "fillable_ratio",
            "formula_bubble_ratio",
        ]
    }
    fn grid(&self, _scale: Scale) -> Grid {
        Grid::default()
    }
    fn run(&self, _grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in schedules::schedule_depth_sweep() {
            t.push(row![
                r.schedule.to_string(),
                r.stages,
                r.microbatches,
                r.period_secs,
                r.bubble_ratio,
                r.fillable_ratio,
                r.formula_bubble_ratio,
            ]);
        }
        t
    }
}

/// Fig. 9.
pub struct Fig9Policies;

impl Experiment for Fig9Policies {
    fn name(&self) -> &'static str {
        "fig9_policies"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig9"]
    }
    fn description(&self) -> &'static str {
        "Fig. 9: scheduling-policy sensitivity (SJF vs Makespan-Min over the load axis)"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "policy",
            "load",
            "mean_jct_secs",
            "makespan_secs",
            "completed",
        ]
    }
    fn grid(&self, scale: Scale) -> Grid {
        match scale {
            Scale::Full => Grid::horizon(3600, 11),
            Scale::Golden => Grid::horizon(1200, 11),
        }
    }
    fn axes(&self) -> &'static [Axis] {
        &[Axis::HorizonSecs, Axis::Seed]
    }
    fn simulation_backed(&self) -> bool {
        true
    }
    fn run(&self, grid: &Grid) -> Table {
        let rows = policies::fig9_policies(grid.seed, SimDuration::from_secs(grid.horizon_secs));
        let mut t = Table::new(self.columns());
        for r in rows {
            t.push(row![
                r.policy.to_string(),
                r.load,
                r.mean_jct_secs,
                r.makespan_secs,
                r.completed,
            ]);
        }
        t
    }
}

/// Fig. 10a.
pub struct Fig10aBubbleSize;

impl Experiment for Fig10aBubbleSize {
    fn name(&self) -> &'static str {
        "fig10a_bubble_size"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig10a"]
    }
    fn description(&self) -> &'static str {
        "Fig. 10a: sensitivity to bubble size (main-job model scaled 50-200%)"
    }
    fn columns(&self) -> &'static [&'static str] {
        &["model_scale", "mean_fillable_secs", "recovered_tflops"]
    }
    fn grid(&self, _scale: Scale) -> Grid {
        Grid::default()
    }
    fn run(&self, _grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in sensitivity::fig10a_bubble_size(&ExecutorConfig::default()) {
            t.push(row![
                r.model_scale,
                r.mean_fillable_secs,
                r.recovered_tflops
            ]);
        }
        t
    }
}

/// Fig. 10b.
pub struct Fig10bFreeMemory;

impl Experiment for Fig10bFreeMemory {
    fn name(&self) -> &'static str {
        "fig10b_free_memory"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig10b"]
    }
    fn description(&self) -> &'static str {
        "Fig. 10b: sensitivity to bubble free memory (2-8 GiB)"
    }
    fn columns(&self) -> &'static [&'static str] {
        &["free_gib", "recovered_tflops"]
    }
    fn grid(&self, _scale: Scale) -> Grid {
        Grid::default()
    }
    fn run(&self, _grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in sensitivity::fig10b_free_memory(&ExecutorConfig::default()) {
            t.push(row![r.free_gib, r.recovered_tflops]);
        }
        t
    }
}

/// §6.2 newer-hardware what-if.
pub struct WhatifOffloadBandwidth;

impl Experiment for WhatifOffloadBandwidth {
    fn name(&self) -> &'static str {
        "whatif_offload_bandwidth"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["whatif"]
    }
    fn description(&self) -> &'static str {
        "Extension: host-link bandwidth what-if (the offload tax on newer hardware)"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "host_gbps",
            "xlm_streamed_iter_ms",
            "offload_tax",
            "bert_plain_iter_ms",
        ]
    }
    fn grid(&self, _scale: Scale) -> Grid {
        Grid::default()
    }
    fn run(&self, _grid: &Grid) -> Table {
        let mut t = Table::new(self.columns());
        for r in whatif::whatif_offload_bandwidth() {
            t.push(row![
                r.host_gbps,
                r.xlm_streamed_iter_ms,
                r.offload_tax,
                r.bert_plain_iter_ms,
            ]);
        }
        t
    }
}

/// Fault-tolerance MTBF × checkpoint-cost map.
pub struct WhatifFaults;

impl WhatifFaults {
    /// Rows → table, split out so the `'none'` MTBF rendering is
    /// testable without a simulation run.
    fn table(rows: &[faults::FaultWhatIfRow]) -> Table {
        let mut t = Table::new(WhatifFaults.columns());
        for r in rows {
            // The disabled-injection sentinel is written as the explicit
            // string the CLI accepts ('none'), not as a float infinity —
            // non-finite numeric renderings are treated as bugs.
            let mtbf = if r.mtbf_secs.is_finite() {
                crate::Value::Float(r.mtbf_secs)
            } else {
                crate::Value::from("none")
            };
            let mut row = row![
                r.checkpoint_cost_secs,
                r.failures,
                r.evictions,
                r.lost_fill_flops,
                r.recovered_tflops,
                r.goodput_fraction,
                r.main_slowdown,
            ];
            row.insert(0, mtbf);
            t.push(row);
        }
        t
    }
}

impl Experiment for WhatifFaults {
    fn name(&self) -> &'static str {
        "whatif_faults"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["faults"]
    }
    fn description(&self) -> &'static str {
        "Extension: MTBF x checkpoint-cost fault-tolerance map through the fault backend"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "mtbf_secs",
            "checkpoint_cost_secs",
            "failures",
            "evictions",
            "lost_fill_flops",
            "recovered_tflops",
            "goodput_fraction",
            "main_slowdown",
        ]
    }
    fn grid(&self, scale: Scale) -> Grid {
        match scale {
            Scale::Full => Grid::sim(200, 7),
            Scale::Golden => Grid::sim(40, 7),
        }
    }
    fn axes(&self) -> &'static [Axis] {
        &[Axis::Iterations, Axis::Seed]
    }
    fn simulation_backed(&self) -> bool {
        true
    }
    fn run(&self, grid: &Grid) -> Table {
        WhatifFaults::table(&faults::whatif_faults(grid.iterations, grid.seed))
    }
}

/// Fleet-size scaling.
pub struct FleetScale;

impl Experiment for FleetScale {
    fn name(&self) -> &'static str {
        "fleet_scale"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fleet-scale"]
    }
    fn description(&self) -> &'static str {
        "Extension: fleet-size scaling, 1-64 concurrent main jobs on one global fill queue"
    }
    fn columns(&self) -> &'static [&'static str] {
        &[
            "jobs",
            "gpus",
            "devices",
            "recovered_tflops_per_gpu",
            "main_tflops_per_gpu",
            "total_tflops_per_gpu",
            "mean_slowdown",
            "fill_jobs_completed",
            "failures",
            "evictions",
            "cross_job_dispatches",
            "peak_queue_depth",
            "goodput_fraction",
        ]
    }
    fn grid(&self, scale: Scale) -> Grid {
        match scale {
            Scale::Full => Grid {
                fleet_sizes: vec![1, 4, 16, 64],
                iterations: 150,
                seed: 7,
                ..Grid::default()
            },
            Scale::Golden => Grid {
                fleet_sizes: vec![1, 2, 4],
                iterations: 150,
                seed: 7,
                ..Grid::default()
            },
        }
    }
    fn axes(&self) -> &'static [Axis] {
        &[Axis::Iterations, Axis::Seed]
    }
    fn simulation_backed(&self) -> bool {
        true
    }
    fn run(&self, grid: &Grid) -> Table {
        let rows = fleet::fleet_scale_with(&grid.fleet_sizes, grid.iterations, grid.seed);
        let mut t = Table::new(self.columns());
        for r in rows {
            t.push(row![
                r.jobs,
                r.gpus,
                r.devices,
                r.recovered_tflops_per_gpu,
                r.main_tflops_per_gpu,
                r.total_tflops_per_gpu,
                r.mean_slowdown,
                r.fill_jobs_completed,
                r.failures,
                r.evictions,
                r.cross_job_dispatches,
                r.peak_queue_depth,
                r.goodput_fraction,
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate experiment names");
        assert!(before >= 12, "the registry must cover all 12+ drivers");
        for e in REGISTRY {
            assert!(find(e.name()).is_some(), "{} not findable", e.name());
            for alias in e.aliases() {
                let hit = find(alias).expect("alias resolves");
                assert_eq!(hit.name(), e.name(), "alias {alias} resolves elsewhere");
            }
            assert!(!e.description().is_empty());
            assert!(!e.columns().is_empty());
        }
        assert!(find("warp-speed").is_none());
    }

    #[test]
    fn aliases_do_not_shadow_canonical_names() {
        for e in REGISTRY {
            for alias in e.aliases() {
                assert!(
                    REGISTRY.iter().all(|other| other.name() != *alias),
                    "alias {alias} collides with a canonical name"
                );
            }
        }
    }

    #[test]
    fn resolve_handles_single_and_multi_aliases_uniformly() {
        assert_eq!(resolve("table1").unwrap().len(), 1);
        assert_eq!(resolve("fig5").unwrap()[0].name(), "fig5_fill_fraction");
        let fig8 = resolve("fig8").unwrap();
        assert_eq!(fig8.len(), 2);
        assert_eq!(fig8[0].name(), "fig8_schedules");
        assert_eq!(fig8[1].name(), "schedule_depth");
        let fig10 = resolve("fig10").unwrap();
        assert_eq!(fig10.len(), 2);
        assert!(resolve("warp-speed").is_none());
        // A multi-alias must not also be a single name/alias — that
        // would make `find` and `resolve` silently disagree.
        for (alias, _) in MULTI_ALIASES {
            assert!(find(alias).is_none(), "{alias} is also a single spelling");
        }
    }

    #[test]
    fn simulation_experiments_declare_their_swept_axes() {
        for e in REGISTRY {
            if e.simulation_backed() {
                assert!(
                    !e.axes().is_empty(),
                    "{}: simulation-backed experiments sweep at least one axis",
                    e.name()
                );
            } else {
                assert!(
                    e.axes().is_empty(),
                    "{}: analysis experiments take no grid overrides",
                    e.name()
                );
            }
        }
    }

    #[test]
    fn golden_grids_match_full_grids_for_analysis_experiments() {
        for e in REGISTRY.iter().filter(|e| !e.simulation_backed()) {
            assert_eq!(
                e.grid(Scale::Full),
                e.grid(Scale::Golden),
                "{}: analysis experiments pin their full grid",
                e.name()
            );
        }
    }

    #[test]
    fn analysis_experiments_produce_schema_true_tables() {
        // The cheap, deterministic experiments run end to end here; the
        // simulation-backed ones are covered by the golden suite.
        for name in ["table1", "fig10b_free_memory", "whatif_offload_bandwidth"] {
            let e = find(name).unwrap();
            let t = e.run(&e.grid(Scale::Full));
            assert!(!t.is_empty(), "{name} produced no rows");
            assert_eq!(t.columns(), e.columns(), "{name} schema drifted");
        }
    }

    #[test]
    fn faults_table_renders_disabled_injection_as_none_not_inf() {
        let row = pipefill_core::experiments::FaultWhatIfRow {
            mtbf_secs: f64::INFINITY,
            checkpoint_cost_secs: 2.0,
            failures: 0,
            evictions: 0,
            lost_fill_flops: 0.0,
            recovered_tflops: 1.0,
            goodput_fraction: 1.0,
            main_slowdown: 0.0,
        };
        let csv = WhatifFaults::table(&[row]).to_csv_string();
        assert!(csv.contains("none,2,"), "{csv}");
        assert!(!csv.contains("inf"), "{csv}");
    }
}
