//! The `Experiment` abstraction: every paper driver behind one uniform
//! trait, returning a schema-carrying [`Table`].
//!
//! An experiment is a named, described sweep with a declared column
//! schema and a parameter [`Grid`] it can run at two scales: the full
//! paper grid ([`Scale::Full`]) and the reduced grid the golden-snapshot
//! suite pins byte-for-byte ([`Scale::Golden`]). Because the trait owns
//! the schema and the rows, persistence is generic — one CSV writer, one
//! pretty-printer, one golden diff — instead of a `save_*`/`print_*`
//! pair per driver.

use std::path::PathBuf;

use pipefill_core::CsvWriter;

/// Which parameter grid an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The full grid of the paper's evaluation (what `pipefill-cli exp`
    /// and `all` run).
    Full,
    /// The reduced grid the golden-snapshot tests pin. Identical to
    /// [`Scale::Full`] for pure-analysis experiments; shrunk for
    /// simulation-backed ones so the pin stays cheap.
    Golden,
}

/// The parameter bag of one experiment run. Each experiment reads the
/// axes it sweeps and ignores the rest; [`Experiment::grid`] supplies
/// the defaults at either scale and callers (CLI flags, scenario files)
/// override individual fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Simulated main-job iterations per grid point.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Trace horizon in seconds (coarse-backend experiments).
    pub horizon_secs: u64,
    /// Replication count for multi-seed studies (seeds `1..=seeds`).
    pub seeds: u64,
    /// Fleet sizes (concurrent main jobs) for the fleet sweep.
    pub fleet_sizes: Vec<usize>,
}

impl Default for Grid {
    fn default() -> Self {
        Grid {
            iterations: 300,
            seed: 7,
            horizon_secs: 3600,
            seeds: 3,
            fleet_sizes: vec![1, 4, 16, 64],
        }
    }
}

/// One overridable axis of a [`Grid`]. Experiments declare which axes
/// they actually sweep ([`Experiment::axes`]) so callers can reject an
/// override of an axis the experiment would silently ignore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `Grid::iterations`.
    Iterations,
    /// `Grid::seed`.
    Seed,
    /// `Grid::horizon_secs`.
    HorizonSecs,
    /// `Grid::seeds`.
    Seeds,
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Axis::Iterations => write!(f, "iterations"),
            Axis::Seed => write!(f, "seed"),
            Axis::HorizonSecs => write!(f, "horizon_secs"),
            Axis::Seeds => write!(f, "seeds"),
        }
    }
}

impl Grid {
    /// A grid with the given iteration count and seed (the knobs of the
    /// physical/fault-backend experiments).
    pub fn sim(iterations: usize, seed: u64) -> Grid {
        Grid {
            iterations,
            seed,
            ..Grid::default()
        }
    }

    /// A grid with the given trace horizon and seed (the knobs of the
    /// coarse-backend experiments).
    pub fn horizon(horizon_secs: u64, seed: u64) -> Grid {
        Grid {
            horizon_secs,
            seed,
            ..Grid::default()
        }
    }

    /// This grid with the explicitly-given axes overridden — the single
    /// implementation behind CLI `exp` flags and experiment-mode
    /// scenario files.
    pub fn with_overrides(
        mut self,
        iterations: Option<usize>,
        seed: Option<u64>,
        horizon_secs: Option<u64>,
        seeds: Option<u64>,
    ) -> Grid {
        if let Some(iterations) = iterations {
            self.iterations = iterations;
        }
        if let Some(seed) = seed {
            self.seed = seed;
        }
        if let Some(horizon_secs) = horizon_secs {
            self.horizon_secs = horizon_secs;
        }
        if let Some(seeds) = seeds {
            self.seeds = seeds;
        }
        self
    }
}

/// One table cell. The `Display` renderings match what the per-driver
/// `save_*` functions historically fed [`CsvWriter`], so the golden
/// snapshots survived the move to generic persistence byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counts, GPU totals, seeds).
    Int(u64),
    /// A float, rendered with Rust's shortest-round-trip `Display`.
    Float(f64),
    /// A string (model names, schedules, policies, sentinels).
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    /// The float behind this cell, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(_) => None,
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as u64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Builds a row of [`Value`]s from mixed cell expressions.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::Value::from($v)),*]
    };
}

/// A schema-carrying result table: the uniform output of every
/// [`Experiment`]. Knows how to print itself aligned, render CSV, and
/// persist through the shared [`CsvWriter`].
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    columns: &'static [&'static str],
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given column schema.
    pub fn new(columns: &'static [&'static str]) -> Table {
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the schema; debug-panics on
    /// non-finite floats, mirroring [`CsvWriter::row`] so a `NaN` fails
    /// at construction rather than inside a golden diff.
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} does not match the {}-column schema",
            row.len(),
            self.columns.len()
        );
        debug_assert!(
            row.iter()
                .all(|v| !matches!(v, Value::Float(x) if !x.is_finite())),
            "non-finite float in table row {row:?}"
        );
        self.rows.push(row);
    }

    /// The column schema.
    pub fn columns(&self) -> &'static [&'static str] {
        self.columns
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|&c| c == name)
    }

    /// A named column as floats (skipping non-numeric cells).
    pub fn f64_column(&self, name: &str) -> Vec<f64> {
        let Some(idx) = self.column_index(name) else {
            return Vec::new();
        };
        self.rows.iter().filter_map(|r| r[idx].as_f64()).collect()
    }

    /// Renders the table as CSV (header + rows), byte-identical to what
    /// [`Table::save`] writes.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Persists the table as CSV through the shared writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &str) -> std::io::Result<PathBuf> {
        let mut w = CsvWriter::create(path, self.columns)?;
        for row in &self.rows {
            let cells: Vec<&dyn std::fmt::Display> =
                row.iter().map(|v| v as &dyn std::fmt::Display).collect();
            w.row(&cells)?;
        }
        w.finish()
    }

    /// Prints the table with right-aligned columns sized to content.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: Vec<&str>| {
            let mut out = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
                out.push_str(cell);
            }
            println!("{out}");
        };
        line(self.columns.to_vec());
        for row in &rendered {
            line(row.iter().map(String::as_str).collect());
        }
    }
}

/// One registered experiment: a named driver with a declared schema and
/// grid, runnable at either [`Scale`]. Implementations live in
/// [`crate::registry`]; adding a new experiment there makes it
/// CLI-reachable (`exp <name>`), CSV-writing, golden-pinned and
/// scenario-addressable with no further wiring.
pub trait Experiment: Sync {
    /// Canonical name: the CSV/golden file stem and the `exp` argument.
    fn name(&self) -> &'static str;

    /// Alternate names accepted by `exp <name>` and scenario files
    /// (the historical subcommand spellings).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description shown by `exp --list`.
    fn description(&self) -> &'static str;

    /// The column schema of the produced table.
    fn columns(&self) -> &'static [&'static str];

    /// Default grid parameters at the given scale.
    fn grid(&self, scale: Scale) -> Grid;

    /// The grid axes this experiment actually sweeps. Overrides on any
    /// other axis are rejected by the CLI and scenario validation
    /// instead of being silently ignored (the analysis experiments
    /// sweep none).
    fn axes(&self) -> &'static [Axis] {
        &[]
    }

    /// An optional summary line derived from the finished table (e.g.
    /// the agreement study's maximum disagreement), printed by the
    /// generic runners after the table itself.
    fn summary(&self, table: &Table) -> Option<String> {
        let _ = table;
        None
    }

    /// Whether this experiment drives a simulation backend (its golden
    /// pin rides the `--include-ignored` CI tier rather than every
    /// local `cargo test`).
    fn simulation_backed(&self) -> bool {
        false
    }

    /// Runs the sweep on the given grid.
    fn run(&self, grid: &Grid) -> Table;
}

#[cfg(test)]
mod tests {
    use super::*;

    const COLS: &[&str] = &["a", "b", "c"];

    fn sample() -> Table {
        let mut t = Table::new(COLS);
        t.push(row![1usize, 2.5f64, "x"]);
        t.push(row![10usize, 0.125f64, "long-cell"]);
        t
    }

    #[test]
    fn csv_rendering_matches_writer_format() {
        let t = sample();
        assert_eq!(t.to_csv_string(), "a,b,c\n1,2.5,x\n10,0.125,long-cell\n");
        let dir = std::env::temp_dir().join(format!("pipefill-table-{}", std::process::id()));
        let path = dir.join("t.csv");
        t.save(path.to_str().unwrap()).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            t.to_csv_string(),
            "save and to_csv_string must agree byte for byte"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn column_lookup_and_numeric_extraction() {
        let t = sample();
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.f64_column("b"), vec![2.5, 0.125]);
        assert_eq!(t.f64_column("a"), vec![1.0, 10.0]);
        assert!(t.f64_column("c").is_empty());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(COLS);
        t.push(row![1usize]);
    }

    /// Only meaningful under debug assertions (release builds accept
    /// the row; CsvWriter's own debug assert is the backstop in CI), so
    /// the test is compiled out of `cargo test --release` entirely.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_are_flagged() {
        let mut t = Table::new(&["a"]);
        t.push(row![f64::NAN]);
    }

    #[test]
    fn with_overrides_touches_only_explicit_axes() {
        let grid = Grid::sim(40, 9).with_overrides(None, Some(3), Some(60), None);
        assert_eq!(grid.iterations, 40);
        assert_eq!(grid.seed, 3);
        assert_eq!(grid.horizon_secs, 60);
        assert_eq!(grid.seeds, Grid::default().seeds);
    }
}
