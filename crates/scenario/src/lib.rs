//! # pipefill-scenario
//!
//! The declarative scenario and experiment API: the paper evaluation's
//! scenario matrix (fidelity × schedule × workload mix × fault/fleet
//! shape, §6) as *data* rather than hand-wired driver functions.
//!
//! Two abstractions:
//!
//! * [`ScenarioSpec`] — a typed builder describing one run end to end
//!   (backend fidelity, pipeline schedule, workload knobs, seeds,
//!   fault/fleet shape), which validates against the same per-backend
//!   applicability rules the CLI enforces, lowers to a runnable
//!   `BackendConfig`, and round-trips through a hand-rolled TOML subset
//!   ([`toml::parse`] / [`toml::render`]).
//! * [`Experiment`] — every paper table/figure driver behind one trait
//!   (`name`/`description`/`columns`/`grid`/`run` → schema-carrying
//!   [`Table`]), registered in the static [`REGISTRY`]. Persistence
//!   (CSV), pretty-printing, and golden-snapshot pinning are generic
//!   over the trait, so adding an experiment is a one-file change that
//!   is automatically CLI-reachable, CSV-writing, and golden-pinned.
//!
//! Lifecycle: scenario text → [`ScenarioSpec`] → `lower()` →
//! `BackendConfig::run()` → metrics, or experiment name → [`REGISTRY`]
//! → [`Experiment::run`] → [`Table`] → CSV/golden.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod experiment;
pub mod registry;
mod spec;
pub mod toml;

pub use experiment::{Axis, Experiment, Grid, Scale, Table, Value};
pub use registry::{find, resolve, REGISTRY};
pub use spec::{parse_mtbf_secs, ScenarioSpec};
