//! A hand-rolled TOML-subset reader and writer for [`ScenarioSpec`].
//!
//! The workspace's dependency policy has no TOML crate (serde is a no-op
//! shim, like the hand-rolled CSV writer), and a scenario is one flat
//! table — so the grammar here is the minimal subset a spec needs:
//!
//! ```toml
//! # comment
//! [scenario]
//! backend = "fault"          # quoted strings
//! iterations = 120           # integers
//! mtbf_secs = 600.5          # floats
//! ```
//!
//! One `[scenario]` header, `key = value` lines, `#` comments (full-line
//! or trailing), blank lines. Unknown keys, duplicate keys, malformed
//! values and stray sections are errors — a typo'd scenario fails
//! loudly, never silently no-ops (the same stance the CLI flags take).
//! [`render`] writes only explicitly-set fields, so `render → parse` is
//! identity on the spec.

use pipefill_core::{BackendKind, PolicyKind};
use pipefill_pipeline::ScheduleKind;

use crate::spec::ScenarioSpec;

/// Parses a scenario document.
///
/// # Errors
///
/// Returns `line N: message` for syntax errors and the underlying
/// [`ScenarioSpec::set`] message for value errors. The parsed spec is
/// *not* validated — callers validate (or lower) after applying any
/// `--set` overrides, so an override can fix an incomplete file.
pub fn parse(text: &str) -> Result<ScenarioSpec, String> {
    let mut spec = ScenarioSpec::default();
    let mut seen_header = false;
    // Key → line it was first set on, so a duplicate's error points at
    // both occurrences (in a hand-edited file the first one is usually
    // the stale line the author forgot to delete).
    let mut seen_keys: Vec<(String, usize)> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", idx + 1);
        let line = strip_comment(raw_line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let Some(section) = section.strip_suffix(']') else {
                return Err(at(format!("unterminated section header '{line}'")));
            };
            if section.trim() != "scenario" {
                return Err(at(format!(
                    "unknown section '[{}]' (only [scenario] is accepted)",
                    section.trim()
                )));
            }
            if seen_header {
                return Err(at("duplicate [scenario] section".into()));
            }
            seen_header = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(at(format!("expected 'key = value', got '{line}'")));
        };
        if !seen_header {
            return Err(at("keys must follow the [scenario] header".into()));
        }
        let key = key.trim();
        let value = unquote(value.trim()).map_err(&at)?;
        if let Some((_, first)) = seen_keys.iter().find(|(k, _)| k == key) {
            return Err(at(format!(
                "duplicate key '{key}' (first set at line {first})"
            )));
        }
        spec.set(key, &value).map_err(&at)?;
        seen_keys.push((key.to_string(), idx + 1));
    }
    if !seen_header {
        return Err("a scenario file needs a [scenario] section".into());
    }
    Ok(spec)
}

/// Renders a spec as a scenario document containing exactly its
/// explicitly-set fields, in canonical key order. `parse(render(spec))
/// == spec`.
pub fn render(spec: &ScenarioSpec) -> String {
    let mut out = String::from("[scenario]\n");
    let mut kv = |key: &str, value: String| {
        out.push_str(key);
        out.push_str(" = ");
        out.push_str(&value);
        out.push('\n');
    };
    if let Some(v) = &spec.name {
        kv("name", quote(v));
    }
    if let Some(v) = &spec.experiment {
        kv("experiment", quote(v));
    }
    if let Some(v) = spec.backend {
        kv("backend", quote(&backend_str(v)));
    }
    if let Some(v) = spec.schedule {
        kv("schedule", quote(&schedule_str(v)));
    }
    if let Some(v) = spec.seed {
        kv("seed", v.to_string());
    }
    if let Some(v) = spec.iterations {
        kv("iterations", v.to_string());
    }
    if let Some(v) = spec.horizon_secs {
        kv("horizon_secs", v.to_string());
    }
    if let Some(v) = spec.load {
        kv("load", v.to_string());
    }
    if let Some(v) = spec.fill_fraction {
        kv("fill_fraction", v.to_string());
    }
    if let Some(v) = spec.mtbf_secs {
        if v.is_finite() {
            kv("mtbf_secs", v.to_string());
        } else {
            kv("mtbf_secs", quote("none"));
        }
    }
    if let Some(v) = spec.checkpoint_secs {
        kv("checkpoint_secs", v.to_string());
    }
    if let Some(v) = spec.fast_forward {
        kv("fast_forward", quote(if v { "on" } else { "off" }));
    }
    if let Some(v) = spec.policy {
        kv("policy", quote(policy_str(v)));
    }
    if let Some(v) = spec.jobs {
        kv("jobs", v.to_string());
    }
    if let Some(v) = spec.gpus {
        kv("gpus", v.to_string());
    }
    if let Some(v) = spec.seeds {
        kv("seeds", v.to_string());
    }
    out
}

/// The canonical parseable spelling of a backend (its `Display` is
/// already lowercase).
fn backend_str(backend: BackendKind) -> String {
    backend.to_string()
}

/// The canonical parseable spelling of a schedule. `ScheduleKind`'s
/// `Display` prints presentation casing (`GPipe`, `ZB-H1`); its parser
/// is case-insensitive, but the writer emits the documented lowercase
/// forms so rendered files match what a human would type.
fn schedule_str(schedule: ScheduleKind) -> String {
    match schedule {
        ScheduleKind::GPipe => "gpipe".to_string(),
        ScheduleKind::OneFOneB => "1f1b".to_string(),
        ScheduleKind::Interleaved { chunks } => format!("interleaved:{chunks}"),
        ScheduleKind::ZbH1 => "zb-h1".to_string(),
    }
}

/// The canonical parseable spelling of a policy (`Display` prints
/// presentation forms like `Makespan-Min` the parser rejects).
fn policy_str(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::Fifo => "fifo",
        PolicyKind::Sjf => "sjf",
        PolicyKind::MakespanMin => "makespan-min",
        PolicyKind::DeadlineThenSjf => "edf",
    }
}

fn quote(s: &str) -> String {
    format!("\"{s}\"")
}

/// Drops a trailing `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Removes surrounding double quotes from a value, rejecting embedded
/// quotes and half-quoted forms. Bare (unquoted) values pass through for
/// the numeric keys.
fn unquote(value: &str) -> Result<String, String> {
    if let Some(inner) = value.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return Err(format!("unterminated string {value}"));
        };
        if inner.contains('"') {
            return Err(format!("embedded quote in string {value}"));
        }
        return Ok(inner.to_string());
    }
    if value.contains('"') {
        return Err(format!("misplaced quote in value {value}"));
    }
    if value.is_empty() {
        return Err("missing value".into());
    }
    Ok(value.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_core::BackendKind;

    #[test]
    fn parses_a_full_fault_scenario() {
        let text = r#"
# a fault-storm scenario
[scenario]
name = "fault-storm"   # trailing comment
backend = "fault"
schedule = "1f1b"
seed = 3
iterations = 120
fill_fraction = 0.68
mtbf_secs = 600
checkpoint_secs = 2.5
"#;
        let spec = parse(text).unwrap();
        assert_eq!(spec.name.as_deref(), Some("fault-storm"));
        assert_eq!(spec.backend, Some(BackendKind::Fault));
        assert_eq!(spec.schedule, Some(ScheduleKind::OneFOneB));
        assert_eq!(spec.seed, Some(3));
        assert_eq!(spec.iterations, Some(120));
        assert_eq!(spec.mtbf_secs, Some(600.0));
        assert_eq!(spec.checkpoint_secs, Some(2.5));
        spec.validate().unwrap();
    }

    #[test]
    fn render_parse_round_trips() {
        let spec = ScenarioSpec::run(BackendKind::Fleet)
            .with_name("little-fleet")
            .with_jobs(2)
            .with_gpus(256)
            .with_iterations(40)
            .with_schedule(ScheduleKind::Interleaved { chunks: 3 })
            .with_policy(PolicyKind::MakespanMin)
            .with_mtbf_secs(f64::INFINITY)
            .with_fast_forward(false);
        let text = render(&spec);
        assert_eq!(parse(&text).unwrap(), spec);
        assert!(text.contains("mtbf_secs = \"none\""), "{text}");
        assert!(text.contains("fast_forward = \"off\""), "{text}");
        assert!(text.contains("schedule = \"interleaved:3\""), "{text}");
        assert!(text.contains("policy = \"makespan-min\""), "{text}");
    }

    #[test]
    fn rejects_malformed_documents() {
        let err = parse("backend = \"coarse\"").unwrap_err();
        assert!(err.contains("[scenario]"), "{err}");
        let err = parse("[scenario]\n[scenario]\n").unwrap_err();
        assert!(err.contains("duplicate [scenario]"), "{err}");
        let err = parse("[workload]\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
        let err = parse("[scenario]\nbackend \"coarse\"\n").unwrap_err();
        assert!(err.contains("key = value"), "{err}");
        let err = parse("[scenario]\nseed = 1\nseed = 2\n").unwrap_err();
        assert!(err.contains("duplicate key 'seed'"), "{err}");
        assert!(err.contains("(first set at line 2)"), "{err}");
        let err = parse("[scenario]\nwarp = 9\n").unwrap_err();
        assert!(err.contains("unknown scenario key"), "{err}");
        let err = parse("[scenario]\nbackend = \"coarse\n").unwrap_err();
        assert!(err.contains("unterminated string"), "{err}");
        let err = parse("[scenario]\nmtbf_secs = inf\n").unwrap_err();
        assert!(err.contains("'none'"), "{err}");
        let err = parse("[scenario]\nseed =\n").unwrap_err();
        assert!(err.contains("missing value"), "{err}");
        assert!(parse("").is_err());
    }

    #[test]
    fn duplicate_key_error_points_at_both_lines() {
        // Blank lines and comments between the two occurrences must not
        // skew either line number.
        let text = "[scenario]\n\n# pick a seed\nseed = 1\nbackend = \"coarse\"\n\nseed = 7\n";
        let err = parse(text).unwrap_err();
        assert_eq!(err, "line 7: duplicate key 'seed' (first set at line 4)");
        // Same key, different casing is a different key (the unknown-key
        // error fires first), so the duplicate check stays exact-match.
        let err = parse("[scenario]\nseed = 1\nSeed = 2\n").unwrap_err();
        assert!(err.contains("unknown scenario key"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec = parse("\n# header\n\n[scenario]  # inline\nbackend = \"coarse\"\n\n").unwrap();
        assert_eq!(spec.backend, Some(BackendKind::Coarse));
        // A '#' inside a quoted string is content, not a comment.
        let spec = parse("[scenario]\nname = \"exp #4\"\n").unwrap();
        assert_eq!(spec.name.as_deref(), Some("exp #4"));
    }
}
