//! [`ScenarioSpec`]: the declarative description of one run.
//!
//! A spec names either a *single simulation* (backend fidelity, pipeline
//! schedule, workload knobs, seeds, fault/fleet shape — everything the
//! old `sim`/`fleet` flag plumbing carried) or a *registered experiment*
//! with grid overrides. Specs are built with a typed builder, validated
//! against the same per-backend applicability rules the CLI enforces,
//! and lowered to a runnable [`BackendConfig`]. The TOML-subset reader
//! and writer live in [`crate::toml`]; `render → parse` is identity.
//!
//! Every optional field uses `Option` to mean *explicitly set*: defaults
//! are applied at lowering time, so a spec round-trips through text
//! without inventing keys the author never wrote.

use pipefill_core::{
    BackendConfig, BackendKind, ClusterSimConfig, FaultSimConfig, FleetSimConfig,
    PhysicalSimConfig, PolicyKind,
};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;
use pipefill_trace::{FleetWorkloadConfig, TraceConfig};

use crate::experiment::{Axis, Grid, Scale};
use crate::registry;

/// The declarative description of one run. See the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    /// Free-form label (reports, CSV naming by callers).
    pub name: Option<String>,
    /// Experiment mode: the registered experiment to run. Mutually
    /// exclusive with `backend`.
    pub experiment: Option<String>,
    /// Run mode: the backend fidelity. Mutually exclusive with
    /// `experiment`.
    pub backend: Option<BackendKind>,
    /// Pipeline schedule of the main job(s). Default: GPipe.
    pub schedule: Option<ScheduleKind>,
    /// RNG seed. Default: 7 (11 for `fig9_policies`-style grids, which
    /// carry their own default).
    pub seed: Option<u64>,
    /// Main-job iterations (physical/fault/fleet backends and
    /// experiment grids). Default: 300 (150 for fleet).
    pub iterations: Option<usize>,
    /// Trace horizon in seconds (coarse backend and experiment grids).
    /// Default: 3600.
    pub horizon_secs: Option<u64>,
    /// Offered-load multiplier (coarse backend). Default: 1.0.
    pub load: Option<f64>,
    /// Fill fraction (physical/fault backends). Default: 0.68.
    pub fill_fraction: Option<f64>,
    /// Mean time between device failures in seconds; `f64::INFINITY`
    /// (spelled `"none"` in text) disables injection. Defaults: disabled
    /// for the fault backend, 1800 s for the fleet backend (matching
    /// the CLI).
    pub mtbf_secs: Option<f64>,
    /// Checkpoint-restart cost per eviction in seconds (fault backend).
    /// Default: 2.0.
    pub checkpoint_secs: Option<f64>,
    /// Steady-state fast-forward (physical/fault/fleet backends):
    /// analytically skip provably-repeating iterations. Results are
    /// bit-for-bit identical either way; `"off"` forces full event
    /// fidelity (debugging, timing the baseline). Default: on.
    pub fast_forward: Option<bool>,
    /// Fill-queue policy (coarse and fleet backends). Defaults: SJF
    /// (coarse), FIFO (fleet).
    pub policy: Option<PolicyKind>,
    /// Concurrent main jobs (fleet backend). Default: 8.
    pub jobs: Option<usize>,
    /// Total GPU budget (fleet backend). Default: 128 per job.
    pub gpus: Option<usize>,
    /// Replication count for multi-seed experiment grids. Default: 3.
    pub seeds: Option<u64>,
}

/// Field-applicability table: which keys each backend accepts, mirroring
/// the CLI's per-backend flag rejection so a sweep over an inapplicable
/// key can't silently no-op. `schedule` and `seed` apply everywhere.
fn inapplicable(backend: BackendKind) -> &'static [&'static str] {
    match backend {
        BackendKind::Coarse => &[
            "iterations",
            "fill_fraction",
            "mtbf_secs",
            "checkpoint_secs",
            "fast_forward",
            "jobs",
            "gpus",
            "seeds",
        ],
        BackendKind::Physical => &[
            "horizon_secs",
            "load",
            "mtbf_secs",
            "checkpoint_secs",
            "policy",
            "jobs",
            "gpus",
            "seeds",
        ],
        BackendKind::Fault => &["horizon_secs", "load", "policy", "jobs", "gpus", "seeds"],
        BackendKind::Fleet => &[
            "horizon_secs",
            "load",
            "fill_fraction",
            "checkpoint_secs",
            "seeds",
        ],
    }
}

impl ScenarioSpec {
    /// A run-mode spec at the given backend fidelity.
    pub fn run(backend: BackendKind) -> ScenarioSpec {
        ScenarioSpec {
            backend: Some(backend),
            ..ScenarioSpec::default()
        }
    }

    /// An experiment-mode spec naming a registered experiment.
    pub fn experiment(name: &str) -> ScenarioSpec {
        ScenarioSpec {
            experiment: Some(name.to_string()),
            ..ScenarioSpec::default()
        }
    }

    /// Sets the label.
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Sets the pipeline schedule.
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Sets the trace horizon in seconds.
    pub fn with_horizon_secs(mut self, horizon_secs: u64) -> Self {
        self.horizon_secs = Some(horizon_secs);
        self
    }

    /// Sets the offered-load multiplier.
    pub fn with_load(mut self, load: f64) -> Self {
        self.load = Some(load);
        self
    }

    /// Sets the fill fraction.
    pub fn with_fill_fraction(mut self, fill_fraction: f64) -> Self {
        self.fill_fraction = Some(fill_fraction);
        self
    }

    /// Sets the MTBF in seconds (`f64::INFINITY` disables injection).
    pub fn with_mtbf_secs(mut self, mtbf_secs: f64) -> Self {
        self.mtbf_secs = Some(mtbf_secs);
        self
    }

    /// Sets the checkpoint-restart cost in seconds.
    pub fn with_checkpoint_secs(mut self, checkpoint_secs: f64) -> Self {
        self.checkpoint_secs = Some(checkpoint_secs);
        self
    }

    /// Enables or disables steady-state fast-forward.
    pub fn with_fast_forward(mut self, fast_forward: bool) -> Self {
        self.fast_forward = Some(fast_forward);
        self
    }

    /// Sets the fill-queue policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the fleet job count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Sets the fleet GPU budget.
    pub fn with_gpus(mut self, gpus: usize) -> Self {
        self.gpus = Some(gpus);
        self
    }

    /// Sets the replication count for multi-seed experiment grids.
    pub fn with_seeds(mut self, seeds: u64) -> Self {
        self.seeds = Some(seeds);
        self
    }

    /// Assigns one field from its text spelling — the shared engine of
    /// the TOML reader and the CLI's `--set key=value` overrides, so a
    /// file key and an override are guaranteed to parse identically.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown keys or malformed/degenerate
    /// values (the same rules the CLI flags enforce).
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "name" => self.name = Some(value.to_string()),
            "experiment" => self.experiment = Some(value.to_string()),
            "backend" => self.backend = Some(value.parse::<BackendKind>()?),
            "schedule" => self.schedule = Some(value.parse::<ScheduleKind>()?),
            "seed" => self.seed = Some(parse_int(key, value)?),
            "iterations" => self.iterations = Some(parse_int(key, value)? as usize),
            "horizon_secs" => self.horizon_secs = Some(parse_int(key, value)?),
            "load" => {
                let load = parse_f64(key, value)?;
                if !(load > 0.0 && load.is_finite()) {
                    return Err(format!("load must be a positive number, got {value}"));
                }
                self.load = Some(load);
            }
            "fill_fraction" => {
                let f = parse_f64(key, value)?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("fill_fraction must be within [0, 1], got {value}"));
                }
                self.fill_fraction = Some(f);
            }
            "mtbf_secs" => self.mtbf_secs = Some(parse_mtbf_secs(value)?),
            "checkpoint_secs" => {
                let c = parse_f64(key, value)?;
                if !(c >= 0.0 && c.is_finite()) {
                    return Err(format!(
                        "checkpoint_secs must be a finite non-negative number, got {value}"
                    ));
                }
                self.checkpoint_secs = Some(c);
            }
            "fast_forward" => self.fast_forward = Some(parse_on_off(key, value)?),
            "policy" => self.policy = Some(value.parse::<PolicyKind>()?),
            "jobs" => self.jobs = Some(parse_int(key, value)? as usize),
            "gpus" => self.gpus = Some(parse_int(key, value)? as usize),
            "seeds" => self.seeds = Some(parse_int(key, value)?),
            other => {
                return Err(format!(
                    "unknown scenario key '{other}' (see ScenarioSpec for the accepted set)"
                ))
            }
        }
        Ok(())
    }

    /// Checks mode exclusivity, per-backend field applicability and
    /// value sanity.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        match (&self.experiment, self.backend) {
            (Some(_), Some(_)) => {
                return Err(
                    "a scenario is either an experiment or a backend run, not both \
                     (set 'experiment' or 'backend', not the two together)"
                        .into(),
                )
            }
            (None, None) => {
                return Err(
                    "a scenario needs 'backend = \"...\"' (coarse|physical|fault|fleet) \
                            or 'experiment = \"...\"' (see pipefill-cli exp --list)"
                        .into(),
                )
            }
            (Some(exp), None) => {
                let Some(exps) = registry::resolve(exp) else {
                    return Err(format!(
                        "unknown experiment '{exp}'; run pipefill-cli exp --list"
                    ));
                };
                // Experiment grids read only iterations/seed/horizon/seeds.
                for (key, set) in [
                    ("schedule", self.schedule.is_some()),
                    ("load", self.load.is_some()),
                    ("fill_fraction", self.fill_fraction.is_some()),
                    ("mtbf_secs", self.mtbf_secs.is_some()),
                    ("checkpoint_secs", self.checkpoint_secs.is_some()),
                    ("fast_forward", self.fast_forward.is_some()),
                    ("policy", self.policy.is_some()),
                    ("jobs", self.jobs.is_some()),
                    ("gpus", self.gpus.is_some()),
                ] {
                    if set {
                        return Err(format!(
                            "'{key}' does not apply to experiment scenarios \
                             (grids take iterations/seed/horizon_secs/seeds)"
                        ));
                    }
                }
                // …and only the axes this experiment actually sweeps:
                // an override of an unswept axis would silently no-op.
                for (axis, set) in [
                    (Axis::Iterations, self.iterations.is_some()),
                    (Axis::Seed, self.seed.is_some()),
                    (Axis::HorizonSecs, self.horizon_secs.is_some()),
                    (Axis::Seeds, self.seeds.is_some()),
                ] {
                    if set && !exps.iter().any(|e| e.axes().contains(&axis)) {
                        return Err(format!(
                            "'{axis}' does not apply to experiment '{exp}' \
                             (its grid does not sweep it)"
                        ));
                    }
                }
                // The degenerate grids the CLI flags reject: a zero
                // would silently produce an empty or all-zero table.
                if self.iterations == Some(0) {
                    return Err(format!(
                        "iterations must be at least 1 for experiment '{exp}'"
                    ));
                }
                if self.seeds == Some(0) {
                    return Err(format!("seeds must be at least 1 for experiment '{exp}'"));
                }
            }
            (None, Some(backend)) => {
                for key in inapplicable(backend) {
                    let set = match *key {
                        "iterations" => self.iterations.is_some(),
                        "horizon_secs" => self.horizon_secs.is_some(),
                        "load" => self.load.is_some(),
                        "fill_fraction" => self.fill_fraction.is_some(),
                        "mtbf_secs" => self.mtbf_secs.is_some(),
                        "checkpoint_secs" => self.checkpoint_secs.is_some(),
                        "fast_forward" => self.fast_forward.is_some(),
                        "policy" => self.policy.is_some(),
                        "jobs" => self.jobs.is_some(),
                        "gpus" => self.gpus.is_some(),
                        "seeds" => self.seeds.is_some(),
                        _ => unreachable!("applicability table names a tracked field"),
                    };
                    if set {
                        return Err(format!("'{key}' does not apply to the {backend} backend"));
                    }
                }
                if backend == BackendKind::Fleet {
                    let jobs = self.jobs.unwrap_or(8);
                    if jobs == 0 {
                        return Err("jobs must be at least 1 for a fleet scenario".into());
                    }
                    if self.iterations == Some(0) {
                        return Err("iterations must be at least 1 for a fleet scenario".into());
                    }
                    let gpus = self.gpus.unwrap_or(jobs * 128);
                    if gpus / jobs < 8 {
                        return Err(format!(
                            "gpus = {gpus} leaves under 8 GPUs per job; \
                             the smallest pipeline needs 8"
                        ));
                    }
                }
            }
        }
        if let Some(m) = self.mtbf_secs {
            // INFINITY is the internal disabled sentinel; every other
            // spelling must be a finite positive duration.
            if m.is_nan() || m <= 0.0 {
                return Err(format!(
                    "mtbf_secs must be a finite positive number of seconds \
                     (use \"none\" to disable failure injection), got {m}"
                ));
            }
        }
        Ok(())
    }

    /// The experiment grid this spec describes: the experiment's
    /// full-scale defaults with any explicitly-set axis overridden.
    /// Meaningful only in experiment mode.
    pub fn grid(&self) -> Result<Grid, String> {
        let name = self
            .experiment
            .as_deref()
            .ok_or("grid() applies to experiment scenarios only")?;
        let exps = registry::resolve(name).ok_or_else(|| format!("unknown experiment '{name}'"))?;
        let [exp] = exps.as_slice() else {
            return Err(format!(
                "'{name}' fans out to {} experiments; resolve() them and build \
                 each grid individually",
                exps.len()
            ));
        };
        Ok(exp.grid(Scale::Full).with_overrides(
            self.iterations,
            self.seed,
            self.horizon_secs,
            self.seeds,
        ))
    }

    /// Validates and lowers a run-mode spec to a runnable
    /// [`BackendConfig`], applying documented defaults for unset fields.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioSpec::validate`] error, or a message when
    /// called on an experiment-mode spec.
    pub fn lower(&self) -> Result<BackendConfig, String> {
        self.validate()?;
        let Some(backend) = self.backend else {
            return Err(format!(
                "scenario runs experiment '{}'; resolve it through the registry, not lower()",
                self.experiment.as_deref().unwrap_or("?")
            ));
        };
        let schedule = self.schedule.unwrap_or(ScheduleKind::GPipe);
        let seed = self.seed.unwrap_or(7);
        Ok(match backend {
            BackendKind::Coarse => {
                let main = MainJobSpec::physical_5b(8, schedule);
                let mut trace = TraceConfig::physical(seed).with_load(self.load.unwrap_or(1.0));
                trace.horizon = SimDuration::from_secs(self.horizon_secs.unwrap_or(3600));
                let mut cfg = ClusterSimConfig::new(main, trace);
                if let Some(policy) = self.policy {
                    cfg.policy = policy;
                }
                BackendConfig::Coarse(cfg)
            }
            BackendKind::Physical => {
                let main = MainJobSpec::physical_5b(8, schedule);
                let mut cfg = PhysicalSimConfig::new(main)
                    .with_fill_fraction(self.fill_fraction.unwrap_or(0.68));
                cfg.iterations = self.iterations.unwrap_or(300);
                cfg.seed = seed;
                cfg.fast_forward = self.fast_forward.unwrap_or(true);
                BackendConfig::Physical(cfg)
            }
            BackendKind::Fault => {
                let main = MainJobSpec::physical_5b(8, schedule);
                let mut cfg = FaultSimConfig::new(main)
                    .with_fill_fraction(self.fill_fraction.unwrap_or(0.68))
                    .with_mtbf(mtbf_duration(self.mtbf_secs.unwrap_or(f64::INFINITY)))
                    .with_checkpoint_cost(SimDuration::from_secs_f64(
                        self.checkpoint_secs.unwrap_or(2.0),
                    ));
                cfg.iterations = self.iterations.unwrap_or(300);
                cfg.seed = seed;
                cfg.fast_forward = self.fast_forward.unwrap_or(true);
                BackendConfig::Fault(cfg)
            }
            BackendKind::Fleet => {
                let jobs = self.jobs.unwrap_or(8);
                let gpus = self.gpus.unwrap_or(jobs * 128);
                let mut workload = FleetWorkloadConfig::new(jobs, gpus, seed);
                workload.iterations = self.iterations.unwrap_or(150);
                let mut cfg = FleetSimConfig::from_workload_scheduled(&workload, schedule)
                    .with_mtbf(mtbf_duration(self.mtbf_secs.unwrap_or(1800.0)))
                    .with_policy(self.policy.unwrap_or(PolicyKind::Fifo));
                cfg.fast_forward = self.fast_forward.unwrap_or(true);
                BackendConfig::Fleet(cfg)
            }
        })
    }
}

/// Converts an MTBF in seconds to the backends' duration sentinel
/// (`SimDuration::MAX` disables injection).
fn mtbf_duration(secs: f64) -> SimDuration {
    if secs.is_finite() {
        SimDuration::from_secs_f64(secs)
    } else {
        SimDuration::MAX
    }
}

/// Parses an MTBF spelling: `"none"` disables injection (internally
/// `f64::INFINITY`); any numeric value must be a finite positive number
/// of seconds. Numeric infinity spellings (`inf`, `Infinity`,
/// overflowing literals like `1e999`) are rejected — `f64::from_str`
/// happily produces them, and they would flow into the exponential MTBF
/// sampler as garbage rather than as the documented off switch.
///
/// # Errors
///
/// Returns a message matching the CLI's `--mtbf-secs` diagnostics.
pub fn parse_mtbf_secs(value: &str) -> Result<f64, String> {
    if value == "none" {
        return Ok(f64::INFINITY);
    }
    let secs: f64 = value
        .parse()
        .map_err(|_| format!("mtbf_secs expects a number of seconds or 'none', got '{value}'"))?;
    if !(secs > 0.0 && secs.is_finite()) {
        return Err(format!(
            "mtbf_secs must be a finite positive number of seconds \
             (use 'none' to disable failure injection), got '{value}'"
        ));
    }
    Ok(secs)
}

/// Parses an on/off switch spelling (`on`/`off`, also `true`/`false`).
fn parse_on_off(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        _ => Err(format!("{key} expects on|off, got '{value}'")),
    }
}

fn parse_int(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("{key} expects an integer, got '{value}'"))
}

fn parse_f64(key: &str, value: &str) -> Result<f64, String> {
    value
        .parse()
        .map_err(|_| format!("{key} expects a number, got '{value}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_lowers_to_the_expected_backend() {
        let spec = ScenarioSpec::run(BackendKind::Coarse)
            .with_horizon_secs(600)
            .with_load(2.0)
            .with_seed(3);
        match spec.lower().unwrap() {
            BackendConfig::Coarse(cfg) => {
                assert_eq!(cfg.trace.horizon, SimDuration::from_secs(600));
                assert_eq!(cfg.trace.seed, 3);
            }
            other => panic!("wrong backend: {other:?}"),
        }

        let spec = ScenarioSpec::run(BackendKind::Fault)
            .with_iterations(50)
            .with_mtbf_secs(600.0)
            .with_checkpoint_secs(4.0);
        match spec.lower().unwrap() {
            BackendConfig::Fault(cfg) => {
                assert_eq!(cfg.iterations, 50);
                assert_eq!(cfg.mtbf, SimDuration::from_secs(600));
                assert_eq!(cfg.checkpoint_cost, SimDuration::from_secs(4));
            }
            other => panic!("wrong backend: {other:?}"),
        }
    }

    #[test]
    fn fast_forward_lowers_to_every_simulation_backend() {
        // Default on; an explicit "off" reaches the backend config.
        for backend in [
            BackendKind::Physical,
            BackendKind::Fault,
            BackendKind::Fleet,
        ] {
            let on = match ScenarioSpec::run(backend).lower().unwrap() {
                BackendConfig::Physical(cfg) => cfg.fast_forward,
                BackendConfig::Fault(cfg) => cfg.fast_forward,
                BackendConfig::Fleet(cfg) => cfg.fast_forward,
                other => panic!("wrong backend: {other:?}"),
            };
            assert!(on, "{backend}: fast_forward defaults on");
            let off = match ScenarioSpec::run(backend)
                .with_fast_forward(false)
                .lower()
                .unwrap()
            {
                BackendConfig::Physical(cfg) => cfg.fast_forward,
                BackendConfig::Fault(cfg) => cfg.fast_forward,
                BackendConfig::Fleet(cfg) => cfg.fast_forward,
                other => panic!("wrong backend: {other:?}"),
            };
            assert!(!off, "{backend}: fast_forward = off is honoured");
        }
        // The coarse backend has no iteration loop to skip.
        let err = ScenarioSpec::run(BackendKind::Coarse)
            .with_fast_forward(false)
            .validate()
            .unwrap_err();
        assert!(
            err.contains("does not apply to the coarse backend"),
            "{err}"
        );
        let err = ScenarioSpec::experiment("table1")
            .with_fast_forward(false)
            .validate()
            .unwrap_err();
        assert!(err.contains("does not apply to experiment"), "{err}");
    }

    #[test]
    fn lowering_matches_cli_defaults() {
        // The spec's defaults are the CLI's defaults: an empty fault
        // spec is `sim --backend fault`.
        match ScenarioSpec::run(BackendKind::Fault).lower().unwrap() {
            BackendConfig::Fault(cfg) => {
                assert_eq!(cfg.iterations, 300);
                assert_eq!(cfg.seed, 7);
                assert_eq!(cfg.mtbf, SimDuration::MAX);
                assert_eq!(cfg.executor.fill_fraction, 0.68);
            }
            other => panic!("wrong backend: {other:?}"),
        }
        match ScenarioSpec::run(BackendKind::Fleet).lower().unwrap() {
            BackendConfig::Fleet(cfg) => {
                assert_eq!(cfg.jobs.len(), 8);
                assert_eq!(cfg.policy, PolicyKind::Fifo);
                assert_eq!(cfg.mtbf, SimDuration::from_secs(1800));
            }
            other => panic!("wrong backend: {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_inapplicable_fields() {
        let err = ScenarioSpec::run(BackendKind::Coarse)
            .with_fill_fraction(0.9)
            .validate()
            .unwrap_err();
        assert!(
            err.contains("does not apply to the coarse backend"),
            "{err}"
        );
        let err = ScenarioSpec::run(BackendKind::Physical)
            .with_load(2.0)
            .validate()
            .unwrap_err();
        assert!(
            err.contains("does not apply to the physical backend"),
            "{err}"
        );
        let err = ScenarioSpec::run(BackendKind::Fault)
            .with_jobs(4)
            .validate()
            .unwrap_err();
        assert!(err.contains("does not apply to the fault backend"), "{err}");
        let err = ScenarioSpec::run(BackendKind::Fleet)
            .with_fill_fraction(0.5)
            .validate()
            .unwrap_err();
        assert!(err.contains("does not apply to the fleet backend"), "{err}");
    }

    #[test]
    fn validation_rejects_mode_confusion_and_bad_fleets() {
        let mut both = ScenarioSpec::run(BackendKind::Coarse);
        both.experiment = Some("table1".into());
        assert!(both.validate().unwrap_err().contains("not both"));

        let neither = ScenarioSpec::default();
        assert!(neither.validate().unwrap_err().contains("backend"));

        let err = ScenarioSpec::experiment("nonesuch").validate().unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");

        let err = ScenarioSpec::experiment("table1")
            .with_jobs(4)
            .validate()
            .unwrap_err();
        assert!(err.contains("does not apply to experiment"), "{err}");

        // Overriding an axis the experiment does not sweep is rejected
        // (it would silently no-op), and degenerate grids are rejected
        // like the CLI flags reject them.
        let err = ScenarioSpec::experiment("table1")
            .with_iterations(50)
            .validate()
            .unwrap_err();
        assert!(err.contains("does not sweep"), "{err}");
        let err = ScenarioSpec::experiment("fig5_fill_fraction")
            .with_iterations(0)
            .validate()
            .unwrap_err();
        assert!(err.contains("iterations must be at least 1"), "{err}");
        let err = ScenarioSpec::experiment("fig6_agreement")
            .with_seeds(0)
            .validate()
            .unwrap_err();
        assert!(err.contains("seeds must be at least 1"), "{err}");
        // Multi-experiment spellings validate (no axis overrides).
        ScenarioSpec::experiment("fig10").validate().unwrap();
        let err = ScenarioSpec::run(BackendKind::Fleet)
            .with_iterations(0)
            .validate()
            .unwrap_err();
        assert!(err.contains("at least 1 for a fleet"), "{err}");

        let err = ScenarioSpec::run(BackendKind::Fleet)
            .with_jobs(4)
            .with_gpus(16)
            .validate()
            .unwrap_err();
        assert!(err.contains("under 8 GPUs per job"), "{err}");
    }

    #[test]
    fn set_parses_and_rejects_like_the_cli() {
        let mut spec = ScenarioSpec::run(BackendKind::Fault);
        spec.set("mtbf_secs", "600").unwrap();
        assert_eq!(spec.mtbf_secs, Some(600.0));
        spec.set("mtbf_secs", "none").unwrap();
        assert_eq!(spec.mtbf_secs, Some(f64::INFINITY));
        for bad in ["inf", "infinity", "Infinity", "1e999", "-inf", "NaN", "0"] {
            let err = spec.set("mtbf_secs", bad).unwrap_err();
            assert!(
                err.contains("finite positive") || err.contains("'none'"),
                "{bad}: {err}"
            );
        }
        assert!(spec.set("checkpoint_secs", "-1").is_err());
        assert!(spec.set("checkpoint_secs", "inf").is_err());
        assert!(spec.set("load", "0").is_err());
        assert!(spec.set("fill_fraction", "1.5").is_err());
        assert!(spec.set("bogus_key", "1").is_err());
        assert!(spec.set("schedule", "2f2b").is_err());
        spec.set("fast_forward", "off").unwrap();
        assert_eq!(spec.fast_forward, Some(false));
        spec.set("fast_forward", "on").unwrap();
        assert_eq!(spec.fast_forward, Some(true));
        let err = spec.set("fast_forward", "maybe").unwrap_err();
        assert!(err.contains("expects on|off"), "{err}");
        spec.set("schedule", "interleaved:4").unwrap();
        assert_eq!(spec.schedule, Some(ScheduleKind::Interleaved { chunks: 4 }));
    }

    #[test]
    fn experiment_grid_applies_overrides() {
        let spec = ScenarioSpec::experiment("fig5_fill_fraction")
            .with_iterations(40)
            .with_seed(9);
        let grid = spec.grid().unwrap();
        assert_eq!(grid.iterations, 40);
        assert_eq!(grid.seed, 9);
        // Unset axes keep the experiment's full-scale defaults.
        let default_grid = ScenarioSpec::experiment("fig5_fill_fraction")
            .grid()
            .unwrap();
        assert_eq!(default_grid.iterations, 300);
        assert!(ScenarioSpec::run(BackendKind::Coarse).grid().is_err());
    }
}
