//! Hand-rolled argument parsing (the workspace's dependency policy has no
//! CLI crate; the grammar is tiny).
//!
//! The uniform entry points are `run <scenario.toml>` (declarative
//! scenarios) and `exp <name>` / `exp --list` (the experiment registry).
//! The historical per-figure subcommands survive as thin aliases over
//! `exp`, declared in one table ([`EXP_ALIASES`]) instead of one match
//! arm each.

use pipefill_core::{BackendKind, PolicyKind};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::ScheduleKind;

/// Usage text printed on parse errors and `help`.
pub const USAGE: &str = "\
usage: pipefill-cli <command> [options] [--threads N]

scenarios & experiments:
  run <scenario.toml> [--set key=value ...]
                                  run a declarative scenario file
                                  (see examples/scenarios/)
  exp <name> [--iterations N] [--seed S] [--horizon-secs N] [--seeds N]
         [--out DIR]              run one registered experiment
  exp --list                      list every registered experiment
  all    [--out DIR]              run every experiment, write CSVs
  table1 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | fig10 | whatif
  faults | agree                  aliases over `exp` (same flags as before)

single simulations:
  sim    [--backend coarse|physical|fault] [--seed S] [--iterations N]
         [--horizon-secs N] [--load X] [--fill-fraction F]
         [--mtbf-secs X|none] [--checkpoint-secs C]
         [--schedule gpipe|1f1b|interleaved[:v]|zb-h1]
         [--fast-forward on|off]
                                  one simulation at a chosen fidelity
  fleet  [--jobs N] [--gpus N] [--iterations N] [--seed S]
         [--mtbf-secs X|none] [--policy fifo|sjf|makespan-min|edf]
         [--schedule gpipe|1f1b|interleaved[:v]|zb-h1]
         [--fast-forward on|off]
                                  multi-job fleet on one global fill queue

inspection & verification:
  timeline [--schedule gpipe|1f1b|interleaved[:v]|zb-h1]
         [--stages P] [--microbatches M] [--width W]
  plan   [--model NAME] [--kind training|inference] [--stage S]
  verify-schedule <schedule|stream.toml>
         [--stages P] [--microbatches M] [--memory-limit N]
         [--format human|json]
                                  statically prove deadlock-freedom,
                                  memory bounds and the bubble fraction
                                  (exit 0 certified, 1 rejected, 2 usage)
  certify-schedules [--mode check|write] [--out FILE]
                                  re-verify the certificate grid and
                                  check (or rewrite) the pinned report
  help

global options:
  --threads N                     worker threads for parallel sweeps
                                  (default: all cores)";

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one registered experiment (by canonical name or alias), with
    /// optional grid-axis overrides.
    Exp {
        /// Experiment name (resolved against the registry at run time).
        name: String,
        /// Override: iterations per grid point.
        iterations: Option<usize>,
        /// Override: RNG seed.
        seed: Option<u64>,
        /// Override: trace horizon in seconds.
        horizon_secs: Option<u64>,
        /// Override: replication count for multi-seed studies.
        seeds: Option<u64>,
        /// CSV output directory (default `target/experiments`).
        out: Option<String>,
    },
    /// List the experiment registry.
    ExpList,
    /// Run a declarative scenario file with `--set key=value` overrides.
    RunScenario {
        /// Path to the scenario TOML.
        path: String,
        /// Key/value overrides applied after parsing.
        sets: Vec<(String, String)>,
    },
    /// Multi-job fleet simulation on one global fill queue.
    Fleet {
        /// Concurrent main jobs.
        jobs: usize,
        /// Total GPU budget split across jobs.
        gpus: usize,
        /// Main-job iterations per job.
        iterations: usize,
        /// RNG seed (fleet generation + failure streams).
        seed: u64,
        /// Mean time between device failures in seconds (`'none'`
        /// disables injection and with it all global-queue traffic).
        mtbf_secs: f64,
        /// Policy of the cluster-wide fill queue.
        policy: PolicyKind,
        /// Pipeline schedule every main job runs.
        schedule: ScheduleKind,
        /// Steady-state fast-forward (results are bit-for-bit identical
        /// either way; `off` forces full event fidelity).
        fast_forward: bool,
    },
    /// Everything, with CSV output.
    All {
        /// Output directory.
        out: String,
    },
    /// One simulation at a chosen fidelity.
    Sim {
        /// Which backend runs it.
        backend: BackendKind,
        /// RNG seed.
        seed: u64,
        /// Main-job iterations (physical backend).
        iterations: usize,
        /// Trace horizon in seconds (coarse backend).
        horizon_secs: u64,
        /// Offered-load multiplier (coarse backend).
        load: f64,
        /// Fill fraction (physical and fault backends).
        fill_fraction: f64,
        /// Mean time between device failures in seconds (fault backend;
        /// `'none'` disables injection).
        mtbf_secs: f64,
        /// Checkpoint-restart cost per eviction in seconds (fault
        /// backend).
        checkpoint_secs: f64,
        /// Pipeline schedule the main job runs (all backends).
        schedule: ScheduleKind,
        /// Steady-state fast-forward (physical and fault backends;
        /// results are bit-for-bit identical either way).
        fast_forward: bool,
    },
    /// ASCII schedule rendering.
    Timeline {
        /// Pipeline schedule.
        schedule: ScheduleKind,
        /// Stages.
        stages: usize,
        /// Microbatches.
        microbatches: usize,
        /// Render width in columns.
        width: usize,
    },
    /// Show one job's execution plan.
    Plan {
        /// Fill-job model.
        model: ModelId,
        /// Training or batch inference.
        kind: JobKind,
        /// Pipeline stage whose bubbles to plan against.
        stage: usize,
    },
    /// Statically verify one schedule (or stream file) with schedcheck.
    VerifySchedule {
        /// What to verify: a built-in generator or a stream file.
        target: VerifyTarget,
        /// Pipeline stages (built-in targets only; files fix the shape).
        stages: usize,
        /// Microbatches (built-in targets only; files fix the shape).
        microbatches: usize,
        /// Per-device activation budget in microbatches, if any.
        memory_limit: Option<u64>,
        /// Emit the JSON certificate instead of the human report.
        json: bool,
    },
    /// Re-verify the certificate grid; check or rewrite the pinned
    /// report file.
    CertifySchedules {
        /// Rewrite the report instead of byte-comparing against it.
        write: bool,
        /// Report path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// The operand of `verify-schedule`.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyTarget {
    /// A built-in schedule generator, expanded at `--stages` ×
    /// `--microbatches`.
    Kind(ScheduleKind),
    /// A stream TOML file on disk (anything containing `/` or ending
    /// in `.toml`).
    File(String),
}

/// A parsed command line: the command plus global options.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The command to run.
    pub command: Command,
    /// Worker threads for parallel sweeps (0 = all cores).
    pub threads: usize,
}

/// Which grid-axis flags a legacy experiment alias accepts. `Min1`
/// variants reject 0 with a diagnostic carrying the alias name, exactly
/// as the hand-written arms used to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum GridFlag {
    Iterations,
    IterationsMin1,
    Seed,
    HorizonSecs,
    SeedsMin1,
}

/// The legacy per-figure subcommands as data: spelling(s), the registry
/// experiment they run, and the flags they accept. Adding an experiment
/// needs no entry here — `exp <name>` reaches it — this table only
/// preserves the historical short commands.
const EXP_ALIASES: &[(&[&str], &str, &[GridFlag])] = &[
    (&["table1"], "table1", &[]),
    (&["fig1", "fig4"], "fig4_scaling", &[]),
    (
        &["fig5"],
        "fig5_fill_fraction",
        &[GridFlag::Iterations, GridFlag::Seed],
    ),
    (
        &["fig6"],
        "fig6_validation",
        &[GridFlag::Iterations, GridFlag::Seed],
    ),
    (&["fig7"], "fig7_characterization", &[]),
    // `fig8` and `fig10` fan out to two experiments each; the command
    // layer resolves them through its multi-alias table.
    (&["fig8"], "fig8", &[]),
    (
        &["fig9"],
        "fig9_policies",
        &[GridFlag::HorizonSecs, GridFlag::Seed],
    ),
    (&["fig10"], "fig10", &[]),
    (&["whatif"], "whatif_offload_bandwidth", &[]),
    (
        &["faults"],
        "whatif_faults",
        &[GridFlag::IterationsMin1, GridFlag::Seed],
    ),
    (
        &["agree"],
        "fig6_agreement",
        &[GridFlag::SeedsMin1, GridFlag::IterationsMin1],
    ),
];

/// Every grid flag, for the generic `exp <name>` command.
const ALL_GRID_FLAGS: &[GridFlag] = &[
    GridFlag::IterationsMin1,
    GridFlag::Seed,
    GridFlag::HorizonSecs,
    GridFlag::SeedsMin1,
];

/// Parses an argument vector (without the binary name).
///
/// # Errors
///
/// Returns a human-readable message on unknown commands, unknown flags,
/// or malformed values.
pub fn parse(argv: &[String]) -> Result<Invocation, String> {
    let mut it = argv.iter();
    let Some(cmd) = it.next() else {
        return Err("missing command".into());
    };
    let mut rest: Vec<&String> = it.collect();

    // `exp`, `run` and `verify-schedule` take one positional operand
    // before the flags.
    let positional = match cmd.as_str() {
        "exp" | "run" | "verify-schedule" => {
            if rest.first().is_some_and(|a| !a.starts_with("--")) {
                Some(rest.remove(0).clone())
            } else {
                None
            }
        }
        _ => None,
    };
    if cmd == "exp" && rest.iter().any(|a| a.as_str() == "--list") {
        if positional.is_some() || rest.len() != 1 {
            return Err("exp --list takes no other arguments".into());
        }
        return Ok(Invocation {
            command: Command::ExpList,
            threads: 0,
        });
    }

    let mut flags = FlagSet::new(&rest)?;
    // Global options are accepted by every command.
    let threads = flags.take_usize("threads", 0)?;
    let command = match cmd.as_str() {
        "exp" => {
            let Some(name) = positional else {
                return Err("exp needs an experiment name (or --list)".into());
            };
            let grid = take_grid_flags(&mut flags, &name, ALL_GRID_FLAGS)?;
            grid.into_exp(name, flags.take("out"))
        }
        "run" => {
            let Some(path) = positional else {
                return Err("run needs a scenario file path".into());
            };
            let mut sets = Vec::new();
            while let Some(pair) = flags.take("set") {
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(format!("--set expects key=value, got '{pair}'"));
                };
                sets.push((key.trim().to_string(), value.trim().to_string()));
            }
            Command::RunScenario { path, sets }
        }
        "fleet" => {
            let jobs = flags.take_usize("jobs", 8)?;
            if jobs == 0 {
                return Err("--jobs must be at least 1 for fleet".into());
            }
            let gpus = flags.take_usize("gpus", jobs * 128)?;
            if gpus / jobs < 8 {
                return Err(format!(
                    "--gpus {gpus} leaves under 8 GPUs per job; the smallest pipeline needs 8"
                ));
            }
            let iterations = flags.take_usize("iterations", 150)?;
            if iterations == 0 {
                return Err("--iterations must be at least 1 for fleet".into());
            }
            Command::Fleet {
                jobs,
                gpus,
                iterations,
                seed: flags.take_u64("seed", 7)?,
                mtbf_secs: take_duration_secs(&mut flags, &MTBF_FLAG, "1800")?,
                policy: flags.take_string("policy", "fifo")?.parse::<PolicyKind>()?,
                schedule: flags
                    .take_string("schedule", "gpipe")?
                    .parse::<ScheduleKind>()?,
                fast_forward: take_on_off(&mut flags, "fast-forward", true)?,
            }
        }
        "all" => Command::All {
            out: flags.take_string("out", "target/experiments")?,
        },
        "sim" => {
            let backend = flags
                .take_string("backend", "coarse")?
                .parse::<BackendKind>()?;
            if backend == BackendKind::Fleet {
                return Err(
                    "the fleet backend simulates many jobs; use the 'fleet' subcommand".into(),
                );
            }
            // Each fidelity has its own knobs; reject the other backends'
            // so a sweep over an inapplicable flag can't silently no-op.
            let inapplicable: &[&str] = match backend {
                BackendKind::Coarse => &[
                    "iterations",
                    "fill-fraction",
                    "mtbf-secs",
                    "checkpoint-secs",
                    "fast-forward",
                ],
                BackendKind::Physical => &["horizon-secs", "load", "mtbf-secs", "checkpoint-secs"],
                BackendKind::Fault => &["horizon-secs", "load"],
                BackendKind::Fleet => unreachable!("rejected above"),
            };
            for flag in inapplicable {
                if flags.provided(flag) {
                    return Err(format!("--{flag} does not apply to the {backend} backend"));
                }
            }
            let load = flags.take_f64("load", 1.0)?;
            if !(load > 0.0 && load.is_finite()) {
                return Err(format!("--load must be a positive number, got {load}"));
            }
            let fill_fraction = flags.take_f64("fill-fraction", 0.68)?;
            if !(0.0..=1.0).contains(&fill_fraction) {
                return Err(format!(
                    "--fill-fraction must be within [0, 1], got {fill_fraction}"
                ));
            }
            Command::Sim {
                backend,
                seed: flags.take_u64("seed", 7)?,
                iterations: flags.take_usize("iterations", 300)?,
                horizon_secs: flags.take_u64("horizon-secs", 3600)?,
                load,
                fill_fraction,
                mtbf_secs: take_duration_secs(&mut flags, &MTBF_FLAG, "none")?,
                checkpoint_secs: take_duration_secs(&mut flags, &CHECKPOINT_FLAG, "2.0")?,
                schedule: flags
                    .take_string("schedule", "gpipe")?
                    .parse::<ScheduleKind>()?,
                fast_forward: take_on_off(&mut flags, "fast-forward", true)?,
            }
        }
        "timeline" => Command::Timeline {
            schedule: flags
                .take_string("schedule", "gpipe")?
                .parse::<ScheduleKind>()?,
            stages: flags.take_usize("stages", 8)?,
            microbatches: flags.take_usize("microbatches", 8)?,
            width: flags.take_usize("width", 96)?,
        },
        "plan" => Command::Plan {
            model: parse_model(&flags.take_string("model", "bert-base")?)?,
            kind: match flags.take_string("kind", "inference")?.as_str() {
                "training" | "train" => JobKind::Training,
                "inference" | "inf" | "batch-inference" => JobKind::BatchInference,
                other => return Err(format!("unknown kind '{other}' (training|inference)")),
            },
            stage: flags.take_usize("stage", 8)?,
        },
        "verify-schedule" => {
            let Some(target) = positional else {
                return Err("verify-schedule needs a schedule name or a stream file path".into());
            };
            // Paths are read at run time; schedule spellings fail here
            // with the schedule grammar's own message.
            let target = if target.contains('/') || target.ends_with(".toml") {
                VerifyTarget::File(target)
            } else {
                VerifyTarget::Kind(target.parse::<ScheduleKind>()?)
            };
            if let VerifyTarget::File(_) = &target {
                for flag in ["stages", "microbatches"] {
                    if flags.provided(flag) {
                        return Err(format!(
                            "--{flag} does not apply to stream-file targets \
                             (the file fixes the shape)"
                        ));
                    }
                }
            }
            let stages = flags.take_usize("stages", 8)?;
            let microbatches = flags.take_usize("microbatches", 8)?;
            if stages == 0 || microbatches == 0 {
                return Err("--stages and --microbatches must be at least 1".into());
            }
            let memory_limit = match flags.take("memory-limit") {
                None => None,
                Some(v) => Some(parse_u64("memory-limit", &v)?),
            };
            let json = match flags.take_string("format", "human")?.as_str() {
                "human" => false,
                "json" => true,
                other => return Err(format!("--format expects human|json, got '{other}'")),
            };
            Command::VerifySchedule {
                target,
                stages,
                microbatches,
                memory_limit,
                json,
            }
        }
        "certify-schedules" => {
            let write = match flags.take_string("mode", "check")?.as_str() {
                "check" => false,
                "write" => true,
                other => return Err(format!("--mode expects check|write, got '{other}'")),
            };
            Command::CertifySchedules {
                write,
                out: flags.take_string("out", "schedcert-report.json")?,
            }
        }
        "help" | "--help" | "-h" => Command::Help,
        other => {
            let Some((_, exp, allowed)) = EXP_ALIASES
                .iter()
                .find(|(spellings, _, _)| spellings.contains(&other))
            else {
                return Err(format!("unknown command '{other}'"));
            };
            let grid = take_grid_flags(&mut flags, other, allowed)?;
            grid.into_exp(exp.to_string(), None)
        }
    };
    flags.finish()?;
    Ok(Invocation { command, threads })
}

/// The grid-axis overrides an experiment command collected.
struct GridOverrides {
    iterations: Option<usize>,
    seed: Option<u64>,
    horizon_secs: Option<u64>,
    seeds: Option<u64>,
}

impl GridOverrides {
    fn into_exp(self, name: String, out: Option<String>) -> Command {
        Command::Exp {
            name,
            iterations: self.iterations,
            seed: self.seed,
            horizon_secs: self.horizon_secs,
            seeds: self.seeds,
            out,
        }
    }
}

/// Consumes the grid flags an experiment command accepts; flags not in
/// `allowed` stay unconsumed and trip the shared unknown-flag error.
fn take_grid_flags(
    flags: &mut FlagSet,
    cmd: &str,
    allowed: &[GridFlag],
) -> Result<GridOverrides, String> {
    let mut grid = GridOverrides {
        iterations: None,
        seed: None,
        horizon_secs: None,
        seeds: None,
    };
    for flag in allowed {
        match flag {
            GridFlag::Iterations | GridFlag::IterationsMin1 => {
                if let Some(v) = flags.take("iterations") {
                    let iterations = parse_usize("iterations", &v)?;
                    if iterations == 0 && *flag == GridFlag::IterationsMin1 {
                        return Err(format!("--iterations must be at least 1 for {cmd}"));
                    }
                    grid.iterations = Some(iterations);
                }
            }
            GridFlag::Seed => {
                if let Some(v) = flags.take("seed") {
                    grid.seed = Some(parse_u64("seed", &v)?);
                }
            }
            GridFlag::HorizonSecs => {
                if let Some(v) = flags.take("horizon-secs") {
                    grid.horizon_secs = Some(parse_u64("horizon-secs", &v)?);
                }
            }
            GridFlag::SeedsMin1 => {
                if let Some(v) = flags.take("seeds") {
                    let seeds = parse_u64("seeds", &v)?;
                    if seeds == 0 {
                        return Err(format!("--seeds must be at least 1 for {cmd}"));
                    }
                    grid.seeds = Some(seeds);
                }
            }
        }
    }
    Ok(grid)
}

/// The shape of an `f64` duration-valued flag. Every such flag shares
/// one parse-and-reject path ([`take_duration_secs`]): numeric infinity
/// spellings (`inf`, `Infinity`, overflowing literals like `1e999`) and
/// `NaN` are rejected everywhere — `f64::from_str` happily produces
/// them, and they would flow into `SimDuration::from_secs_f64` and the
/// exponential MTBF sampler as garbage rather than as a documented off
/// switch.
struct DurationFlag {
    name: &'static str,
    /// The explicit sentinel `'none'` disables the mechanism (surfaced
    /// to the backends as `f64::INFINITY`).
    none_disables: bool,
    /// Whether an exact 0 is meaningful (free checkpoints: yes; a mean
    /// time between failures: no).
    allow_zero: bool,
}

/// `--mtbf-secs`: positive, `'none'` disables injection.
const MTBF_FLAG: DurationFlag = DurationFlag {
    name: "mtbf-secs",
    none_disables: true,
    allow_zero: false,
};

/// `--checkpoint-secs`: non-negative, no disable sentinel.
const CHECKPOINT_FLAG: DurationFlag = DurationFlag {
    name: "checkpoint-secs",
    none_disables: false,
    allow_zero: true,
};

/// All `f64` duration flags — the table the rejection tests sweep.
#[cfg(test)]
const DURATION_FLAGS: &[&DurationFlag] = &[&MTBF_FLAG, &CHECKPOINT_FLAG];

/// Parses one duration flag according to its [`DurationFlag`] shape.
fn take_duration_secs(
    flags: &mut FlagSet,
    spec: &DurationFlag,
    default: &str,
) -> Result<f64, String> {
    let name = spec.name;
    let v = flags.take_string(name, default)?;
    if spec.none_disables && v == "none" {
        return Ok(f64::INFINITY);
    }
    let secs: f64 = v.parse().map_err(|_| {
        if spec.none_disables {
            format!("--{name} expects a number of seconds or 'none', got '{v}'")
        } else {
            format!("--{name} expects a number of seconds, got '{v}'")
        }
    })?;
    let in_range = secs.is_finite()
        && if spec.allow_zero {
            secs >= 0.0
        } else {
            secs > 0.0
        };
    if !in_range {
        return Err(if spec.none_disables {
            format!(
                "--{name} must be a finite positive number of seconds \
                 (use 'none' to disable failure injection), got '{v}'"
            )
        } else {
            format!("--{name} must be a finite non-negative number, got '{v}'")
        });
    }
    Ok(secs)
}

/// Parses an on/off-valued flag (`on`/`off`, also `true`/`false`).
fn take_on_off(flags: &mut FlagSet, name: &str, default: bool) -> Result<bool, String> {
    match flags.take(name) {
        None => Ok(default),
        Some(v) => match v.as_str() {
            "on" | "true" => Ok(true),
            "off" | "false" => Ok(false),
            _ => Err(format!("--{name} expects on|off, got '{v}'")),
        },
    }
}

fn parse_model(name: &str) -> Result<ModelId, String> {
    let canonical = name.to_ascii_lowercase().replace('_', "-");
    for id in ModelId::ALL {
        if id.name().to_ascii_lowercase() == canonical {
            return Ok(id);
        }
    }
    let names: Vec<&str> = ModelId::ALL.iter().map(|m| m.name()).collect();
    Err(format!(
        "unknown model '{name}'; available: {}",
        names.join(", ")
    ))
}

fn parse_usize(name: &str, v: &str) -> Result<usize, String> {
    v.parse()
        .map_err(|_| format!("--{name} expects an integer, got '{v}'"))
}

fn parse_u64(name: &str, v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("--{name} expects an integer, got '{v}'"))
}

/// `--flag value` pairs with consumption tracking so leftovers error.
struct FlagSet {
    pairs: Vec<(String, String, bool)>, // (name, value, consumed)
}

impl FlagSet {
    fn new(rest: &[&String]) -> Result<FlagSet, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let flag = rest[i];
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, got '{flag}'"));
            };
            let Some(value) = rest.get(i + 1) else {
                return Err(format!("--{name} needs a value"));
            };
            pairs.push((name.to_string(), value.to_string(), false));
            i += 2;
        }
        Ok(FlagSet { pairs })
    }

    fn provided(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _, _)| n == name)
    }

    fn take(&mut self, name: &str) -> Option<String> {
        for (n, v, consumed) in &mut self.pairs {
            if n == name && !*consumed {
                *consumed = true;
                return Some(v.clone());
            }
        }
        None
    }

    fn take_string(&mut self, name: &str, default: &str) -> Result<String, String> {
        Ok(self.take(name).unwrap_or_else(|| default.to_string()))
    }

    fn take_usize(&mut self, name: &str, default: usize) -> Result<usize, String> {
        match self.take(name) {
            None => Ok(default),
            Some(v) => parse_usize(name, &v),
        }
    }

    fn take_u64(&mut self, name: &str, default: u64) -> Result<u64, String> {
        match self.take(name) {
            None => Ok(default),
            Some(v) => parse_u64(name, &v),
        }
    }

    fn take_f64(&mut self, name: &str, default: f64) -> Result<f64, String> {
        match self.take(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got '{v}'")),
        }
    }

    fn finish(self) -> Result<(), String> {
        for (n, _, consumed) in &self.pairs {
            if !consumed {
                return Err(format!("unknown flag --{n} for this command"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn cmd(s: &str) -> Command {
        parse(&argv(s)).unwrap().command
    }

    /// An `Exp` command with no overrides.
    fn bare_exp(name: &str) -> Command {
        Command::Exp {
            name: name.to_string(),
            iterations: None,
            seed: None,
            horizon_secs: None,
            seeds: None,
            out: None,
        }
    }

    #[test]
    fn parses_bare_commands_as_registry_aliases() {
        assert_eq!(cmd("table1"), bare_exp("table1"));
        assert_eq!(cmd("fig4"), bare_exp("fig4_scaling"));
        assert_eq!(cmd("fig1"), bare_exp("fig4_scaling"));
        assert_eq!(cmd("fig7"), bare_exp("fig7_characterization"));
        assert_eq!(cmd("fig8"), bare_exp("fig8"));
        assert_eq!(cmd("fig10"), bare_exp("fig10"));
        assert_eq!(cmd("whatif"), bare_exp("whatif_offload_bandwidth"));
        assert_eq!(cmd("help"), Command::Help);
    }

    #[test]
    fn parses_alias_flags_as_grid_overrides() {
        assert_eq!(cmd("fig5"), bare_exp("fig5_fill_fraction"));
        assert_eq!(
            cmd("fig5 --iterations 50 --seed 9"),
            Command::Exp {
                name: "fig5_fill_fraction".into(),
                iterations: Some(50),
                seed: Some(9),
                horizon_secs: None,
                seeds: None,
                out: None,
            }
        );
        assert_eq!(
            cmd("fig9 --horizon-secs 1200"),
            Command::Exp {
                name: "fig9_policies".into(),
                iterations: None,
                seed: None,
                horizon_secs: Some(1200),
                seeds: None,
                out: None,
            }
        );
    }

    #[test]
    fn parses_exp_command() {
        assert_eq!(cmd("exp fleet_scale"), bare_exp("fleet_scale"));
        assert_eq!(
            cmd("exp whatif_faults --iterations 40 --seed 3 --out /tmp/x"),
            Command::Exp {
                name: "whatif_faults".into(),
                iterations: Some(40),
                seed: Some(3),
                horizon_secs: None,
                seeds: None,
                out: Some("/tmp/x".into()),
            }
        );
        assert_eq!(cmd("exp --list"), Command::ExpList);
        let err = parse(&argv("exp")).unwrap_err();
        assert!(err.contains("experiment name"), "{err}");
        let err = parse(&argv("exp --list --seed 3")).unwrap_err();
        assert!(err.contains("no other arguments"), "{err}");
        let err = parse(&argv("exp table1 --iterations 0")).unwrap_err();
        assert!(err.contains("at least 1 for table1"), "{err}");
        let err = parse(&argv("exp table1 --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
    }

    #[test]
    fn parses_run_command_with_set_overrides() {
        assert_eq!(
            cmd("run examples/scenarios/fault.toml"),
            Command::RunScenario {
                path: "examples/scenarios/fault.toml".into(),
                sets: vec![],
            }
        );
        assert_eq!(
            cmd("run s.toml --set seed=9 --set mtbf_secs=none"),
            Command::RunScenario {
                path: "s.toml".into(),
                sets: vec![
                    ("seed".into(), "9".into()),
                    ("mtbf_secs".into(), "none".into())
                ],
            }
        );
        let err = parse(&argv("run")).unwrap_err();
        assert!(err.contains("scenario file path"), "{err}");
        let err = parse(&argv("run s.toml --set seed")).unwrap_err();
        assert!(err.contains("key=value"), "{err}");
        let err = parse(&argv("run s.toml --bogus 1")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
    }

    #[test]
    fn parses_global_threads_flag() {
        let inv = parse(&argv("fig5 --threads 4")).unwrap();
        assert_eq!(inv.threads, 4);
        assert_eq!(inv.command, bare_exp("fig5_fill_fraction"));
        // Default: 0 = all cores.
        assert_eq!(parse(&argv("fig4")).unwrap().threads, 0);
        // Accepted by every command.
        assert_eq!(parse(&argv("table1 --threads 2")).unwrap().threads, 2);
        assert_eq!(
            parse(&argv("run s.toml --threads 2 --set seed=1"))
                .unwrap()
                .threads,
            2
        );
    }

    #[test]
    fn parses_sim_command() {
        assert_eq!(
            cmd("sim"),
            Command::Sim {
                backend: BackendKind::Coarse,
                seed: 7,
                iterations: 300,
                horizon_secs: 3600,
                load: 1.0,
                fill_fraction: 0.68,
                mtbf_secs: f64::INFINITY,
                checkpoint_secs: 2.0,
                schedule: ScheduleKind::GPipe,
                fast_forward: true,
            }
        );
        assert_eq!(
            cmd("sim --backend physical --fill-fraction 0.9 --seed 3"),
            Command::Sim {
                backend: BackendKind::Physical,
                seed: 3,
                iterations: 300,
                horizon_secs: 3600,
                load: 1.0,
                fill_fraction: 0.9,
                mtbf_secs: f64::INFINITY,
                checkpoint_secs: 2.0,
                schedule: ScheduleKind::GPipe,
                fast_forward: true,
            }
        );
        assert!(parse(&argv("sim --backend quantum")).is_err());
        assert!(parse(&argv("sim --load 0")).is_err());
        assert!(parse(&argv("sim --load -2")).is_err());
        assert!(parse(&argv("sim --backend physical --fill-fraction 1.5")).is_err());
        // Knobs of the other fidelities are rejected, not silently dropped.
        assert!(parse(&argv("sim --backend coarse --fill-fraction 0.9")).is_err());
        assert!(parse(&argv("sim --backend coarse --iterations 50")).is_err());
        assert!(parse(&argv("sim --backend coarse --mtbf-secs 600")).is_err());
        assert!(parse(&argv("sim --backend physical --load 2.0")).is_err());
        assert!(parse(&argv("sim --backend physical --horizon-secs 60")).is_err());
        assert!(parse(&argv("sim --backend physical --checkpoint-secs 1")).is_err());
        assert!(parse(&argv("sim --backend fault --load 2.0")).is_err());
        assert!(parse(&argv("sim --backend fault --horizon-secs 60")).is_err());
    }

    #[test]
    fn parses_fault_backend_sim() {
        assert_eq!(
            cmd("sim --backend fault --mtbf-secs 600 --checkpoint-secs 4 --seed 5"),
            Command::Sim {
                backend: BackendKind::Fault,
                seed: 5,
                iterations: 300,
                horizon_secs: 3600,
                load: 1.0,
                fill_fraction: 0.68,
                mtbf_secs: 600.0,
                checkpoint_secs: 4.0,
                schedule: ScheduleKind::GPipe,
                fast_forward: true,
            }
        );
        // 'none' spelled out disables injection.
        assert!(matches!(
            cmd("sim --backend fault --mtbf-secs none"),
            Command::Sim { mtbf_secs, .. } if mtbf_secs.is_infinite()
        ));
        let err = parse(&argv("sim --backend fault --mtbf-secs 0")).unwrap_err();
        assert!(err.contains("finite positive"), "{err}");
        let err = parse(&argv("sim --backend fault --mtbf-secs soon")).unwrap_err();
        assert!(
            err.contains("expects a number of seconds or 'none'"),
            "{err}"
        );
        let err = parse(&argv("sim --backend fault --checkpoint-secs -1")).unwrap_err();
        assert!(
            err.contains("--checkpoint-secs must be a finite non-negative"),
            "{err}"
        );
    }

    /// Every duration-valued flag rejects non-finite spellings: `inf`
    /// and friends parse as f64 infinity and would otherwise flow into
    /// `SimDuration` and the MTBF sampler. The sweep is table-driven
    /// over [`DURATION_FLAGS`], so a new duration flag is covered by
    /// adding it to the table.
    #[test]
    fn duration_flags_reject_non_finite_values() {
        for spelling in ["inf", "infinity", "Infinity", "INF", "1e999", "-inf", "NaN"] {
            for flag in DURATION_FLAGS {
                let err = parse(&argv(&format!(
                    "sim --backend fault --{} {spelling}",
                    flag.name
                )))
                .unwrap_err();
                assert!(
                    err.contains("finite positive")
                        || err.contains("'none'")
                        || err.contains("finite non-negative"),
                    "--{} {spelling}: {err}",
                    flag.name
                );
            }
            let err = parse(&argv(&format!("fleet --mtbf-secs {spelling}"))).unwrap_err();
            assert!(
                err.contains("finite positive") || err.contains("'none'"),
                "fleet mtbf {spelling}: {err}"
            );
            // Integer-valued duration flags reject them at the integer
            // parse.
            let err = parse(&argv(&format!("sim --horizon-secs {spelling}"))).unwrap_err();
            assert!(
                err.contains("expects an integer"),
                "horizon {spelling}: {err}"
            );
            let err = parse(&argv(&format!("fig9 --horizon-secs {spelling}"))).unwrap_err();
            assert!(err.contains("expects an integer"), "fig9 {spelling}: {err}");
        }
        // The old 'inf'/'infinity' off-switch spellings are gone; only
        // 'none' disables injection.
        let err = parse(&argv("fleet --mtbf-secs inf")).unwrap_err();
        assert!(err.contains("'none'"), "{err}");
        assert!(matches!(
            cmd("fleet --mtbf-secs none"),
            Command::Fleet { mtbf_secs, .. } if mtbf_secs.is_infinite()
        ));
        // 'none' only disables flags documented to support it.
        let err = parse(&argv("sim --backend fault --checkpoint-secs none")).unwrap_err();
        assert!(err.contains("expects a number of seconds"), "{err}");
    }

    #[test]
    fn parses_schedule_flag_everywhere() {
        assert!(matches!(
            cmd("sim --backend physical --schedule zb-h1"),
            Command::Sim {
                schedule: ScheduleKind::ZbH1,
                ..
            }
        ));
        assert!(matches!(
            cmd("sim --backend coarse --schedule interleaved"),
            Command::Sim {
                schedule: ScheduleKind::Interleaved { chunks: 2 },
                ..
            }
        ));
        assert!(matches!(
            cmd("sim --backend fault --schedule interleaved:4"),
            Command::Sim {
                schedule: ScheduleKind::Interleaved { chunks: 4 },
                ..
            }
        ));
        assert!(matches!(
            cmd("fleet --schedule zb-h1"),
            Command::Fleet {
                schedule: ScheduleKind::ZbH1,
                ..
            }
        ));
        assert!(matches!(
            cmd("timeline --schedule interleaved:3"),
            Command::Timeline {
                schedule: ScheduleKind::Interleaved { chunks: 3 },
                ..
            }
        ));
        let err = parse(&argv("sim --schedule bidirectional")).unwrap_err();
        assert!(err.contains("unknown schedule"), "{err}");
        let err = parse(&argv("fleet --schedule interleaved:0")).unwrap_err();
        assert!(err.contains("at least 1 chunk"), "{err}");
        let err = parse(&argv("timeline --schedule 2f2b")).unwrap_err();
        assert!(err.contains("unknown schedule"), "{err}");
    }

    /// Every surface that accepts a schedule spelling — `sim`, `fleet`,
    /// `timeline` via `--schedule`, and `verify-schedule`'s positional —
    /// rejects malformed spellings with the grammar's exact messages,
    /// not a downstream panic or a silent default.
    #[test]
    fn malformed_schedules_are_rejected_on_every_surface() {
        let surfaces = [
            "sim --schedule {}",
            "sim --backend physical --schedule {}",
            "fleet --schedule {}",
            "timeline --schedule {}",
            "verify-schedule {}",
        ];
        let cases = [
            (
                "interleaved:0",
                "interleaved needs at least 1 chunk per device, got 'interleaved:0'",
            ),
            (
                "interleaved:02",
                "interleaved chunk count must be a canonical decimal \
                 (write 'interleaved:2'), got '02'",
            ),
            (
                "interleaved:+2",
                "interleaved chunk count must be a canonical decimal \
                 (write 'interleaved:2'), got '+2'",
            ),
            (
                "interleaved:two",
                "interleaved chunk count must be an integer, got 'two'",
            ),
            (
                "2f2b",
                "unknown schedule '2f2b' (gpipe|1f1b|interleaved[:v]|zb-h1)",
            ),
        ];
        for surface in surfaces {
            for (spelling, message) in cases {
                let err = parse(&argv(&surface.replace("{}", spelling))).unwrap_err();
                assert_eq!(err, message, "{surface} / {spelling}");
            }
        }
    }

    #[test]
    fn parses_verify_schedule_command() {
        assert_eq!(
            cmd("verify-schedule zb-h1"),
            Command::VerifySchedule {
                target: VerifyTarget::Kind(ScheduleKind::ZbH1),
                stages: 8,
                microbatches: 8,
                memory_limit: None,
                json: false,
            }
        );
        assert_eq!(
            cmd("verify-schedule 1f1b --stages 4 --microbatches 16 \
                 --memory-limit 4 --format json"),
            Command::VerifySchedule {
                target: VerifyTarget::Kind(ScheduleKind::OneFOneB),
                stages: 4,
                microbatches: 16,
                memory_limit: Some(4),
                json: true,
            }
        );
        // Anything path-shaped is a stream file, resolved at run time.
        assert_eq!(
            cmd("verify-schedule examples/streams/deadlock.toml"),
            Command::VerifySchedule {
                target: VerifyTarget::File("examples/streams/deadlock.toml".into()),
                stages: 8,
                microbatches: 8,
                memory_limit: None,
                json: false,
            }
        );
        let err = parse(&argv("verify-schedule")).unwrap_err();
        assert!(err.contains("schedule name or a stream file"), "{err}");
        // Shape flags contradict a file target's own header.
        let err = parse(&argv("verify-schedule s.toml --stages 4")).unwrap_err();
        assert!(err.contains("does not apply to stream-file"), "{err}");
        let err = parse(&argv("verify-schedule gpipe --stages 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("verify-schedule gpipe --format yaml")).unwrap_err();
        assert!(err.contains("expects human|json"), "{err}");
        let err = parse(&argv("verify-schedule gpipe --width 80")).unwrap_err();
        assert!(err.contains("unknown flag --width"), "{err}");
    }

    #[test]
    fn parses_certify_schedules_command() {
        assert_eq!(
            cmd("certify-schedules"),
            Command::CertifySchedules {
                write: false,
                out: "schedcert-report.json".into(),
            }
        );
        assert_eq!(
            cmd("certify-schedules --mode write --out /tmp/r.json"),
            Command::CertifySchedules {
                write: true,
                out: "/tmp/r.json".into(),
            }
        );
        let err = parse(&argv("certify-schedules --mode verify")).unwrap_err();
        assert!(err.contains("expects check|write"), "{err}");
    }

    #[test]
    fn parses_agree_command() {
        assert_eq!(
            cmd("agree --seeds 5 --iterations 100"),
            Command::Exp {
                name: "fig6_agreement".into(),
                iterations: Some(100),
                seed: None,
                horizon_secs: None,
                seeds: Some(5),
                out: None,
            }
        );
    }

    #[test]
    fn agree_rejects_unknown_flags_and_degenerate_values() {
        // The same unknown-flag error path as every other command.
        let err = parse(&argv("agree --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        let err = parse(&argv("agree --seed 5")).unwrap_err();
        assert!(err.contains("unknown flag --seed"), "{err}");
        // Degenerate grids error out instead of silently doing nothing.
        let err = parse(&argv("agree --seeds 0")).unwrap_err();
        assert!(err.contains("--seeds must be at least 1"), "{err}");
        let err = parse(&argv("agree --iterations 0")).unwrap_err();
        assert!(err.contains("--iterations must be at least 1"), "{err}");
    }

    #[test]
    fn parses_faults_command_and_rejects_bad_flags() {
        assert_eq!(cmd("faults"), bare_exp("whatif_faults"));
        assert_eq!(
            cmd("faults --iterations 50 --seed 9"),
            Command::Exp {
                name: "whatif_faults".into(),
                iterations: Some(50),
                seed: Some(9),
                horizon_secs: None,
                seeds: None,
                out: None,
            }
        );
        let err = parse(&argv("faults --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        let err = parse(&argv("faults --mtbf-secs 600")).unwrap_err();
        assert!(err.contains("unknown flag --mtbf-secs"), "{err}");
        let err = parse(&argv("faults --iterations 0")).unwrap_err();
        assert!(err.contains("--iterations must be at least 1"), "{err}");
    }

    #[test]
    fn parses_fleet_command_with_defaults() {
        assert_eq!(
            cmd("fleet"),
            Command::Fleet {
                jobs: 8,
                gpus: 8 * 128,
                iterations: 150,
                seed: 7,
                mtbf_secs: 1800.0,
                policy: PolicyKind::Fifo,
                schedule: ScheduleKind::GPipe,
                fast_forward: true,
            }
        );
        assert_eq!(
            cmd("fleet --jobs 64 --gpus 8192 --iterations 200 --seed 3 \
                 --mtbf-secs 600 --policy sjf --schedule 1f1b"),
            Command::Fleet {
                jobs: 64,
                gpus: 8192,
                iterations: 200,
                seed: 3,
                mtbf_secs: 600.0,
                policy: PolicyKind::Sjf,
                schedule: ScheduleKind::OneFOneB,
                fast_forward: true,
            }
        );
        // The GPU budget defaults to 128 per job.
        assert!(matches!(
            cmd("fleet --jobs 4"),
            Command::Fleet { gpus: 512, .. }
        ));
        // 'none' disables fault injection.
        assert!(matches!(
            cmd("fleet --mtbf-secs none"),
            Command::Fleet { mtbf_secs, .. } if mtbf_secs.is_infinite()
        ));
    }

    #[test]
    fn fleet_rejects_unknown_flags_and_degenerate_values() {
        // Unknown and other-command flags are rejected, not dropped.
        let err = parse(&argv("fleet --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        let err = parse(&argv("fleet --load 2.0")).unwrap_err();
        assert!(err.contains("unknown flag --load"), "{err}");
        let err = parse(&argv("fleet --fill-fraction 0.9")).unwrap_err();
        assert!(err.contains("unknown flag --fill-fraction"), "{err}");
        let err = parse(&argv("fleet --checkpoint-secs 2")).unwrap_err();
        assert!(err.contains("unknown flag --checkpoint-secs"), "{err}");
        // Degenerate grids error out instead of silently doing nothing.
        let err = parse(&argv("fleet --jobs 0")).unwrap_err();
        assert!(err.contains("--jobs must be at least 1"), "{err}");
        let err = parse(&argv("fleet --iterations 0")).unwrap_err();
        assert!(err.contains("--iterations must be at least 1"), "{err}");
        let err = parse(&argv("fleet --jobs 4 --gpus 16")).unwrap_err();
        assert!(err.contains("under 8 GPUs per job"), "{err}");
        let err = parse(&argv("fleet --mtbf-secs 0")).unwrap_err();
        assert!(err.contains("finite positive"), "{err}");
        let err = parse(&argv("fleet --mtbf-secs soon")).unwrap_err();
        assert!(
            err.contains("expects a number of seconds or 'none'"),
            "{err}"
        );
        let err = parse(&argv("fleet --policy quantum")).unwrap_err();
        assert!(err.contains("unknown policy 'quantum'"), "{err}");
        // The fleet backend has its own subcommand; `sim` points there.
        let err = parse(&argv("sim --backend fleet")).unwrap_err();
        assert!(err.contains("use the 'fleet' subcommand"), "{err}");
    }

    #[test]
    fn parses_fast_forward_flag() {
        // Applies to the iteration-loop backends and the fleet; default on.
        assert!(matches!(
            cmd("sim --backend physical --fast-forward off"),
            Command::Sim {
                fast_forward: false,
                ..
            }
        ));
        assert!(matches!(
            cmd("sim --backend fault --fast-forward on"),
            Command::Sim {
                fast_forward: true,
                ..
            }
        ));
        assert!(matches!(
            cmd("fleet --fast-forward off"),
            Command::Fleet {
                fast_forward: false,
                ..
            }
        ));
        // The coarse backend has no iteration loop to skip.
        let err = parse(&argv("sim --backend coarse --fast-forward off")).unwrap_err();
        assert!(
            err.contains("does not apply to the coarse backend"),
            "{err}"
        );
        let err = parse(&argv("sim --backend fault --fast-forward maybe")).unwrap_err();
        assert!(err.contains("expects on|off"), "{err}");
        let err = parse(&argv("timeline --fast-forward off")).unwrap_err();
        assert!(err.contains("unknown flag --fast-forward"), "{err}");
    }

    #[test]
    fn parses_timeline_options() {
        let c = cmd("timeline --schedule 1f1b --stages 4 --microbatches 6 --width 80");
        assert_eq!(
            c,
            Command::Timeline {
                schedule: ScheduleKind::OneFOneB,
                stages: 4,
                microbatches: 6,
                width: 80
            }
        );
    }

    #[test]
    fn parses_plan_models_case_insensitively() {
        let c = cmd("plan --model Bert-Large --kind training --stage 3");
        assert_eq!(
            c,
            Command::Plan {
                model: ModelId::BertLarge,
                kind: JobKind::Training,
                stage: 3
            }
        );
        let c = cmd("plan --model resnet-50 --kind inf --stage 0");
        assert!(matches!(
            c,
            Command::Plan {
                model: ModelId::ResNet50,
                ..
            }
        ));
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("fig5 --bogus 3")).is_err());
        assert!(parse(&argv("fig5 --iterations abc")).is_err());
        assert!(parse(&argv("fig5 --iterations")).is_err());
        assert!(parse(&argv("fig4 --iterations 3")).is_err());
        assert!(parse(&argv("plan --model nonesuch")).is_err());
        assert!(parse(&[]).is_err());
    }
}
