//! Hand-rolled argument parsing (the workspace's dependency policy has no
//! CLI crate; the grammar is tiny).

use pipefill_core::{BackendKind, PolicyKind};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::ScheduleKind;

/// Usage text printed on parse errors and `help`.
pub const USAGE: &str = "\
usage: pipefill-cli <command> [options] [--threads N]

commands:
  table1                          fill-job category table (Table 1)
  fig4                            scaling study (Figs. 1 & 4)
  fig5   [--iterations N] [--seed S]
  fig6   [--iterations N] [--seed S]
  fig7                            fill-job characterization
  fig8                            GPipe vs 1F1B
  fig9   [--horizon-secs N] [--seed S]
  fig10                           sensitivity studies
  whatif                          offload-bandwidth what-if
  faults [--iterations N] [--seed S]
                                  MTBF x checkpoint-cost fault-tolerance map
  fleet  [--jobs N] [--gpus N] [--iterations N] [--seed S]
         [--mtbf-secs X|none] [--policy fifo|sjf|makespan-min|edf]
         [--schedule gpipe|1f1b|interleaved[:v]|zb-h1]
                                  multi-job fleet on one global fill queue
  all    [--out DIR]              run everything, write CSVs
  sim    [--backend coarse|physical|fault] [--seed S] [--iterations N]
         [--horizon-secs N] [--load X] [--fill-fraction F]
         [--mtbf-secs X|none] [--checkpoint-secs C]
         [--schedule gpipe|1f1b|interleaved[:v]|zb-h1]
                                  one simulation at a chosen fidelity
  agree  [--seeds N] [--iterations N]
                                  coarse-vs-physical backend agreement (Fig. 6)
  timeline [--schedule gpipe|1f1b|interleaved[:v]|zb-h1]
         [--stages P] [--microbatches M] [--width W]
  plan   [--model NAME] [--kind training|inference] [--stage S]
  help

global options:
  --threads N                     worker threads for parallel sweeps
                                  (default: all cores)";

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Table 1.
    Table1,
    /// Figs. 1 & 4.
    Fig4,
    /// Fig. 5.
    Fig5 {
        /// Physical-sim iterations.
        iterations: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Fig. 6.
    Fig6 {
        /// Physical-sim iterations.
        iterations: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Fig. 7.
    Fig7,
    /// Fig. 8.
    Fig8,
    /// Fig. 9.
    Fig9 {
        /// Trace horizon in seconds.
        horizon_secs: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Fig. 10.
    Fig10,
    /// Offload-bandwidth what-if.
    WhatIf,
    /// Fault-tolerance MTBF × checkpoint-cost map.
    Faults {
        /// Main-job iterations per grid point.
        iterations: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Multi-job fleet simulation on one global fill queue.
    Fleet {
        /// Concurrent main jobs.
        jobs: usize,
        /// Total GPU budget split across jobs.
        gpus: usize,
        /// Main-job iterations per job.
        iterations: usize,
        /// RNG seed (fleet generation + failure streams).
        seed: u64,
        /// Mean time between device failures in seconds (`'none'`
        /// disables injection and with it all global-queue traffic).
        mtbf_secs: f64,
        /// Policy of the cluster-wide fill queue.
        policy: PolicyKind,
        /// Pipeline schedule every main job runs.
        schedule: ScheduleKind,
    },
    /// Everything, with CSV output.
    All {
        /// Output directory.
        out: String,
    },
    /// One simulation at a chosen fidelity.
    Sim {
        /// Which backend runs it.
        backend: BackendKind,
        /// RNG seed.
        seed: u64,
        /// Main-job iterations (physical backend).
        iterations: usize,
        /// Trace horizon in seconds (coarse backend).
        horizon_secs: u64,
        /// Offered-load multiplier (coarse backend).
        load: f64,
        /// Fill fraction (physical and fault backends).
        fill_fraction: f64,
        /// Mean time between device failures in seconds (fault backend;
        /// `'none'` disables injection).
        mtbf_secs: f64,
        /// Checkpoint-restart cost per eviction in seconds (fault
        /// backend).
        checkpoint_secs: f64,
        /// Pipeline schedule the main job runs (all backends).
        schedule: ScheduleKind,
    },
    /// Coarse-vs-physical agreement study (Fig. 6).
    Agree {
        /// Number of seeds to replicate.
        seeds: u64,
        /// Main-job iterations per physical run.
        iterations: usize,
    },
    /// ASCII schedule rendering.
    Timeline {
        /// Pipeline schedule.
        schedule: ScheduleKind,
        /// Stages.
        stages: usize,
        /// Microbatches.
        microbatches: usize,
        /// Render width in columns.
        width: usize,
    },
    /// Show one job's execution plan.
    Plan {
        /// Fill-job model.
        model: ModelId,
        /// Training or batch inference.
        kind: JobKind,
        /// Pipeline stage whose bubbles to plan against.
        stage: usize,
    },
    /// Print usage.
    Help,
}

/// A parsed command line: the command plus global options.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The command to run.
    pub command: Command,
    /// Worker threads for parallel sweeps (0 = all cores).
    pub threads: usize,
}

/// Parses an argument vector (without the binary name).
///
/// # Errors
///
/// Returns a human-readable message on unknown commands, unknown flags,
/// or malformed values.
pub fn parse(argv: &[String]) -> Result<Invocation, String> {
    let mut it = argv.iter();
    let Some(cmd) = it.next() else {
        return Err("missing command".into());
    };
    let rest: Vec<&String> = it.collect();

    let mut flags = FlagSet::new(&rest)?;
    // Global options are accepted by every command.
    let threads = flags.take_usize("threads", 0)?;
    let command = match cmd.as_str() {
        "table1" => Command::Table1,
        "fig1" | "fig4" => Command::Fig4,
        "fig5" => Command::Fig5 {
            iterations: flags.take_usize("iterations", 300)?,
            seed: flags.take_u64("seed", 7)?,
        },
        "fig6" => Command::Fig6 {
            iterations: flags.take_usize("iterations", 300)?,
            seed: flags.take_u64("seed", 7)?,
        },
        "fig7" => Command::Fig7,
        "fig8" => Command::Fig8,
        "fig9" => Command::Fig9 {
            horizon_secs: flags.take_u64("horizon-secs", 3600)?,
            seed: flags.take_u64("seed", 11)?,
        },
        "fig10" => Command::Fig10,
        "whatif" => Command::WhatIf,
        "faults" => {
            let iterations = flags.take_usize("iterations", 200)?;
            if iterations == 0 {
                return Err("--iterations must be at least 1 for faults".into());
            }
            Command::Faults {
                iterations,
                seed: flags.take_u64("seed", 7)?,
            }
        }
        "fleet" => {
            let jobs = flags.take_usize("jobs", 8)?;
            if jobs == 0 {
                return Err("--jobs must be at least 1 for fleet".into());
            }
            let gpus = flags.take_usize("gpus", jobs * 128)?;
            if gpus / jobs < 8 {
                return Err(format!(
                    "--gpus {gpus} leaves under 8 GPUs per job; the smallest pipeline needs 8"
                ));
            }
            let iterations = flags.take_usize("iterations", 150)?;
            if iterations == 0 {
                return Err("--iterations must be at least 1 for fleet".into());
            }
            Command::Fleet {
                jobs,
                gpus,
                iterations,
                seed: flags.take_u64("seed", 7)?,
                mtbf_secs: take_mtbf_secs(&mut flags, "1800")?,
                policy: flags.take_string("policy", "fifo")?.parse::<PolicyKind>()?,
                schedule: flags
                    .take_string("schedule", "gpipe")?
                    .parse::<ScheduleKind>()?,
            }
        }
        "all" => Command::All {
            out: flags.take_string("out", "target/experiments")?,
        },
        "sim" => {
            let backend = flags
                .take_string("backend", "coarse")?
                .parse::<BackendKind>()?;
            if backend == BackendKind::Fleet {
                return Err(
                    "the fleet backend simulates many jobs; use the 'fleet' subcommand".into(),
                );
            }
            // Each fidelity has its own knobs; reject the other backends'
            // so a sweep over an inapplicable flag can't silently no-op.
            let inapplicable: &[&str] = match backend {
                BackendKind::Coarse => &[
                    "iterations",
                    "fill-fraction",
                    "mtbf-secs",
                    "checkpoint-secs",
                ],
                BackendKind::Physical => &["horizon-secs", "load", "mtbf-secs", "checkpoint-secs"],
                BackendKind::Fault => &["horizon-secs", "load"],
                BackendKind::Fleet => unreachable!("rejected above"),
            };
            for flag in inapplicable {
                if flags.provided(flag) {
                    return Err(format!("--{flag} does not apply to the {backend} backend"));
                }
            }
            let load = flags.take_f64("load", 1.0)?;
            if !(load > 0.0 && load.is_finite()) {
                return Err(format!("--load must be a positive number, got {load}"));
            }
            let fill_fraction = flags.take_f64("fill-fraction", 0.68)?;
            if !(0.0..=1.0).contains(&fill_fraction) {
                return Err(format!(
                    "--fill-fraction must be within [0, 1], got {fill_fraction}"
                ));
            }
            let mtbf_secs = take_mtbf_secs(&mut flags, "none")?;
            let checkpoint_secs = flags.take_f64("checkpoint-secs", 2.0)?;
            if !(checkpoint_secs >= 0.0 && checkpoint_secs.is_finite()) {
                return Err(format!(
                    "--checkpoint-secs must be a finite non-negative number, got {checkpoint_secs}"
                ));
            }
            Command::Sim {
                backend,
                seed: flags.take_u64("seed", 7)?,
                iterations: flags.take_usize("iterations", 300)?,
                horizon_secs: flags.take_u64("horizon-secs", 3600)?,
                load,
                fill_fraction,
                mtbf_secs,
                checkpoint_secs,
                schedule: flags
                    .take_string("schedule", "gpipe")?
                    .parse::<ScheduleKind>()?,
            }
        }
        "agree" => {
            let seeds = flags.take_u64("seeds", 3)?;
            if seeds == 0 {
                return Err("--seeds must be at least 1 for agree".into());
            }
            let iterations = flags.take_usize("iterations", 200)?;
            if iterations == 0 {
                return Err("--iterations must be at least 1 for agree".into());
            }
            Command::Agree { seeds, iterations }
        }
        "timeline" => Command::Timeline {
            schedule: flags
                .take_string("schedule", "gpipe")?
                .parse::<ScheduleKind>()?,
            stages: flags.take_usize("stages", 8)?,
            microbatches: flags.take_usize("microbatches", 8)?,
            width: flags.take_usize("width", 96)?,
        },
        "plan" => Command::Plan {
            model: parse_model(&flags.take_string("model", "bert-base")?)?,
            kind: match flags.take_string("kind", "inference")?.as_str() {
                "training" | "train" => JobKind::Training,
                "inference" | "inf" | "batch-inference" => JobKind::BatchInference,
                other => return Err(format!("unknown kind '{other}' (training|inference)")),
            },
            stage: flags.take_usize("stage", 8)?,
        },
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(format!("unknown command '{other}'")),
    };
    flags.finish()?;
    Ok(Invocation { command, threads })
}

/// Parses `--mtbf-secs`: the explicit sentinel `'none'` disables failure
/// injection (surfaced to the backends as `f64::INFINITY`); any numeric
/// value must be a finite positive number of seconds. Numeric infinity
/// spellings (`inf`, `Infinity`, overflowing literals like `1e999`) are
/// rejected — `f64::from_str` happily produces them, and they would flow
/// into `SimDuration::from_secs_f64` and the exponential MTBF sampler as
/// garbage rather than as the documented off switch.
fn take_mtbf_secs(flags: &mut FlagSet, default: &str) -> Result<f64, String> {
    let v = flags.take_string("mtbf-secs", default)?;
    match v.as_str() {
        "none" => Ok(f64::INFINITY),
        v => {
            let secs: f64 = v.parse().map_err(|_| {
                format!("--mtbf-secs expects a number of seconds or 'none', got '{v}'")
            })?;
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(format!(
                    "--mtbf-secs must be a finite positive number of seconds \
                     (use 'none' to disable failure injection), got '{v}'"
                ));
            }
            Ok(secs)
        }
    }
}

fn parse_model(name: &str) -> Result<ModelId, String> {
    let canonical = name.to_ascii_lowercase().replace('_', "-");
    for id in ModelId::ALL {
        if id.name().to_ascii_lowercase() == canonical {
            return Ok(id);
        }
    }
    let names: Vec<&str> = ModelId::ALL.iter().map(|m| m.name()).collect();
    Err(format!(
        "unknown model '{name}'; available: {}",
        names.join(", ")
    ))
}

/// `--flag value` pairs with consumption tracking so leftovers error.
struct FlagSet {
    pairs: Vec<(String, String, bool)>, // (name, value, consumed)
}

impl FlagSet {
    fn new(rest: &[&String]) -> Result<FlagSet, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let flag = rest[i];
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, got '{flag}'"));
            };
            let Some(value) = rest.get(i + 1) else {
                return Err(format!("--{name} needs a value"));
            };
            pairs.push((name.to_string(), value.to_string(), false));
            i += 2;
        }
        Ok(FlagSet { pairs })
    }

    fn provided(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _, _)| n == name)
    }

    fn take(&mut self, name: &str) -> Option<String> {
        for (n, v, consumed) in &mut self.pairs {
            if n == name && !*consumed {
                *consumed = true;
                return Some(v.clone());
            }
        }
        None
    }

    fn take_string(&mut self, name: &str, default: &str) -> Result<String, String> {
        Ok(self.take(name).unwrap_or_else(|| default.to_string()))
    }

    fn take_usize(&mut self, name: &str, default: usize) -> Result<usize, String> {
        match self.take(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    fn take_u64(&mut self, name: &str, default: u64) -> Result<u64, String> {
        match self.take(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    fn take_f64(&mut self, name: &str, default: f64) -> Result<f64, String> {
        match self.take(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got '{v}'")),
        }
    }

    fn finish(self) -> Result<(), String> {
        for (n, _, consumed) in &self.pairs {
            if !consumed {
                return Err(format!("unknown flag --{n} for this command"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn cmd(s: &str) -> Command {
        parse(&argv(s)).unwrap().command
    }

    #[test]
    fn parses_bare_commands() {
        assert_eq!(cmd("table1"), Command::Table1);
        assert_eq!(cmd("fig4"), Command::Fig4);
        assert_eq!(cmd("fig1"), Command::Fig4);
        assert_eq!(cmd("help"), Command::Help);
        assert_eq!(cmd("whatif"), Command::WhatIf);
    }

    #[test]
    fn parses_flags_with_defaults() {
        assert_eq!(
            cmd("fig5"),
            Command::Fig5 {
                iterations: 300,
                seed: 7
            }
        );
        assert_eq!(
            cmd("fig5 --iterations 50 --seed 9"),
            Command::Fig5 {
                iterations: 50,
                seed: 9
            }
        );
    }

    #[test]
    fn parses_global_threads_flag() {
        let inv = parse(&argv("fig5 --threads 4")).unwrap();
        assert_eq!(inv.threads, 4);
        assert_eq!(
            inv.command,
            Command::Fig5 {
                iterations: 300,
                seed: 7
            }
        );
        // Default: 0 = all cores.
        assert_eq!(parse(&argv("fig4")).unwrap().threads, 0);
        // Accepted by every command.
        assert_eq!(parse(&argv("table1 --threads 2")).unwrap().threads, 2);
    }

    #[test]
    fn parses_sim_command() {
        assert_eq!(
            cmd("sim"),
            Command::Sim {
                backend: BackendKind::Coarse,
                seed: 7,
                iterations: 300,
                horizon_secs: 3600,
                load: 1.0,
                fill_fraction: 0.68,
                mtbf_secs: f64::INFINITY,
                checkpoint_secs: 2.0,
                schedule: ScheduleKind::GPipe,
            }
        );
        assert_eq!(
            cmd("sim --backend physical --fill-fraction 0.9 --seed 3"),
            Command::Sim {
                backend: BackendKind::Physical,
                seed: 3,
                iterations: 300,
                horizon_secs: 3600,
                load: 1.0,
                fill_fraction: 0.9,
                mtbf_secs: f64::INFINITY,
                checkpoint_secs: 2.0,
                schedule: ScheduleKind::GPipe,
            }
        );
        assert!(parse(&argv("sim --backend quantum")).is_err());
        assert!(parse(&argv("sim --load 0")).is_err());
        assert!(parse(&argv("sim --load -2")).is_err());
        assert!(parse(&argv("sim --backend physical --fill-fraction 1.5")).is_err());
        // Knobs of the other fidelities are rejected, not silently dropped.
        assert!(parse(&argv("sim --backend coarse --fill-fraction 0.9")).is_err());
        assert!(parse(&argv("sim --backend coarse --iterations 50")).is_err());
        assert!(parse(&argv("sim --backend coarse --mtbf-secs 600")).is_err());
        assert!(parse(&argv("sim --backend physical --load 2.0")).is_err());
        assert!(parse(&argv("sim --backend physical --horizon-secs 60")).is_err());
        assert!(parse(&argv("sim --backend physical --checkpoint-secs 1")).is_err());
        assert!(parse(&argv("sim --backend fault --load 2.0")).is_err());
        assert!(parse(&argv("sim --backend fault --horizon-secs 60")).is_err());
    }

    #[test]
    fn parses_fault_backend_sim() {
        assert_eq!(
            cmd("sim --backend fault --mtbf-secs 600 --checkpoint-secs 4 --seed 5"),
            Command::Sim {
                backend: BackendKind::Fault,
                seed: 5,
                iterations: 300,
                horizon_secs: 3600,
                load: 1.0,
                fill_fraction: 0.68,
                mtbf_secs: 600.0,
                checkpoint_secs: 4.0,
                schedule: ScheduleKind::GPipe,
            }
        );
        // 'none' spelled out disables injection.
        assert!(matches!(
            cmd("sim --backend fault --mtbf-secs none"),
            Command::Sim { mtbf_secs, .. } if mtbf_secs.is_infinite()
        ));
        let err = parse(&argv("sim --backend fault --mtbf-secs 0")).unwrap_err();
        assert!(err.contains("finite positive"), "{err}");
        let err = parse(&argv("sim --backend fault --mtbf-secs soon")).unwrap_err();
        assert!(
            err.contains("expects a number of seconds or 'none'"),
            "{err}"
        );
        let err = parse(&argv("sim --backend fault --checkpoint-secs -1")).unwrap_err();
        assert!(
            err.contains("--checkpoint-secs must be a finite non-negative"),
            "{err}"
        );
    }

    /// Every duration-valued flag rejects non-finite spellings: `inf`
    /// and friends parse as f64 infinity and would otherwise flow into
    /// `SimDuration` and the MTBF sampler.
    #[test]
    fn duration_flags_reject_non_finite_values() {
        for spelling in ["inf", "infinity", "Infinity", "INF", "1e999", "-inf", "NaN"] {
            let err = parse(&argv(&format!(
                "sim --backend fault --mtbf-secs {spelling}"
            )))
            .unwrap_err();
            assert!(
                err.contains("finite positive") || err.contains("'none'"),
                "mtbf {spelling}: {err}"
            );
            let err = parse(&argv(&format!("fleet --mtbf-secs {spelling}"))).unwrap_err();
            assert!(
                err.contains("finite positive") || err.contains("'none'"),
                "fleet mtbf {spelling}: {err}"
            );
            let err = parse(&argv(&format!(
                "sim --backend fault --checkpoint-secs {spelling}"
            )))
            .unwrap_err();
            assert!(
                err.contains("--checkpoint-secs must be a finite non-negative"),
                "checkpoint {spelling}: {err}"
            );
            // Integer-valued duration flags reject them at the integer
            // parse.
            let err = parse(&argv(&format!("sim --horizon-secs {spelling}"))).unwrap_err();
            assert!(
                err.contains("expects an integer"),
                "horizon {spelling}: {err}"
            );
            let err = parse(&argv(&format!("fig9 --horizon-secs {spelling}"))).unwrap_err();
            assert!(err.contains("expects an integer"), "fig9 {spelling}: {err}");
        }
        // The old 'inf'/'infinity' off-switch spellings are gone; only
        // 'none' disables injection.
        let err = parse(&argv("fleet --mtbf-secs inf")).unwrap_err();
        assert!(err.contains("'none'"), "{err}");
        assert!(matches!(
            cmd("fleet --mtbf-secs none"),
            Command::Fleet { mtbf_secs, .. } if mtbf_secs.is_infinite()
        ));
    }

    #[test]
    fn parses_schedule_flag_everywhere() {
        assert!(matches!(
            cmd("sim --backend physical --schedule zb-h1"),
            Command::Sim {
                schedule: ScheduleKind::ZbH1,
                ..
            }
        ));
        assert!(matches!(
            cmd("sim --backend coarse --schedule interleaved"),
            Command::Sim {
                schedule: ScheduleKind::Interleaved { chunks: 2 },
                ..
            }
        ));
        assert!(matches!(
            cmd("sim --backend fault --schedule interleaved:4"),
            Command::Sim {
                schedule: ScheduleKind::Interleaved { chunks: 4 },
                ..
            }
        ));
        assert!(matches!(
            cmd("fleet --schedule zb-h1"),
            Command::Fleet {
                schedule: ScheduleKind::ZbH1,
                ..
            }
        ));
        assert!(matches!(
            cmd("timeline --schedule interleaved:3"),
            Command::Timeline {
                schedule: ScheduleKind::Interleaved { chunks: 3 },
                ..
            }
        ));
        let err = parse(&argv("sim --schedule bidirectional")).unwrap_err();
        assert!(err.contains("unknown schedule"), "{err}");
        let err = parse(&argv("fleet --schedule interleaved:0")).unwrap_err();
        assert!(err.contains("at least 1 chunk"), "{err}");
        let err = parse(&argv("timeline --schedule 2f2b")).unwrap_err();
        assert!(err.contains("unknown schedule"), "{err}");
    }

    #[test]
    fn parses_agree_command() {
        assert_eq!(
            cmd("agree --seeds 5 --iterations 100"),
            Command::Agree {
                seeds: 5,
                iterations: 100
            }
        );
    }

    #[test]
    fn agree_rejects_unknown_flags_and_degenerate_values() {
        // The same unknown-flag error path as every other command.
        let err = parse(&argv("agree --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        let err = parse(&argv("agree --seed 5")).unwrap_err();
        assert!(err.contains("unknown flag --seed"), "{err}");
        // Degenerate grids error out instead of silently doing nothing.
        let err = parse(&argv("agree --seeds 0")).unwrap_err();
        assert!(err.contains("--seeds must be at least 1"), "{err}");
        let err = parse(&argv("agree --iterations 0")).unwrap_err();
        assert!(err.contains("--iterations must be at least 1"), "{err}");
    }

    #[test]
    fn parses_faults_command_and_rejects_bad_flags() {
        assert_eq!(
            cmd("faults"),
            Command::Faults {
                iterations: 200,
                seed: 7
            }
        );
        assert_eq!(
            cmd("faults --iterations 50 --seed 9"),
            Command::Faults {
                iterations: 50,
                seed: 9
            }
        );
        let err = parse(&argv("faults --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        let err = parse(&argv("faults --mtbf-secs 600")).unwrap_err();
        assert!(err.contains("unknown flag --mtbf-secs"), "{err}");
        let err = parse(&argv("faults --iterations 0")).unwrap_err();
        assert!(err.contains("--iterations must be at least 1"), "{err}");
    }

    #[test]
    fn parses_fleet_command_with_defaults() {
        assert_eq!(
            cmd("fleet"),
            Command::Fleet {
                jobs: 8,
                gpus: 8 * 128,
                iterations: 150,
                seed: 7,
                mtbf_secs: 1800.0,
                policy: PolicyKind::Fifo,
                schedule: ScheduleKind::GPipe,
            }
        );
        assert_eq!(
            cmd("fleet --jobs 64 --gpus 8192 --iterations 200 --seed 3 \
                 --mtbf-secs 600 --policy sjf --schedule 1f1b"),
            Command::Fleet {
                jobs: 64,
                gpus: 8192,
                iterations: 200,
                seed: 3,
                mtbf_secs: 600.0,
                policy: PolicyKind::Sjf,
                schedule: ScheduleKind::OneFOneB,
            }
        );
        // The GPU budget defaults to 128 per job.
        assert!(matches!(
            cmd("fleet --jobs 4"),
            Command::Fleet { gpus: 512, .. }
        ));
        // 'none' disables fault injection.
        assert!(matches!(
            cmd("fleet --mtbf-secs none"),
            Command::Fleet { mtbf_secs, .. } if mtbf_secs.is_infinite()
        ));
    }

    #[test]
    fn fleet_rejects_unknown_flags_and_degenerate_values() {
        // Unknown and other-command flags are rejected, not dropped.
        let err = parse(&argv("fleet --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        let err = parse(&argv("fleet --load 2.0")).unwrap_err();
        assert!(err.contains("unknown flag --load"), "{err}");
        let err = parse(&argv("fleet --fill-fraction 0.9")).unwrap_err();
        assert!(err.contains("unknown flag --fill-fraction"), "{err}");
        let err = parse(&argv("fleet --checkpoint-secs 2")).unwrap_err();
        assert!(err.contains("unknown flag --checkpoint-secs"), "{err}");
        // Degenerate grids error out instead of silently doing nothing.
        let err = parse(&argv("fleet --jobs 0")).unwrap_err();
        assert!(err.contains("--jobs must be at least 1"), "{err}");
        let err = parse(&argv("fleet --iterations 0")).unwrap_err();
        assert!(err.contains("--iterations must be at least 1"), "{err}");
        let err = parse(&argv("fleet --jobs 4 --gpus 16")).unwrap_err();
        assert!(err.contains("under 8 GPUs per job"), "{err}");
        let err = parse(&argv("fleet --mtbf-secs 0")).unwrap_err();
        assert!(err.contains("finite positive"), "{err}");
        let err = parse(&argv("fleet --mtbf-secs soon")).unwrap_err();
        assert!(
            err.contains("expects a number of seconds or 'none'"),
            "{err}"
        );
        let err = parse(&argv("fleet --policy quantum")).unwrap_err();
        assert!(err.contains("unknown policy 'quantum'"), "{err}");
        // The fleet backend has its own subcommand; `sim` points there.
        let err = parse(&argv("sim --backend fleet")).unwrap_err();
        assert!(err.contains("use the 'fleet' subcommand"), "{err}");
    }

    #[test]
    fn parses_timeline_options() {
        let c = cmd("timeline --schedule 1f1b --stages 4 --microbatches 6 --width 80");
        assert_eq!(
            c,
            Command::Timeline {
                schedule: ScheduleKind::OneFOneB,
                stages: 4,
                microbatches: 6,
                width: 80
            }
        );
    }

    #[test]
    fn parses_plan_models_case_insensitively() {
        let c = cmd("plan --model Bert-Large --kind training --stage 3");
        assert_eq!(
            c,
            Command::Plan {
                model: ModelId::BertLarge,
                kind: JobKind::Training,
                stage: 3
            }
        );
        let c = cmd("plan --model resnet-50 --kind inf --stage 0");
        assert!(matches!(
            c,
            Command::Plan {
                model: ModelId::ResNet50,
                ..
            }
        ));
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("fig5 --bogus 3")).is_err());
        assert!(parse(&argv("fig5 --iterations abc")).is_err());
        assert!(parse(&argv("fig5 --iterations")).is_err());
        assert!(parse(&argv("plan --model nonesuch")).is_err());
        assert!(parse(&[]).is_err());
    }
}
