//! Command implementations: thin glue over the scenario API and the
//! experiment registry.
//!
//! A command either resolves to registry experiments (`exp`, `all`, the
//! legacy per-figure aliases) and runs them through the generic
//! table/CSV path, or builds a [`ScenarioSpec`] (`run <file>`, `sim`,
//! `fleet`) and lowers it to a backend run. No command owns bespoke
//! persistence or per-driver printing anymore.

use std::process::ExitCode;

use pipefill_core::experiments::sweep;
use pipefill_core::{BackendKind, BackendMetrics, FleetSimResult};
use pipefill_executor::{plan_best, ExecutorConfig, FillJobSpec};
use pipefill_pipeline::{render_timeline, EngineConfig, MainJobSpec, ScheduleKind};
use pipefill_scenario::{toml as scenario_toml, Axis, Experiment, Grid, Scale, ScenarioSpec};
use pipefill_schedverify::{certificate, verify, StreamSet, Verdict, VerifyConfig};
use pipefill_sim_core::SimDuration;

use crate::args::{Command, Invocation, VerifyTarget, USAGE};

/// Resolves an experiment spelling through the registry's shared
/// single/multi-alias resolution, with a CLI-flavoured error.
fn resolve(name: &str) -> Result<Vec<&'static dyn Experiment>, String> {
    pipefill_scenario::resolve(name).ok_or_else(|| {
        format!("unknown experiment '{name}'; run `pipefill-cli exp --list` for the registry")
    })
}

/// Rejects grid overrides on axes none of the resolved experiments
/// sweep — the override would otherwise be a silent no-op (the same
/// stance the per-backend flag rejection takes).
fn reject_unswept_axes(
    name: &str,
    exps: &[&'static dyn Experiment],
    iterations: Option<usize>,
    seed: Option<u64>,
    horizon_secs: Option<u64>,
    seeds: Option<u64>,
) -> Result<(), String> {
    for (axis, flag, set) in [
        (Axis::Iterations, "--iterations", iterations.is_some()),
        (Axis::Seed, "--seed", seed.is_some()),
        (Axis::HorizonSecs, "--horizon-secs", horizon_secs.is_some()),
        (Axis::Seeds, "--seeds", seeds.is_some()),
    ] {
        if set && !exps.iter().any(|e| e.axes().contains(&axis)) {
            return Err(format!(
                "{flag} does not apply to experiment '{name}' (its grid does not sweep it)"
            ));
        }
    }
    Ok(())
}

/// Runs one experiment: print the table, any experiment-declared
/// summary line, and persist the CSV.
fn run_experiment(exp: &dyn Experiment, grid: &Grid, out: &str) -> Result<(), String> {
    println!("== {} — {} ==", exp.name(), exp.description());
    let table = exp.run(grid);
    table.print();
    if let Some(summary) = exp.summary(&table) {
        println!("{summary}");
    }
    let path = format!("{out}/{}.csv", exp.name());
    table
        .save(&path)
        .map_err(|e| format!("writing {path}: {e}"))?;
    println!("CSV written to {path}\n");
    Ok(())
}

/// Executes a parsed invocation and reports the process exit code:
/// success for every command that ran, and the dedicated rejection code
/// for `verify-schedule` / `certify-schedules` when the verdict (or the
/// byte comparison) fails.
///
/// # Errors
///
/// Returns a message for I/O failures, unknown experiments, invalid
/// scenarios, or infeasible plan requests (mapped to usage-error exit
/// status by `main`).
pub fn run(invocation: Invocation) -> Result<ExitCode, String> {
    let threads = sweep::set_threads(invocation.threads);
    match invocation.command {
        Command::Help => println!("{USAGE}"),
        Command::ExpList => {
            println!(
                "{} registered experiments (run with `exp <name>`, `all`, or a \
                 scenario file with `experiment = \"<name>\"`):\n",
                pipefill_scenario::REGISTRY.len()
            );
            for exp in pipefill_scenario::REGISTRY {
                let tag = if exp.simulation_backed() {
                    "sim"
                } else {
                    "analysis"
                };
                let aliases = if exp.aliases().is_empty() {
                    String::new()
                } else {
                    format!(" (alias: {})", exp.aliases().join(", "))
                };
                println!(
                    "  {:<26} [{tag:>8}] {}{aliases}",
                    exp.name(),
                    exp.description()
                );
            }
        }
        Command::Exp {
            name,
            iterations,
            seed,
            horizon_secs,
            seeds,
            out,
        } => {
            let out = out.unwrap_or_else(|| "target/experiments".to_string());
            let exps = resolve(&name)?;
            reject_unswept_axes(&name, &exps, iterations, seed, horizon_secs, seeds)?;
            for exp in exps {
                let grid =
                    exp.grid(Scale::Full)
                        .with_overrides(iterations, seed, horizon_secs, seeds);
                run_experiment(exp, &grid, &out)?;
            }
        }
        Command::All { out } => {
            for &exp in pipefill_scenario::REGISTRY {
                run_experiment(exp, &exp.grid(Scale::Full), &out)?;
            }
            println!("CSV written under {out}/ ({threads} threads)");
        }
        Command::RunScenario { path, sets } => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading scenario {path}: {e}"))?;
            let mut spec =
                scenario_toml::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            for (key, value) in &sets {
                spec.set(key, value)
                    .map_err(|e| format!("--set {key}={value}: {e}"))?;
            }
            spec.validate()?;
            if let Some(name) = spec.name.as_deref() {
                println!("scenario: {name} ({path})");
            }
            if let Some(exp_name) = spec.experiment.clone() {
                let out = "target/experiments".to_string();
                for exp in resolve(&exp_name)? {
                    // validate() already rejected unswept-axis overrides.
                    let grid = exp.grid(Scale::Full).with_overrides(
                        spec.iterations,
                        spec.seed,
                        spec.horizon_secs,
                        spec.seeds,
                    );
                    run_experiment(exp, &grid, &out)?;
                }
            } else {
                let run = spec.lower()?.run();
                print_metrics(run.metrics());
                if let Some(detail) = run.as_fleet() {
                    println!();
                    print_fleet_jobs(detail);
                    println!("failures:           {}", detail.failures);
                    println!(
                        "cross-job resumes:  {} (peak queue depth {})",
                        detail.cross_job_dispatches, detail.peak_queue_depth
                    );
                }
            }
        }
        Command::Fleet {
            jobs,
            gpus,
            iterations,
            seed,
            mtbf_secs,
            policy,
            schedule,
            fast_forward,
        } => {
            let spec = ScenarioSpec::run(BackendKind::Fleet)
                .with_jobs(jobs)
                .with_gpus(gpus)
                .with_iterations(iterations)
                .with_seed(seed)
                .with_mtbf_secs(mtbf_secs)
                .with_policy(policy)
                .with_schedule(schedule)
                .with_fast_forward(fast_forward);
            let run = spec.lower()?.run();
            let metrics = run.metrics();
            let detail = run.as_fleet().expect("fleet scenario yields fleet detail");
            println!(
                "fleet of {jobs} jobs over {} GPUs ({} simulated devices, \
                 {iterations} iterations each, {schedule} main jobs, \
                 {policy} global queue, {threads} threads):\n",
                detail.total_gpus, detail.num_devices
            );
            print_fleet_jobs(detail);
            println!();
            print_metrics(metrics);
            println!("failures:           {}", detail.failures);
            println!(
                "cross-job resumes:  {} (peak queue depth {})",
                detail.cross_job_dispatches, detail.peak_queue_depth
            );
        }
        Command::Sim {
            backend,
            seed,
            iterations,
            horizon_secs,
            load,
            fill_fraction,
            mtbf_secs,
            checkpoint_secs,
            schedule,
            fast_forward,
        } => {
            // Only the backend's own knobs are set on the spec: the
            // parser already rejected inapplicable flags, and the spec's
            // validator enforces the same table.
            let base = ScenarioSpec::run(backend)
                .with_schedule(schedule)
                .with_seed(seed);
            let spec = match backend {
                BackendKind::Coarse => base.with_horizon_secs(horizon_secs).with_load(load),
                BackendKind::Physical => base
                    .with_iterations(iterations)
                    .with_fill_fraction(fill_fraction)
                    .with_fast_forward(fast_forward),
                BackendKind::Fault => base
                    .with_iterations(iterations)
                    .with_fill_fraction(fill_fraction)
                    .with_mtbf_secs(mtbf_secs)
                    .with_checkpoint_secs(checkpoint_secs)
                    .with_fast_forward(fast_forward),
                // The parser routes the fleet backend to its own
                // subcommand (it simulates many main jobs, not one).
                BackendKind::Fleet => unreachable!("rejected by the argument parser"),
            };
            print_metrics(spec.lower()?.run().metrics());
        }
        Command::Timeline {
            schedule,
            stages,
            microbatches,
            width,
        } => {
            // Representative per-microbatch stage times (the 40B job's
            // calibration: backward = 2× forward).
            let tl = EngineConfig::uniform(
                schedule,
                stages,
                microbatches,
                SimDuration::from_millis(43),
                SimDuration::from_millis(86),
            )
            .run();
            println!(
                "{schedule} with {stages} stages × {microbatches} microbatches \
                 (bubble ratio {:.1}%, fillable {:.1}%):\n",
                100.0 * tl.bubble_ratio(),
                100.0 * tl.fillable_ratio()
            );
            println!("{}", render_timeline(&tl, width));
        }
        Command::VerifySchedule {
            target,
            stages,
            microbatches,
            memory_limit,
            json,
        } => {
            let (label, set) = match &target {
                VerifyTarget::Kind(kind) => (
                    kind.to_string(),
                    StreamSet::from_schedule(*kind, stages, microbatches),
                ),
                VerifyTarget::File(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("reading stream file {path}: {e}"))?;
                    let set =
                        StreamSet::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                    (path.clone(), set)
                }
            };
            // The 40B calibration the timeline command renders with:
            // backward = 2× forward.
            let mut cfg =
                VerifyConfig::new(SimDuration::from_millis(43), SimDuration::from_millis(86));
            if let VerifyTarget::Kind(kind) = target {
                cfg = cfg.with_schedule(kind);
            }
            if let Some(limit) = memory_limit {
                cfg = cfg.with_memory_limit(limit);
            }
            let verdict = verify(&set, &cfg);
            if json {
                print!("{}", certificate::verdict_json(&label, &set, &verdict));
            } else {
                print_verdict(&label, &set, &verdict);
            }
            return Ok(if verdict.certified() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            });
        }
        Command::CertifySchedules { write, out } => {
            let report = certificate::certify_grid();
            if write {
                std::fs::write(&out, &report.json).map_err(|e| format!("writing {out}: {e}"))?;
                println!("certificate grid written to {out}");
            } else {
                let pinned = std::fs::read_to_string(&out).map_err(|e| {
                    format!("reading pinned report {out}: {e} (run --mode write to create it)")
                })?;
                if pinned != report.json {
                    eprintln!(
                        "certificate drift: {out} does not match the regenerated grid \
                         (run `certify-schedules --mode write` and review the diff)"
                    );
                    return Ok(ExitCode::from(1));
                }
                println!("certificate grid matches {out} byte-for-byte");
            }
            if !report.all_certified {
                eprintln!("certificate grid contains uncertified entries");
                return Ok(ExitCode::from(1));
            }
            return Ok(ExitCode::SUCCESS);
        }
        Command::Plan { model, kind, stage } => {
            let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
            let timeline = main.engine_timeline();
            let Some(stage_tl) = timeline.stages.get(stage) else {
                return Err(format!(
                    "stage {stage} out of range (0..{})",
                    timeline.stages.len()
                ));
            };
            let slots: Vec<_> = stage_tl
                .fillable_windows()
                .iter()
                .map(|w| (w.duration, w.free_memory))
                .collect();
            println!("bubbles on stage {stage} (one per main-job iteration):");
            for (i, w) in stage_tl.fillable_windows().iter().enumerate() {
                println!(
                    "  slot {i}: {} ({}), free {}",
                    w.duration, w.kind, w.free_memory
                );
            }
            let job = FillJobSpec::new(0, model, kind, 1_000_000);
            let plan =
                plan_best(&job, &slots, &main.device, &ExecutorConfig::default()).map_err(|e| {
                    format!("no feasible plan for {model} {kind} on stage {stage}: {e}")
                })?;
            println!("\nchosen configuration: {}", plan.config);
            println!(
                "pass: {} partitions, {} fill iterations, {} samples, spans {} main iterations",
                plan.partitions.len(),
                plan.iterations_per_pass,
                plan.samples_per_pass,
                plan.main_iterations_per_pass
            );
            for (i, p) in plan.partitions.iter().enumerate() {
                println!(
                    "  partition {i:>2} → slot {} | {:>3} nodes | {:>10} | peak {}",
                    p.bubble_index,
                    p.node_count,
                    p.duration.to_string(),
                    p.memory
                );
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// The human-readable verdict report for `verify-schedule`.
fn print_verdict(label: &str, set: &StreamSet, verdict: &Verdict) {
    println!(
        "schedcheck: {label} — {} stages × {} microbatches{}",
        set.stages(),
        set.microbatches,
        if set.chunks > 1 {
            format!(" × {} chunks", set.chunks)
        } else {
            String::new()
        }
    );
    if let Some(stats) = &verdict.stats {
        println!("  instructions:      {}", stats.instructions);
        println!("  dependency edges:  {}", stats.dependency_edges);
        let peaks: Vec<String> = stats.memory_peaks.iter().map(u64::to_string).collect();
        println!("  memory peaks:      [{}] microbatches", peaks.join(", "));
        println!("  steady period:     {}", stats.period);
        println!(
            "  bubble fraction:   {:.4} (static longest path)",
            stats.bubble_fraction_static
        );
        if let Some(cf) = stats.closed_form {
            println!(
                "  closed form:       {:.4} ({}, {})",
                cf.expected,
                cf.relation.as_str(),
                if cf.holds { "holds" } else { "VIOLATED" }
            );
        }
    }
    if verdict.certified() {
        println!("  verdict:           CERTIFIED");
    } else {
        println!("  verdict:           REJECTED");
        for finding in &verdict.findings {
            println!("    {finding}");
        }
    }
}

fn print_fleet_jobs(detail: &FleetSimResult) {
    println!(
        "{:>4} {:>6} {:>7} {:>9} {:>6} {:>11} {:>11} {:>9} {:>6} {:>6}",
        "job",
        "GPUs",
        "stages",
        "device",
        "fill%",
        "fill TFLOPS",
        "main TFLOPS",
        "slowdown",
        "fills",
        "evict"
    );
    for j in &detail.jobs {
        println!(
            "{:>4} {:>6} {:>7} {:>9} {:>5.0}% {:>11.2} {:>11.2} {:>8.2}% {:>6} {:>6}",
            j.job,
            j.gpus,
            j.stages,
            j.device,
            100.0 * j.fill_fraction,
            j.recovered_tflops_per_gpu,
            j.main_tflops_per_gpu,
            100.0 * j.main_slowdown,
            j.fill_jobs_completed,
            j.evictions,
        );
    }
}

fn print_metrics(m: &BackendMetrics) {
    println!("backend:            {}", m.kind);
    println!("devices:            {}", m.num_devices);
    println!("elapsed:            {}", m.elapsed);
    println!("events dispatched:  {}", m.events_dispatched);
    println!("bubble ratio:       {:.1}%", 100.0 * m.bubble_ratio);
    println!("jobs completed:     {}", m.jobs_completed);
    println!("fill FLOPs:         {:.3e}", m.fill_flops);
    println!(
        "recovered TFLOPS:   {:.2} per GPU",
        m.recovered_tflops_per_gpu
    );
    println!("main-job TFLOPS:    {:.2} per GPU", m.main_tflops_per_gpu);
    println!("main-job slowdown:  {:.2}%", 100.0 * m.main_slowdown);
    println!(
        "total TFLOPS:       {:.2} per GPU",
        m.total_tflops_per_gpu()
    );
    if matches!(m.kind, BackendKind::Fault | BackendKind::Fleet) {
        println!("evictions:          {}", m.evictions);
        println!("lost fill FLOPs:    {:.3e}", m.lost_fill_flops);
        println!("goodput fraction:   {:.1}%", 100.0 * m.goodput_fraction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_reaches_single_and_multi_spellings() {
        assert_eq!(resolve("table1").unwrap().len(), 1);
        assert_eq!(resolve("fig8").unwrap().len(), 2);
        assert_eq!(resolve("fig10").unwrap().len(), 2);
        let err = resolve("warp-speed").err().expect("unknown name errors");
        assert!(err.contains("exp --list"), "{err}");
    }

    #[test]
    fn unswept_axis_overrides_are_rejected_not_ignored() {
        let table1 = resolve("table1").unwrap();
        let err = reject_unswept_axes("table1", &table1, Some(50), None, None, None).unwrap_err();
        assert!(err.contains("--iterations does not apply"), "{err}");
        let err = reject_unswept_axes(
            "fig10",
            &resolve("fig10").unwrap(),
            None,
            Some(3),
            None,
            None,
        )
        .unwrap_err();
        assert!(err.contains("--seed does not apply"), "{err}");
        // Swept axes pass.
        let fig9 = resolve("fig9_policies").unwrap();
        reject_unswept_axes("fig9_policies", &fig9, None, Some(3), Some(60), None).unwrap();
        let agree = resolve("fig6_agreement").unwrap();
        reject_unswept_axes("fig6_agreement", &agree, Some(10), None, None, Some(2)).unwrap();
    }
}
