//! Command implementations: thin glue over the experiment drivers.

use pipefill_core::experiments::*;
use pipefill_core::{
    BackendConfig, BackendKind, BackendMetrics, ClusterSimConfig, FaultSimConfig, FleetSimConfig,
    FleetSimResult, PhysicalSimConfig,
};
use pipefill_executor::{plan_best, ExecutorConfig, FillJobSpec};
use pipefill_pipeline::{render_timeline, EngineConfig, MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;
use pipefill_trace::{FleetWorkloadConfig, TraceConfig};

use crate::args::{Command, Invocation, USAGE};

/// Executes a parsed invocation.
///
/// # Errors
///
/// Returns a message for I/O failures or infeasible plan requests.
pub fn run(invocation: Invocation) -> Result<(), String> {
    let threads = sweep::set_threads(invocation.threads);
    let exec = ExecutorConfig::default();
    match invocation.command {
        Command::Help => println!("{USAGE}"),
        Command::Table1 => table1::print_table1(&table1()),
        Command::Fig4 => scaling::print_scaling(&fig4_scaling()),
        Command::Fig5 { iterations, seed } => {
            fill_fraction::print_fill_fraction(&fig5_fill_fraction(iterations, seed));
        }
        Command::Fig6 { iterations, seed } => {
            validation::print_validation(&fig6_validation(iterations, seed));
        }
        Command::Fig7 => characterization::print_characterization(&fig7_characterization(
            &characterization::fig7_default_main(),
            &exec,
        )),
        Command::Fig8 => {
            schedules::print_schedules(&fig8_schedules(&exec));
            println!("\nschedule × depth bubble-geometry sweep:");
            schedules::print_depth_sweep(&schedule_depth_sweep());
        }
        Command::Fig9 { horizon_secs, seed } => {
            policies::print_policies(&fig9_policies(seed, SimDuration::from_secs(horizon_secs)));
        }
        Command::Fig10 => {
            sensitivity::print_sensitivity(&fig10a_bubble_size(&exec), &fig10b_free_memory(&exec));
        }
        Command::WhatIf => whatif::print_whatif(&whatif_offload_bandwidth()),
        Command::Faults { iterations, seed } => {
            println!(
                "fault-tolerance map on the 5B cluster \
                 ({iterations} iterations per grid point, {threads} threads):"
            );
            faults::print_faults(&whatif_faults(iterations, seed));
        }
        Command::Fleet {
            jobs,
            gpus,
            iterations,
            seed,
            mtbf_secs,
            policy,
            schedule,
        } => {
            let mut workload = FleetWorkloadConfig::new(jobs, gpus, seed);
            workload.iterations = iterations;
            let mtbf = if mtbf_secs.is_finite() {
                SimDuration::from_secs_f64(mtbf_secs)
            } else {
                SimDuration::MAX
            };
            let config = FleetSimConfig::from_workload_scheduled(&workload, schedule)
                .with_mtbf(mtbf)
                .with_policy(policy);
            let run = BackendConfig::Fleet(config).run();
            let metrics = run.metrics;
            let detail = run.fleet().expect("fleet config yields fleet detail");
            println!(
                "fleet of {jobs} jobs over {} GPUs ({} simulated devices, \
                 {iterations} iterations each, {schedule} main jobs, \
                 {policy} global queue, {threads} threads):\n",
                detail.total_gpus, detail.num_devices
            );
            print_fleet_jobs(&detail);
            println!();
            print_metrics(&metrics);
            println!("failures:           {}", detail.failures);
            println!(
                "cross-job resumes:  {} (peak queue depth {})",
                detail.cross_job_dispatches, detail.peak_queue_depth
            );
        }
        Command::All { out } => run_all(&out)?,
        Command::Sim {
            backend,
            seed,
            iterations,
            horizon_secs,
            load,
            fill_fraction,
            mtbf_secs,
            checkpoint_secs,
            schedule,
        } => {
            let main = MainJobSpec::physical_5b(8, schedule);
            let config = match backend {
                BackendKind::Coarse => {
                    let mut trace = TraceConfig::physical(seed).with_load(load);
                    trace.horizon = SimDuration::from_secs(horizon_secs);
                    BackendConfig::Coarse(ClusterSimConfig::new(main, trace))
                }
                BackendKind::Physical => {
                    let mut cfg = PhysicalSimConfig::new(main).with_fill_fraction(fill_fraction);
                    cfg.iterations = iterations;
                    cfg.seed = seed;
                    BackendConfig::Physical(cfg)
                }
                BackendKind::Fault => {
                    let mtbf = if mtbf_secs.is_finite() {
                        SimDuration::from_secs_f64(mtbf_secs)
                    } else {
                        SimDuration::MAX
                    };
                    let mut cfg = FaultSimConfig::new(main)
                        .with_fill_fraction(fill_fraction)
                        .with_mtbf(mtbf)
                        .with_checkpoint_cost(SimDuration::from_secs_f64(checkpoint_secs));
                    cfg.iterations = iterations;
                    cfg.seed = seed;
                    BackendConfig::Fault(cfg)
                }
                // The parser routes the fleet backend to its own
                // subcommand (it simulates many main jobs, not one).
                BackendKind::Fleet => unreachable!("rejected by the argument parser"),
            };
            print_metrics(&config.run().metrics);
        }
        Command::Agree { seeds, iterations } => {
            let seeds: Vec<u64> = (1..=seeds).collect();
            let rows = fig6_agreement(&seeds, iterations);
            println!(
                "coarse vs physical backend agreement on the 5B cluster \
                 ({} seeds × {iterations} iterations, {threads} threads):",
                seeds.len()
            );
            validation::print_agreement(&rows);
            let max_err = rows.iter().map(|r| r.relative_error).fold(0.0, f64::max);
            println!(
                "maximum disagreement: {:.2}% (paper Fig. 6: <2%; tolerance {:.0}%)",
                100.0 * max_err,
                100.0 * validation::AGREEMENT_TOLERANCE
            );
        }
        Command::Timeline {
            schedule,
            stages,
            microbatches,
            width,
        } => {
            // Representative per-microbatch stage times (the 40B job's
            // calibration: backward = 2× forward).
            let tl = EngineConfig::uniform(
                schedule,
                stages,
                microbatches,
                SimDuration::from_millis(43),
                SimDuration::from_millis(86),
            )
            .run();
            println!(
                "{schedule} with {stages} stages × {microbatches} microbatches \
                 (bubble ratio {:.1}%, fillable {:.1}%):\n",
                100.0 * tl.bubble_ratio(),
                100.0 * tl.fillable_ratio()
            );
            println!("{}", render_timeline(&tl, width));
        }
        Command::Plan { model, kind, stage } => {
            let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
            let timeline = main.engine_timeline();
            let Some(stage_tl) = timeline.stages.get(stage) else {
                return Err(format!(
                    "stage {stage} out of range (0..{})",
                    timeline.stages.len()
                ));
            };
            let slots: Vec<_> = stage_tl
                .fillable_windows()
                .iter()
                .map(|w| (w.duration, w.free_memory))
                .collect();
            println!("bubbles on stage {stage} (one per main-job iteration):");
            for (i, w) in stage_tl.fillable_windows().iter().enumerate() {
                println!(
                    "  slot {i}: {} ({}), free {}",
                    w.duration, w.kind, w.free_memory
                );
            }
            let job = FillJobSpec::new(0, model, kind, 1_000_000);
            let plan =
                plan_best(&job, &slots, &main.device, &ExecutorConfig::default()).map_err(|e| {
                    format!("no feasible plan for {model} {kind} on stage {stage}: {e}")
                })?;
            println!("\nchosen configuration: {}", plan.config);
            println!(
                "pass: {} partitions, {} fill iterations, {} samples, spans {} main iterations",
                plan.partitions.len(),
                plan.iterations_per_pass,
                plan.samples_per_pass,
                plan.main_iterations_per_pass
            );
            for (i, p) in plan.partitions.iter().enumerate() {
                println!(
                    "  partition {i:>2} → slot {} | {:>3} nodes | {:>10} | peak {}",
                    p.bubble_index,
                    p.node_count,
                    p.duration.to_string(),
                    p.memory
                );
            }
        }
    }
    Ok(())
}

fn print_fleet_jobs(detail: &FleetSimResult) {
    println!(
        "{:>4} {:>6} {:>7} {:>9} {:>6} {:>11} {:>11} {:>9} {:>6} {:>6}",
        "job",
        "GPUs",
        "stages",
        "device",
        "fill%",
        "fill TFLOPS",
        "main TFLOPS",
        "slowdown",
        "fills",
        "evict"
    );
    for j in &detail.jobs {
        println!(
            "{:>4} {:>6} {:>7} {:>9} {:>5.0}% {:>11.2} {:>11.2} {:>8.2}% {:>6} {:>6}",
            j.job,
            j.gpus,
            j.stages,
            j.device,
            100.0 * j.fill_fraction,
            j.recovered_tflops_per_gpu,
            j.main_tflops_per_gpu,
            100.0 * j.main_slowdown,
            j.fill_jobs_completed,
            j.evictions,
        );
    }
}

fn print_metrics(m: &BackendMetrics) {
    println!("backend:            {}", m.kind);
    println!("devices:            {}", m.num_devices);
    println!("elapsed:            {}", m.elapsed);
    println!("events dispatched:  {}", m.events_dispatched);
    println!("bubble ratio:       {:.1}%", 100.0 * m.bubble_ratio);
    println!("jobs completed:     {}", m.jobs_completed);
    println!("fill FLOPs:         {:.3e}", m.fill_flops);
    println!(
        "recovered TFLOPS:   {:.2} per GPU",
        m.recovered_tflops_per_gpu
    );
    println!("main-job TFLOPS:    {:.2} per GPU", m.main_tflops_per_gpu);
    println!("main-job slowdown:  {:.2}%", 100.0 * m.main_slowdown);
    println!(
        "total TFLOPS:       {:.2} per GPU",
        m.total_tflops_per_gpu()
    );
    if matches!(m.kind, BackendKind::Fault | BackendKind::Fleet) {
        println!("evictions:          {}", m.evictions);
        println!("lost fill FLOPs:    {:.3e}", m.lost_fill_flops);
        println!("goodput fraction:   {:.1}%", 100.0 * m.goodput_fraction);
    }
}

fn run_all(out: &str) -> Result<(), String> {
    let exec = ExecutorConfig::default();
    let io = |e: std::io::Error| format!("writing CSV under {out}: {e}");
    std::fs::create_dir_all(out).map_err(io)?;

    println!("== Table 1 ==");
    let t1 = table1();
    table1::print_table1(&t1);
    table1::save_table1(&t1, &format!("{out}/table1.csv")).map_err(io)?;

    println!("\n== Figs. 1 & 4 ==");
    let s = fig4_scaling();
    scaling::print_scaling(&s);
    scaling::save_scaling(&s, &format!("{out}/fig4_scaling.csv")).map_err(io)?;

    println!("\n== Fig. 5 ==");
    let f5 = fig5_fill_fraction(300, 7);
    fill_fraction::print_fill_fraction(&f5);
    fill_fraction::save_fill_fraction(&f5, &format!("{out}/fig5_fill_fraction.csv")).map_err(io)?;

    println!("\n== Fig. 6 ==");
    let f6 = fig6_validation(300, 7);
    validation::print_validation(&f6);
    validation::save_validation(&f6, &format!("{out}/fig6_validation.csv")).map_err(io)?;

    println!("\n== Fig. 6 (cross-backend agreement) ==");
    let agreement = fig6_agreement(&[1, 2, 3], 300);
    validation::print_agreement(&agreement);
    validation::save_agreement(&agreement, &format!("{out}/fig6_agreement.csv")).map_err(io)?;

    println!("\n== Fig. 7 ==");
    let f7 = fig7_characterization(&characterization::fig7_default_main(), &exec);
    characterization::print_characterization(&f7);
    characterization::save_characterization(&f7, &format!("{out}/fig7_characterization.csv"))
        .map_err(io)?;

    println!("\n== Fig. 8 ==");
    let f8 = fig8_schedules(&exec);
    schedules::print_schedules(&f8);
    schedules::save_schedules(&f8, &format!("{out}/fig8_schedules.csv")).map_err(io)?;

    println!("\n== Schedule × depth sweep ==");
    let sd = schedule_depth_sweep();
    schedules::print_depth_sweep(&sd);
    schedules::save_depth_sweep(&sd, &format!("{out}/schedule_depth.csv")).map_err(io)?;

    println!("\n== Fig. 9 ==");
    let f9 = fig9_policies(11, SimDuration::from_secs(3600));
    policies::print_policies(&f9);
    policies::save_policies(&f9, &format!("{out}/fig9_policies.csv")).map_err(io)?;

    println!("\n== Fig. 10 ==");
    let f10a = fig10a_bubble_size(&exec);
    let f10b = fig10b_free_memory(&exec);
    sensitivity::print_sensitivity(&f10a, &f10b);
    sensitivity::save_sensitivity(
        &f10a,
        &f10b,
        &format!("{out}/fig10a_bubble_size.csv"),
        &format!("{out}/fig10b_free_memory.csv"),
    )
    .map_err(io)?;

    println!("\n== What-if: offload bandwidth ==");
    let wi = whatif_offload_bandwidth();
    whatif::print_whatif(&wi);
    whatif::save_whatif(&wi, &format!("{out}/whatif_offload_bandwidth.csv")).map_err(io)?;

    println!("\n== What-if: fault tolerance ==");
    let ft = whatif_faults(200, 7);
    faults::print_faults(&ft);
    faults::save_faults(&ft, &format!("{out}/whatif_faults.csv")).map_err(io)?;

    println!("\n== Fleet-size scaling ==");
    let fs = fleet_scale(150, 7);
    fleet::print_fleet(&fs);
    fleet::save_fleet(&fs, &format!("{out}/fleet_scale.csv")).map_err(io)?;

    println!("\nCSV written under {out}/");
    Ok(())
}
