//! Command implementations: thin glue over the experiment drivers.

use pipefill_core::experiments::*;
use pipefill_executor::{plan_best, ExecutorConfig, FillJobSpec};
use pipefill_pipeline::{render_timeline, EngineConfig, MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;

use crate::args::{Command, USAGE};

/// Executes a parsed command.
///
/// # Errors
///
/// Returns a message for I/O failures or infeasible plan requests.
pub fn run(command: Command) -> Result<(), String> {
    let exec = ExecutorConfig::default();
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Table1 => table1::print_table1(&table1()),
        Command::Fig4 => scaling::print_scaling(&fig4_scaling()),
        Command::Fig5 { iterations, seed } => {
            fill_fraction::print_fill_fraction(&fig5_fill_fraction(iterations, seed));
        }
        Command::Fig6 { iterations, seed } => {
            validation::print_validation(&fig6_validation(iterations, seed));
        }
        Command::Fig7 => characterization::print_characterization(&fig7_characterization(
            &characterization::fig7_default_main(),
            &exec,
        )),
        Command::Fig8 => schedules::print_schedules(&fig8_schedules(&exec)),
        Command::Fig9 { horizon_secs, seed } => {
            policies::print_policies(&fig9_policies(seed, SimDuration::from_secs(horizon_secs)));
        }
        Command::Fig10 => {
            sensitivity::print_sensitivity(&fig10a_bubble_size(&exec), &fig10b_free_memory(&exec));
        }
        Command::WhatIf => whatif::print_whatif(&whatif_offload_bandwidth()),
        Command::All { out } => run_all(&out)?,
        Command::Timeline {
            schedule,
            stages,
            microbatches,
            width,
        } => {
            // Representative per-microbatch stage times (the 40B job's
            // calibration: backward = 2× forward).
            let tl = EngineConfig::uniform(
                schedule,
                stages,
                microbatches,
                SimDuration::from_millis(43),
                SimDuration::from_millis(86),
            )
            .run();
            println!(
                "{schedule} with {stages} stages × {microbatches} microbatches \
                 (bubble ratio {:.1}%, fillable {:.1}%):\n",
                100.0 * tl.bubble_ratio(),
                100.0 * tl.fillable_ratio()
            );
            println!("{}", render_timeline(&tl, width));
        }
        Command::Plan { model, kind, stage } => {
            let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
            let timeline = main.engine_timeline();
            let Some(stage_tl) = timeline.stages.get(stage) else {
                return Err(format!(
                    "stage {stage} out of range (0..{})",
                    timeline.stages.len()
                ));
            };
            let slots: Vec<_> = stage_tl
                .fillable_windows()
                .iter()
                .map(|w| (w.duration, w.free_memory))
                .collect();
            println!("bubbles on stage {stage} (one per main-job iteration):");
            for (i, w) in stage_tl.fillable_windows().iter().enumerate() {
                println!("  slot {i}: {} ({}), free {}", w.duration, w.kind, w.free_memory);
            }
            let job = FillJobSpec::new(0, model, kind, 1_000_000);
            let plan = plan_best(&job, &slots, &main.device, &ExecutorConfig::default())
                .map_err(|e| format!("no feasible plan for {model} {kind} on stage {stage}: {e}"))?;
            println!("\nchosen configuration: {}", plan.config);
            println!(
                "pass: {} partitions, {} fill iterations, {} samples, spans {} main iterations",
                plan.partitions.len(),
                plan.iterations_per_pass,
                plan.samples_per_pass,
                plan.main_iterations_per_pass
            );
            for (i, p) in plan.partitions.iter().enumerate() {
                println!(
                    "  partition {i:>2} → slot {} | {:>3} nodes | {:>10} | peak {}",
                    p.bubble_index,
                    p.node_count,
                    p.duration.to_string(),
                    p.memory
                );
            }
        }
    }
    Ok(())
}

fn run_all(out: &str) -> Result<(), String> {
    let exec = ExecutorConfig::default();
    let io = |e: std::io::Error| format!("writing CSV under {out}: {e}");
    std::fs::create_dir_all(out).map_err(io)?;

    println!("== Table 1 ==");
    let t1 = table1();
    table1::print_table1(&t1);
    table1::save_table1(&t1, &format!("{out}/table1.csv")).map_err(io)?;

    println!("\n== Figs. 1 & 4 ==");
    let s = fig4_scaling();
    scaling::print_scaling(&s);
    scaling::save_scaling(&s, &format!("{out}/fig4_scaling.csv")).map_err(io)?;

    println!("\n== Fig. 5 ==");
    let f5 = fig5_fill_fraction(300, 7);
    fill_fraction::print_fill_fraction(&f5);
    fill_fraction::save_fill_fraction(&f5, &format!("{out}/fig5_fill_fraction.csv")).map_err(io)?;

    println!("\n== Fig. 6 ==");
    let f6 = fig6_validation(300, 7);
    validation::print_validation(&f6);
    validation::save_validation(&f6, &format!("{out}/fig6_validation.csv")).map_err(io)?;

    println!("\n== Fig. 7 ==");
    let f7 = fig7_characterization(&characterization::fig7_default_main(), &exec);
    characterization::print_characterization(&f7);
    characterization::save_characterization(&f7, &format!("{out}/fig7_characterization.csv"))
        .map_err(io)?;

    println!("\n== Fig. 8 ==");
    let f8 = fig8_schedules(&exec);
    schedules::print_schedules(&f8);
    schedules::save_schedules(&f8, &format!("{out}/fig8_schedules.csv")).map_err(io)?;

    println!("\n== Fig. 9 ==");
    let f9 = fig9_policies(11, SimDuration::from_secs(3600));
    policies::print_policies(&f9);
    policies::save_policies(&f9, &format!("{out}/fig9_policies.csv")).map_err(io)?;

    println!("\n== Fig. 10 ==");
    let f10a = fig10a_bubble_size(&exec);
    let f10b = fig10b_free_memory(&exec);
    sensitivity::print_sensitivity(&f10a, &f10b);
    sensitivity::save_sensitivity(
        &f10a,
        &f10b,
        &format!("{out}/fig10a_bubble_size.csv"),
        &format!("{out}/fig10b_free_memory.csv"),
    )
    .map_err(io)?;

    println!("\n== What-if: offload bandwidth ==");
    let wi = whatif_offload_bandwidth();
    whatif::print_whatif(&wi);
    whatif::save_whatif(&wi, &format!("{out}/whatif_offload_bandwidth.csv")).map_err(io)?;

    println!("\nCSV written under {out}/");
    Ok(())
}
