//! `pipefill-cli` — run the PipeFill reproduction from the command line.
//!
//! ```text
//! pipefill-cli <command> [options]
//!
//! commands:
//!   table1                         fill-job category table
//!   fig4                           scaling study (Figs. 1 & 4)
//!   fig5   [--iterations N]        fill-fraction sweep (physical sim)
//!   fig6   [--iterations N]        simulator validation
//!   fig7                           fill-job characterization
//!   fig8                           GPipe vs 1F1B
//!   fig9   [--horizon-secs N]      scheduling policies
//!   fig10                          bubble-size / free-memory sensitivity
//!   whatif                         newer-hardware offload-bandwidth sweep
//!   faults [--iterations N]        MTBF x checkpoint-cost fault-tolerance map
//!   fleet  [--jobs N] [--gpus N]   multi-job fleet on one global fill queue
//!   all    [--out DIR]             everything + CSV output
//!   sim    [--backend coarse|physical|fault] [...]
//!                                  one simulation at a chosen fidelity
//!   agree  [--seeds N] [--iterations N]
//!                                  coarse-vs-physical agreement (Fig. 6)
//!   timeline [--schedule S] [--stages P] [--microbatches M] [--width W]
//!                                  render a pipeline schedule as ASCII
//!   plan   [--model NAME] [--kind training|inference] [--stage S]
//!                                  show the Executor's plan for one job
//!
//! Every command accepts `--threads N` to bound the parallel sweep pool.
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
