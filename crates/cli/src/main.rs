//! `pipefill-cli` — run the PipeFill reproduction from the command line.
//!
//! ```text
//! pipefill-cli <command> [options]
//!
//! the uniform entry points:
//!   run <scenario.toml> [--set key=value ...]
//!                                  run a declarative scenario file
//!                                  (see examples/scenarios/)
//!   exp <name> [--iterations N] [--seed S] [--horizon-secs N] [--seeds N]
//!                                  run one registered experiment
//!   exp --list                     list the experiment registry
//!   all    [--out DIR]             every experiment + CSV output
//!
//! legacy aliases over `exp` (same flags as before):
//!   table1, fig4, fig5, fig6, fig7, fig8, fig9, fig10, whatif, faults,
//!   agree
//!
//! single simulations and inspection:
//!   sim    [--backend coarse|physical|fault] [...]
//!                                  one simulation at a chosen fidelity
//!   fleet  [--jobs N] [--gpus N]   multi-job fleet on one global fill queue
//!   timeline [--schedule S] [--stages P] [--microbatches M] [--width W]
//!                                  render a pipeline schedule as ASCII
//!   plan   [--model NAME] [--kind training|inference] [--stage S]
//!                                  show the Executor's plan for one job
//!   verify-schedule <schedule|stream.toml> [--format human|json]
//!                                  statically verify an instruction stream
//!                                  (exit 0 certified, 1 rejected, 2 usage)
//!   certify-schedules [--mode check|write] [--out FILE]
//!                                  re-verify the pinned certificate grid
//!
//! Every command accepts `--threads N` to bound the parallel sweep pool.
//! ```
#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

/// Usage and I/O errors exit with their own status so scripts (and the
/// CI certificate job) can tell "the verdict was a rejection" (1,
/// reported by `commands::run` itself) from "the invocation never ran"
/// (2).
const USAGE_ERROR: u8 = 2;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(USAGE_ERROR);
        }
    };
    match commands::run(parsed) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(USAGE_ERROR)
        }
    }
}
