//! Device, link, node and cluster specifications plus analytical
//! transfer-time models.

use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

use crate::bytes::Bytes;

/// An accelerator ("GPU" in the paper's terminology, which it uses for
/// GPUs, TPUs and Trainium alike).
///
/// # Example
///
/// ```
/// use pipefill_device::DeviceSpec;
///
/// let v100 = DeviceSpec::v100();
/// assert_eq!(v100.peak_tflops, 125.0);
/// assert_eq!(v100.hbm.as_gib(), 16.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"V100"`.
    pub name: String,
    /// Peak dense half-precision throughput in TFLOPS.
    pub peak_tflops: f64,
    /// On-device high-bandwidth memory capacity.
    pub hbm: Bytes,
    /// HBM bandwidth in bytes/second (bounds memory-bound layers).
    pub hbm_bandwidth: f64,
    /// Host↔device link bandwidth in bytes/second (PCIe for V100); bounds
    /// CPU-offloading techniques.
    pub host_link_bandwidth: f64,
    /// NVMe read bandwidth in bytes/second; bounds NVMe-offloading
    /// techniques (ZeRO-Infinity's second tier).
    pub nvme_bandwidth: f64,
}

impl DeviceSpec {
    /// NVIDIA Tesla V100 SXM2 16 GB — the paper's physical device: 125
    /// TFLOPS peak, 16 GB HBM2 at 900 GB/s, PCIe 3.0 x16 host link (~12
    /// GB/s effective).
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100".to_owned(),
            peak_tflops: 125.0,
            hbm: Bytes::from_gib(16),
            hbm_bandwidth: 900.0e9,
            host_link_bandwidth: 12.0e9,
            nvme_bandwidth: 3.2e9,
        }
    }

    /// NVIDIA A100 SXM 40 GB (312 TFLOPS bf16, 1.55 TB/s HBM, PCIe 4.0
    /// host link) — used in "newer hardware" what-if runs for the fill-job
    /// offloading-slowdown hypothesis in §6.2.
    pub fn a100_40g() -> Self {
        DeviceSpec {
            name: "A100-40G".to_owned(),
            peak_tflops: 312.0,
            hbm: Bytes::from_gib(40),
            hbm_bandwidth: 1555.0e9,
            host_link_bandwidth: 24.0e9,
            nvme_bandwidth: 6.5e9,
        }
    }

    /// NVIDIA H100 SXM 80 GB (989 TFLOPS bf16, 3.35 TB/s HBM3, PCIe 5.0
    /// host link) — the fast end of heterogeneous-cluster studies.
    pub fn h100() -> Self {
        DeviceSpec {
            name: "H100".to_owned(),
            peak_tflops: 989.0,
            hbm: Bytes::from_gib(80),
            hbm_bandwidth: 3350.0e9,
            host_link_bandwidth: 50.0e9,
            nvme_bandwidth: 12.0e9,
        }
    }

    /// AWS Trainium-like accelerator (the paper's footnote 1 includes
    /// Trainium in its "GPU" terminology).
    pub fn trainium() -> Self {
        DeviceSpec {
            name: "Trainium".to_owned(),
            peak_tflops: 190.0,
            hbm: Bytes::from_gib(32),
            hbm_bandwidth: 820.0e9,
            host_link_bandwidth: 16.0e9,
            nvme_bandwidth: 4.0e9,
        }
    }

    /// Peak throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_tflops * 1e12
    }

    /// Time to execute `flops` floating-point operations at `efficiency`
    /// (fraction of peak actually achieved, in `(0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]` or `flops` is negative.
    pub fn compute_time(&self, flops: f64, efficiency: f64) -> SimDuration {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        assert!(flops >= 0.0, "flops must be non-negative, got {flops}");
        SimDuration::from_secs_f64(flops / (self.peak_flops() * efficiency))
    }

    /// Time to move `bytes` across the host↔device link.
    pub fn host_transfer_time(&self, bytes: Bytes) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_f64() / self.host_link_bandwidth)
    }

    /// Returns a copy with HBM capacity replaced (free-memory sensitivity
    /// study, Fig. 10b).
    pub fn with_hbm(mut self, hbm: Bytes) -> Self {
        self.hbm = hbm;
        self
    }

    /// Compute-speed ratio against a baseline device: values above 1 mean
    /// this device is faster. Heterogeneous-cluster backends use it to
    /// stretch per-stage compute times and re-derive bubble geometry when
    /// the pipeline mixes GPU generations.
    ///
    /// # Panics
    ///
    /// Panics if either device has a non-positive peak throughput.
    pub fn relative_speed(&self, baseline: &DeviceSpec) -> f64 {
        assert!(
            self.peak_tflops > 0.0 && baseline.peak_tflops > 0.0,
            "relative_speed needs positive peak throughputs"
        );
        self.peak_tflops / baseline.peak_tflops
    }

    /// Returns a copy with the host link bandwidth replaced — the axis of
    /// the "newer hardware" what-if study (§6.2 hypothesizes that higher
    /// CPU↔GPU bandwidth shrinks the offloading slowdown).
    pub fn with_host_link_bandwidth(mut self, bandwidth: f64) -> Self {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "bandwidth must be positive, got {bandwidth}"
        );
        self.host_link_bandwidth = bandwidth;
        self
    }
}

/// A point-to-point interconnect: fixed latency plus bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way latency.
    pub latency_us: f64,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl LinkSpec {
    /// NVLink 2.0 hybrid cube-mesh as in `p3.16xlarge`: 300 GB/s
    /// aggregate, ~2 µs latency.
    pub fn nvlink2() -> Self {
        LinkSpec {
            latency_us: 2.0,
            bandwidth: 300.0e9,
        }
    }

    /// 25 Gbps Ethernet between `p3.16xlarge` nodes (~3.125 GB/s), ~20 µs
    /// latency.
    pub fn ethernet_25g() -> Self {
        LinkSpec {
            latency_us: 20.0,
            bandwidth: 3.125e9,
        }
    }

    /// Time to move `bytes` across this link.
    ///
    /// # Example
    ///
    /// ```
    /// use pipefill_device::{Bytes, LinkSpec};
    ///
    /// let t = LinkSpec::ethernet_25g().transfer_time(Bytes::from_mib(32));
    /// assert!(t.as_millis_f64() > 10.0); // 32 MiB over 3.125 GB/s ≈ 10.7 ms
    /// ```
    pub fn transfer_time(&self, bytes: Bytes) -> SimDuration {
        SimDuration::from_secs_f64(self.latency_us * 1e-6 + bytes.as_f64() / self.bandwidth)
    }
}

/// A compute node: identical accelerators joined by an intra-node link,
/// plus host (CPU) memory that offloading targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Accelerator model installed in this node.
    pub device: DeviceSpec,
    /// Accelerators per node.
    pub devices_per_node: usize,
    /// Intra-node accelerator interconnect.
    pub intra_link: LinkSpec,
    /// Host DRAM available as an offload target.
    pub host_memory: Bytes,
}

impl NodeSpec {
    /// AWS `p3.16xlarge`: 8× V100, NVLink 2.0, 488 GiB host DRAM.
    pub fn p3_16xlarge() -> Self {
        NodeSpec {
            device: DeviceSpec::v100(),
            devices_per_node: 8,
            intra_link: LinkSpec::nvlink2(),
            host_memory: Bytes::from_gib(488),
        }
    }
}

/// A homogeneous cluster: `num_nodes` copies of a node joined by an
/// inter-node link.
///
/// # Example
///
/// ```
/// use pipefill_device::ClusterSpec;
///
/// let cluster = ClusterSpec::p3_cluster(16);
/// assert_eq!(cluster.total_devices(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Node-to-node interconnect.
    pub inter_link: LinkSpec,
}

impl ClusterSpec {
    /// The paper's physical testbed shape: `num_nodes` × `p3.16xlarge`
    /// with 25 Gbps networking.
    pub fn p3_cluster(num_nodes: usize) -> Self {
        ClusterSpec {
            node: NodeSpec::p3_16xlarge(),
            num_nodes,
            inter_link: LinkSpec::ethernet_25g(),
        }
    }

    /// Total accelerators in the cluster.
    pub fn total_devices(&self) -> usize {
        self.num_nodes * self.node.devices_per_node
    }

    /// The device spec (all nodes are identical).
    pub fn device(&self) -> &DeviceSpec {
        &self.node.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_numbers() {
        let d = DeviceSpec::v100();
        assert_eq!(d.peak_tflops, 125.0);
        assert_eq!(d.hbm, Bytes::from_gib(16));
    }

    #[test]
    fn compute_time_scales_linearly() {
        let d = DeviceSpec::v100();
        // 60 TFLOPS effective = 0.48 of peak; 6e13 FLOPs should take 1 s.
        let t = d.compute_time(60.0e12, 0.48);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        let t2 = d.compute_time(120.0e12, 0.48);
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(d.compute_time(0.0, 0.5), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "efficiency must be in (0, 1]")]
    fn compute_time_rejects_bad_efficiency() {
        let _ = DeviceSpec::v100().compute_time(1.0e12, 0.0);
    }

    #[test]
    fn link_transfer_includes_latency() {
        let link = LinkSpec {
            latency_us: 100.0,
            bandwidth: 1.0e9,
        };
        let t = link.transfer_time(Bytes::from_mib(1));
        // 100 µs latency + ~1.05 ms wire time.
        assert!((t.as_millis_f64() - (0.1 + 1048576.0 / 1.0e9 * 1e3)).abs() < 1e-6);
        // Zero bytes still pay latency.
        let t0 = link.transfer_time(Bytes::ZERO);
        assert!((t0.as_millis_f64() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn nvlink_much_faster_than_ethernet() {
        let payload = Bytes::from_mib(64);
        let nv = LinkSpec::nvlink2().transfer_time(payload);
        let eth = LinkSpec::ethernet_25g().transfer_time(payload);
        assert!(eth.as_secs_f64() / nv.as_secs_f64() > 50.0);
    }

    #[test]
    fn cluster_counts_devices() {
        let c = ClusterSpec::p3_cluster(16);
        assert_eq!(c.total_devices(), 128);
        assert_eq!(c.device().name, "V100");
        let big = ClusterSpec::p3_cluster(1024);
        assert_eq!(big.total_devices(), 8192); // the paper's 8K-GPU point
    }

    #[test]
    fn host_transfer_uses_pcie() {
        let d = DeviceSpec::v100();
        // 12 GB over 12 GB/s = 1 s.
        let t = d.host_transfer_time(Bytes::new(12_000_000_000));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_speed_is_a_peak_ratio() {
        let v100 = DeviceSpec::v100();
        let a100 = DeviceSpec::a100_40g();
        assert!((a100.relative_speed(&v100) - 312.0 / 125.0).abs() < 1e-12);
        assert!((v100.relative_speed(&a100) - 125.0 / 312.0).abs() < 1e-12);
        assert_eq!(v100.relative_speed(&v100), 1.0);
        // H100 is the fast end of the ladder.
        assert!(DeviceSpec::h100().relative_speed(&v100) > 7.0);
    }

    #[test]
    fn with_hbm_replaces_capacity_only() {
        let d = DeviceSpec::v100().with_hbm(Bytes::from_gib(32));
        assert_eq!(d.hbm, Bytes::from_gib(32));
        assert_eq!(d.peak_tflops, 125.0);
    }
}
