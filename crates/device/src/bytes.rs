//! A byte-count newtype so memory sizes cannot be confused with FLOP
//! counts or sample counts in the cost-model arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A number of bytes.
///
/// # Example
///
/// ```
/// use pipefill_device::Bytes;
///
/// let hbm = Bytes::from_gib(16);
/// let used = Bytes::from_gib(11) + Bytes::from_mib(512);
/// assert_eq!((hbm - used).as_gib(), 4.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// `n` kibibytes.
    pub const fn from_kib(n: u64) -> Self {
        Bytes(n << 10)
    }

    /// `n` mebibytes.
    pub const fn from_mib(n: u64) -> Self {
        Bytes(n << 20)
    }

    /// `n` gibibytes.
    pub const fn from_gib(n: u64) -> Self {
        Bytes(n << 30)
    }

    /// A fractional number of gibibytes, rounded to the nearest byte.
    ///
    /// # Panics
    ///
    /// Panics if `gib` is negative or non-finite.
    pub fn from_gib_f64(gib: f64) -> Self {
        assert!(
            gib.is_finite() && gib >= 0.0,
            "byte count must be finite and non-negative, got {gib} GiB"
        );
        Bytes((gib * (1u64 << 30) as f64).round() as u64)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as a float (for rate arithmetic).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }

    /// Size in mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1u64 << 20) as f64
    }

    /// True if zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction; `None` if `other > self`.
    pub fn checked_sub(self, other: Bytes) -> Option<Bytes> {
        self.0.checked_sub(other.0).map(Bytes)
    }

    /// Scales by a non-negative float, rounding to the nearest byte.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Bytes {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "byte scale factor must be finite and non-negative, got {factor}"
        );
        Bytes((self.0 as f64 * factor).round() as u64)
    }

    /// The smaller of two counts.
    pub fn min(self, other: Bytes) -> Bytes {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two counts.
    pub fn max(self, other: Bytes) -> Bytes {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 30 {
            write!(f, "{:.2}GiB", self.as_gib())
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.2}MiB", self.as_mib())
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_chain() {
        assert_eq!(Bytes::from_gib(1), Bytes::from_mib(1024));
        assert_eq!(Bytes::from_mib(1), Bytes::from_kib(1024));
        assert_eq!(Bytes::from_kib(1), Bytes::new(1024));
        assert_eq!(Bytes::from_gib_f64(4.5), Bytes::from_mib(4608));
    }

    #[test]
    fn arithmetic() {
        let a = Bytes::from_gib(2);
        let b = Bytes::from_gib(1);
        assert_eq!(a + b, Bytes::from_gib(3));
        assert_eq!(a - b, Bytes::from_gib(1));
        assert_eq!(b * 3, Bytes::from_gib(3));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.checked_sub(b), Some(Bytes::from_gib(1)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.mul_f64(0.25), Bytes::from_mib(512));
    }

    #[test]
    fn min_max_sum() {
        let a = Bytes::from_mib(10);
        let b = Bytes::from_mib(20);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let total: Bytes = [a, b, a].into_iter().sum();
        assert_eq!(total, Bytes::from_mib(40));
    }

    #[test]
    fn display_units() {
        assert_eq!(Bytes::new(10).to_string(), "10B");
        assert_eq!(Bytes::from_kib(2).to_string(), "2.00KiB");
        assert_eq!(Bytes::from_mib(3).to_string(), "3.00MiB");
        assert_eq!(Bytes::from_gib_f64(4.5).to_string(), "4.50GiB");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_gib_rejected() {
        let _ = Bytes::from_gib_f64(-1.0);
    }
}
