//! # pipefill-device
//!
//! Hardware substrate for the PipeFill reproduction: accelerator, node and
//! cluster specifications, an HBM memory-pool model with the allocator
//! semantics the PipeFill engine relies on, and analytical transfer-time
//! models for the interconnects.
//!
//! The paper's testbed is 16 AWS `p3.16xlarge` instances — 8× NVIDIA V100
//! (125 TFLOPS peak, 16 GB HBM) per node, NVLink 2.0 (300 GB/s) within a
//! node, 25 Gbps Ethernet between nodes (§5.1). Those numbers are the
//! defaults here ([`DeviceSpec::v100`], [`NodeSpec::p3_16xlarge`],
//! [`ClusterSpec::p3_cluster`]), but everything is parametric so the
//! sensitivity studies can scale devices, memory and links independently.
//!
//! The memory model ([`MemoryPool`]) mirrors the subset of the CUDA caching
//! allocator the paper's engine instrumentation uses:
//! `torch.cuda.memory_allocated()` → [`MemoryPool::allocated`],
//! `torch.cuda.empty_cache()` → [`MemoryPool::empty_cache`], and
//! `cuda.set_per_process_memory_fraction` → [`MemoryPool::set_cap`], with
//! OOM isolated to the capped (fill-job) process.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bytes;
mod memory;
mod spec;

pub use bytes::Bytes;
pub use memory::{AllocId, MemoryError, MemoryPool, Proc};
pub use spec::{ClusterSpec, DeviceSpec, LinkSpec, NodeSpec};
