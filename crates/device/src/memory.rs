//! The device memory pool: a simulation of the CUDA caching-allocator
//! behaviours the PipeFill engine instrumentation depends on.
//!
//! The paper's engine (§4.2):
//!
//! * reads how much memory the main job holds during a bubble
//!   (`torch.cuda.memory_allocated()`), treating the rest of HBM as free
//!   for fill jobs;
//! * tells the allocator to release transient/unused buffers first
//!   (`torch.cuda.empty_cache()`) so they are not charged to the main job;
//! * caps the fill-job Executor's usable memory
//!   (`cuda.set_per_process_memory_fraction`) so that a misbehaving fill
//!   job gets an OOM error *isolated to the Executor process* instead of
//!   crashing the main job.
//!
//! [`MemoryPool`] models exactly that: two logical processes
//! ([`Proc::Main`], [`Proc::Fill`]), per-allocation transient flags, an
//! optional per-process cap, and error variants that distinguish an
//! isolated cap violation from a true device OOM.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

use crate::bytes::Bytes;

/// Which logical process owns an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proc {
    /// The main pipeline-parallel training job.
    Main,
    /// The fill-job Executor process.
    Fill,
}

impl fmt::Display for Proc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proc::Main => write!(f, "main"),
            Proc::Fill => write!(f, "fill"),
        }
    }
}

/// Handle to a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// Why an allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The requesting process would exceed its configured cap. For the
    /// fill process this is the *isolated* OOM of §4.3 — it kills the fill
    /// job attempt but never the main job.
    CapExceeded {
        /// The process whose cap was hit.
        proc: Proc,
        /// Bytes requested.
        requested: Bytes,
        /// The configured cap.
        cap: Bytes,
        /// Bytes the process already holds.
        in_use: Bytes,
    },
    /// The device itself is out of memory. If the main job triggers this,
    /// the training run crashes — the situation PipeFill's capping is
    /// designed to make impossible for fill jobs.
    OutOfMemory {
        /// Bytes requested.
        requested: Bytes,
        /// Bytes actually free on the device.
        free: Bytes,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::CapExceeded {
                proc,
                requested,
                cap,
                in_use,
            } => write!(
                f,
                "{proc} process cap exceeded: requested {requested} with {in_use} in use against cap {cap}"
            ),
            MemoryError::OutOfMemory { requested, free } => {
                write!(f, "device out of memory: requested {requested}, free {free}")
            }
        }
    }
}

impl Error for MemoryError {}

#[derive(Debug, Clone, Copy)]
struct Allocation {
    proc: Proc,
    size: Bytes,
    transient: bool,
}

/// A simulated device memory pool.
///
/// # Example
///
/// ```
/// use pipefill_device::{Bytes, MemoryPool, Proc};
///
/// let mut pool = MemoryPool::new(Bytes::from_gib(16));
/// // Main job holds 11.5 GiB of persistent state...
/// pool.alloc(Proc::Main, Bytes::from_gib_f64(11.5)).unwrap();
/// // ...plus transient buffers released at each bubble.
/// pool.alloc_transient(Proc::Main, Bytes::from_gib(2)).unwrap();
/// pool.empty_cache(Proc::Main);
/// assert_eq!(pool.free().as_gib(), 4.5); // the paper's measured bubble free memory
/// ```
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: Bytes,
    // BTreeMap, not HashMap: `total_allocated`/`empty_cache`/
    // `release_all` iterate it, and ids are sequential, so the ordered
    // map makes every visit order the allocation order (detlint
    // hash-iter would reject a hash map here).
    allocations: BTreeMap<u64, Allocation>,
    next_id: u64,
    caps: HashMap<Proc, Bytes>,
    /// High-water mark of total allocated bytes, for reporting.
    peak: Bytes,
}

impl MemoryPool {
    /// Creates a pool with the given HBM capacity.
    pub fn new(capacity: Bytes) -> Self {
        MemoryPool {
            capacity,
            allocations: BTreeMap::new(),
            next_id: 0,
            caps: HashMap::new(),
            peak: Bytes::ZERO,
        }
    }

    /// Device capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently free on the device.
    pub fn free(&self) -> Bytes {
        self.capacity - self.total_allocated()
    }

    /// Total bytes allocated across all processes.
    pub fn total_allocated(&self) -> Bytes {
        self.allocations.values().map(|a| a.size).sum()
    }

    /// Peak total allocation observed so far.
    pub fn peak_allocated(&self) -> Bytes {
        self.peak
    }

    /// Bytes held by one process (the `torch.cuda.memory_allocated()`
    /// reading for that process).
    pub fn allocated(&self, proc: Proc) -> Bytes {
        self.allocations
            .values()
            .filter(|a| a.proc == proc)
            .map(|a| a.size)
            .sum()
    }

    /// Sets (or clears, with `None`) the cap on how much a process may
    /// hold — the `set_per_process_memory_fraction` analogue, in absolute
    /// bytes.
    pub fn set_cap(&mut self, proc: Proc, cap: Option<Bytes>) {
        match cap {
            Some(c) => {
                self.caps.insert(proc, c);
            }
            None => {
                self.caps.remove(&proc);
            }
        }
    }

    /// The currently configured cap for a process, if any.
    pub fn cap(&self, proc: Proc) -> Option<Bytes> {
        self.caps.get(&proc).copied()
    }

    /// Allocates persistent memory.
    ///
    /// # Errors
    ///
    /// [`MemoryError::CapExceeded`] if the process would exceed its cap
    /// (checked first, so fill-job failures are isolated), else
    /// [`MemoryError::OutOfMemory`] if the device lacks free bytes.
    pub fn alloc(&mut self, proc: Proc, size: Bytes) -> Result<AllocId, MemoryError> {
        self.alloc_inner(proc, size, false)
    }

    /// Allocates a transient buffer — memory the owner can bulk-release
    /// via [`MemoryPool::empty_cache`] (activation workspaces, fragmented
    /// cached blocks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemoryPool::alloc`].
    pub fn alloc_transient(&mut self, proc: Proc, size: Bytes) -> Result<AllocId, MemoryError> {
        self.alloc_inner(proc, size, true)
    }

    fn alloc_inner(
        &mut self,
        proc: Proc,
        size: Bytes,
        transient: bool,
    ) -> Result<AllocId, MemoryError> {
        if let Some(&cap) = self.caps.get(&proc) {
            let in_use = self.allocated(proc);
            if in_use + size > cap {
                return Err(MemoryError::CapExceeded {
                    proc,
                    requested: size,
                    cap,
                    in_use,
                });
            }
        }
        let free = self.free();
        if size > free {
            return Err(MemoryError::OutOfMemory {
                requested: size,
                free,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.allocations.insert(
            id,
            Allocation {
                proc,
                size,
                transient,
            },
        );
        self.peak = self.peak.max(self.total_allocated());
        Ok(AllocId(id))
    }

    /// Frees one allocation. Returns the freed size, or `None` if the id
    /// was already freed (double-free is benign, mirroring a caching
    /// allocator's refcounted blocks).
    pub fn release(&mut self, id: AllocId) -> Option<Bytes> {
        self.allocations.remove(&id.0).map(|a| a.size)
    }

    /// Releases every transient buffer owned by `proc` — the
    /// `torch.cuda.empty_cache()` analogue the engine invokes at each
    /// bubble start. Returns the total bytes released.
    pub fn empty_cache(&mut self, proc: Proc) -> Bytes {
        let ids: Vec<u64> = self
            .allocations
            .iter()
            .filter(|(_, a)| a.proc == proc && a.transient)
            .map(|(&id, _)| id)
            .collect();
        let mut freed = Bytes::ZERO;
        for id in ids {
            if let Some(a) = self.allocations.remove(&id) {
                freed += a.size;
            }
        }
        freed
    }

    /// Releases everything owned by `proc` (process exit).
    pub fn release_all(&mut self, proc: Proc) -> Bytes {
        let ids: Vec<u64> = self
            .allocations
            .iter()
            .filter(|(_, a)| a.proc == proc)
            .map(|(&id, _)| id)
            .collect();
        let mut freed = Bytes::ZERO;
        for id in ids {
            if let Some(a) = self.allocations.remove(&id) {
                freed += a.size;
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_16g() -> MemoryPool {
        MemoryPool::new(Bytes::from_gib(16))
    }

    #[test]
    fn alloc_and_release_round_trip() {
        let mut pool = pool_16g();
        let id = pool.alloc(Proc::Main, Bytes::from_gib(4)).unwrap();
        assert_eq!(pool.allocated(Proc::Main), Bytes::from_gib(4));
        assert_eq!(pool.free(), Bytes::from_gib(12));
        assert_eq!(pool.release(id), Some(Bytes::from_gib(4)));
        assert_eq!(pool.free(), Bytes::from_gib(16));
        assert_eq!(pool.release(id), None, "double free is benign");
    }

    #[test]
    fn device_oom_when_exhausted() {
        let mut pool = pool_16g();
        pool.alloc(Proc::Main, Bytes::from_gib(15)).unwrap();
        let err = pool.alloc(Proc::Main, Bytes::from_gib(2)).unwrap_err();
        assert_eq!(
            err,
            MemoryError::OutOfMemory {
                requested: Bytes::from_gib(2),
                free: Bytes::from_gib(1),
            }
        );
    }

    #[test]
    fn fill_cap_is_checked_before_device_oom() {
        let mut pool = pool_16g();
        pool.alloc(Proc::Main, Bytes::from_gib(11)).unwrap();
        pool.set_cap(Proc::Fill, Some(Bytes::from_gib(4)));
        // 5 GiB are free on the device, but the cap is 4 GiB: the fill
        // process sees an isolated CapExceeded, not a device OOM.
        let err = pool
            .alloc(Proc::Fill, Bytes::from_gib_f64(4.5))
            .unwrap_err();
        assert!(matches!(
            err,
            MemoryError::CapExceeded {
                proc: Proc::Fill,
                ..
            }
        ));
        // Within the cap it succeeds.
        pool.alloc(Proc::Fill, Bytes::from_gib(4)).unwrap();
        // Main job is unaffected and can still allocate the true remainder.
        pool.alloc(Proc::Main, Bytes::from_gib(1)).unwrap();
    }

    #[test]
    fn cap_accounts_for_existing_usage() {
        let mut pool = pool_16g();
        pool.set_cap(Proc::Fill, Some(Bytes::from_gib(4)));
        pool.alloc(Proc::Fill, Bytes::from_gib(3)).unwrap();
        let err = pool.alloc(Proc::Fill, Bytes::from_gib(2)).unwrap_err();
        match err {
            MemoryError::CapExceeded { in_use, cap, .. } => {
                assert_eq!(in_use, Bytes::from_gib(3));
                assert_eq!(cap, Bytes::from_gib(4));
            }
            other => panic!("expected CapExceeded, got {other:?}"),
        }
        pool.set_cap(Proc::Fill, None);
        pool.alloc(Proc::Fill, Bytes::from_gib(2)).unwrap();
    }

    #[test]
    fn empty_cache_frees_only_transient_of_that_proc() {
        let mut pool = pool_16g();
        pool.alloc(Proc::Main, Bytes::from_gib(8)).unwrap();
        pool.alloc_transient(Proc::Main, Bytes::from_gib(2))
            .unwrap();
        pool.alloc_transient(Proc::Main, Bytes::from_gib(1))
            .unwrap();
        pool.alloc_transient(Proc::Fill, Bytes::from_gib(1))
            .unwrap();
        let freed = pool.empty_cache(Proc::Main);
        assert_eq!(freed, Bytes::from_gib(3));
        assert_eq!(pool.allocated(Proc::Main), Bytes::from_gib(8));
        assert_eq!(pool.allocated(Proc::Fill), Bytes::from_gib(1));
        assert_eq!(pool.empty_cache(Proc::Main), Bytes::ZERO);
    }

    #[test]
    fn release_all_clears_process() {
        let mut pool = pool_16g();
        pool.alloc(Proc::Fill, Bytes::from_gib(2)).unwrap();
        pool.alloc_transient(Proc::Fill, Bytes::from_gib(1))
            .unwrap();
        pool.alloc(Proc::Main, Bytes::from_gib(5)).unwrap();
        assert_eq!(pool.release_all(Proc::Fill), Bytes::from_gib(3));
        assert_eq!(pool.allocated(Proc::Fill), Bytes::ZERO);
        assert_eq!(pool.allocated(Proc::Main), Bytes::from_gib(5));
    }

    #[test]
    fn paper_bubble_free_memory_scenario() {
        // 16 GB HBM, main job holds ~11.5 GiB persistent after releasing
        // transient buffers -> 4.5 GiB free, matching §6.1.
        let mut pool = pool_16g();
        pool.alloc(Proc::Main, Bytes::from_gib_f64(11.5)).unwrap();
        pool.alloc_transient(Proc::Main, Bytes::from_gib(3))
            .unwrap();
        pool.empty_cache(Proc::Main);
        assert_eq!(pool.free(), Bytes::from_gib_f64(4.5));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut pool = pool_16g();
        let a = pool.alloc(Proc::Main, Bytes::from_gib(10)).unwrap();
        pool.release(a);
        pool.alloc(Proc::Main, Bytes::from_gib(2)).unwrap();
        assert_eq!(pool.peak_allocated(), Bytes::from_gib(10));
    }

    #[test]
    fn errors_format_usefully() {
        let e = MemoryError::OutOfMemory {
            requested: Bytes::from_gib(2),
            free: Bytes::from_gib(1),
        };
        assert!(e.to_string().contains("out of memory"));
        let e = MemoryError::CapExceeded {
            proc: Proc::Fill,
            requested: Bytes::from_gib(5),
            cap: Bytes::from_gib(4),
            in_use: Bytes::ZERO,
        };
        assert!(e.to_string().contains("fill process cap exceeded"));
    }
}
