//! Property tests for the memory pool: capacity, cap isolation and
//! accounting invariants under arbitrary operation sequences.

use proptest::prelude::*;

use pipefill_device::{AllocId, Bytes, MemoryError, MemoryPool, Proc};

#[derive(Debug, Clone)]
enum Op {
    Alloc(Proc, u64),
    AllocTransient(Proc, u64),
    Release(usize),
    EmptyCache(Proc),
    SetCap(Proc, Option<u64>),
    ReleaseAll(Proc),
}

fn proc_strategy() -> impl Strategy<Value = Proc> {
    prop_oneof![Just(Proc::Main), Just(Proc::Fill)]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (proc_strategy(), 1u64..4_000).prop_map(|(p, s)| Op::Alloc(p, s)),
        (proc_strategy(), 1u64..4_000).prop_map(|(p, s)| Op::AllocTransient(p, s)),
        (0usize..64).prop_map(Op::Release),
        proc_strategy().prop_map(Op::EmptyCache),
        (proc_strategy(), prop::option::of(0u64..8_000)).prop_map(|(p, c)| Op::SetCap(p, c)),
        proc_strategy().prop_map(Op::ReleaseAll),
    ]
}

proptest! {
    /// Under any operation sequence: total allocation never exceeds
    /// capacity, per-process accounting sums to the total, failed
    /// allocations change nothing, and a capped process never exceeds its
    /// cap at allocation time.
    #[test]
    fn pool_invariants(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let capacity = Bytes::new(10_000);
        let mut pool = MemoryPool::new(capacity);
        // (id, owner, transient) for allocations we believe are live.
        let mut live: Vec<(AllocId, Proc, bool)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(p, s) | Op::AllocTransient(p, s) => {
                    let transient = matches!(op, Op::AllocTransient(..));
                    let before = (pool.total_allocated(), pool.allocated(p));
                    let result = if transient {
                        pool.alloc_transient(p, Bytes::new(s))
                    } else {
                        pool.alloc(p, Bytes::new(s))
                    };
                    match result {
                        Ok(id) => {
                            live.push((id, p, transient));
                            if let Some(cap) = pool.cap(p) {
                                prop_assert!(pool.allocated(p) <= cap);
                            }
                        }
                        Err(MemoryError::CapExceeded { .. })
                        | Err(MemoryError::OutOfMemory { .. }) => {
                            prop_assert_eq!(
                                (pool.total_allocated(), pool.allocated(p)),
                                before,
                                "failed alloc mutated state"
                            );
                        }
                    }
                }
                Op::Release(i) => {
                    if !live.is_empty() {
                        let (id, _, _) = live.remove(i % live.len());
                        prop_assert!(pool.release(id).is_some());
                        prop_assert!(pool.release(id).is_none(), "double free not benign");
                    }
                }
                Op::EmptyCache(p) => {
                    let expected: u64 = live
                        .iter()
                        .filter(|&&(_, owner, transient)| owner == p && transient)
                        .count() as u64;
                    let _ = expected;
                    let freed = pool.empty_cache(p);
                    prop_assert!(freed <= capacity);
                    live.retain(|&(_, owner, transient)| !(owner == p && transient));
                }
                Op::SetCap(p, c) => pool.set_cap(p, c.map(Bytes::new)),
                Op::ReleaseAll(p) => {
                    pool.release_all(p);
                    prop_assert_eq!(pool.allocated(p), Bytes::ZERO);
                    live.retain(|&(_, owner, _)| owner != p);
                }
            }
            // Global invariants after every operation.
            prop_assert!(pool.total_allocated() <= capacity);
            prop_assert_eq!(
                pool.allocated(Proc::Main) + pool.allocated(Proc::Fill),
                pool.total_allocated()
            );
            prop_assert_eq!(pool.free() + pool.total_allocated(), capacity);
            prop_assert!(pool.peak_allocated() >= pool.total_allocated());
        }
    }

    /// A fill-process cap always isolates: with the cap at or below the
    /// free space, a fill allocation can never trigger a device OOM.
    #[test]
    fn cap_isolates_fill_process(
        main_use in 0u64..9_000,
        requests in prop::collection::vec(1u64..5_000, 1..20),
    ) {
        let mut pool = MemoryPool::new(Bytes::new(10_000));
        pool.alloc(Proc::Main, Bytes::new(main_use)).unwrap();
        let cap = pool.free();
        pool.set_cap(Proc::Fill, Some(cap));
        for r in requests {
            match pool.alloc(Proc::Fill, Bytes::new(r)) {
                Ok(_) => {}
                Err(MemoryError::CapExceeded { .. }) => {}
                Err(MemoryError::OutOfMemory { .. }) => {
                    prop_assert!(false, "capped fill process hit device OOM");
                }
            }
        }
    }
}
