//! Deterministic random numbers and the distributions the workload
//! generators need.
//!
//! Everything is implemented from first principles so the kernel has zero
//! external dependencies: the uniform source is xoshiro256++ (the same
//! generator family `rand`'s `SmallRng` uses on 64-bit targets) seeded via
//! SplitMix64, and the non-uniform distributions (exponential, normal,
//! lognormal, Poisson) are built on it — inverse-transform sampling for the
//! exponential, Box–Muller for the normal, exp(normal) for the lognormal,
//! and Knuth's product method (with a normal approximation for large rates)
//! for the Poisson.

/// xoshiro256++ by Blackman & Vigna: 256-bit state, full 2^256−1 period,
/// excellent statistical quality for simulation workloads.
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the 256-bit state with SplitMix64, as
    /// recommended by the generator's authors (identical to how `rand`
    /// seeds `SmallRng::seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seeded random source producing the distributions used across the
/// PipeFill reproduction (trace inter-arrivals, job sizes, execution-time
/// jitter).
///
/// Two generators constructed with the same seed produce identical
/// streams, which is what makes every experiment in `EXPERIMENTS.md`
/// re-runnable to the digit.
///
/// # Example
///
/// ```
/// use pipefill_sim_core::rng::DeterministicRng;
///
/// let mut a = DeterministicRng::seed_from(42);
/// let mut b = DeterministicRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    inner: Xoshiro256PlusPlus,
    /// Spare normal variate from the last Box–Muller pair.
    spare_normal: Option<f64>,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        DeterministicRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream so adding draws in one component does not
    /// perturb another.
    pub fn fork(&mut self) -> Self {
        DeterministicRng::seed_from(self.inner.next_u64())
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid uniform range [{lo}, {hi})"
        );
        let v = lo + self.inner.next_f64() * (hi - lo);
        // Rounding at the top of a huge range can land on `hi`; fold the
        // (measure-zero) boundary back into the half-open interval.
        if v < hi {
            v
        } else {
            lo
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "invalid uniform range [{lo}, {hi})");
        lo + (self.inner.next_u64() % (hi - lo) as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.next_f64() < p
    }

    /// Exponential sample with the given `rate` (mean `1/rate`), via
    /// inverse-transform sampling.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        // u in (0, 1]: avoid ln(0).
        let u: f64 = 1.0 - self.inner.next_f64();
        -u.ln() / rate
    }

    /// Standard-normal-based sample with mean `mean` and standard deviation
    /// `std_dev`, via the Box–Muller transform (pairs are cached).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "normal std_dev must be non-negative, got {std_dev}"
        );
        let z = match self.spare_normal.take() {
            Some(z) => z,
            None => {
                // Box–Muller: two uniforms -> two independent N(0,1).
                let u1: f64 = 1.0 - self.inner.next_f64(); // (0, 1]
                let u2: f64 = self.inner.next_f64();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare_normal = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std_dev * z
    }

    /// Lognormal sample: `exp(N(mu, sigma))`. `mu`/`sigma` are the
    /// parameters of the underlying normal (natural-log scale), matching
    /// the convention used for GPU-hour job-size distributions in cluster
    /// trace studies.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson sample with rate `lambda`. Uses Knuth's product method for
    /// small rates and a rounded normal approximation for `lambda > 64`
    /// (where the approximation error is far below trace noise).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson rate must be non-negative, got {lambda}"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.inner.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Multiplicative jitter `max(0, N(1, cv))`, used to perturb profiled
    /// durations in the fine-grained "physical" simulator. `cv` is the
    /// coefficient of variation. A `cv` of exactly zero is deterministic
    /// and consumes no randomness (mirroring the
    /// [`exponential_duration`](Self::exponential_duration) `MAX`-mean
    /// convention), so jitter-free fidelity sweeps leave unrelated streams
    /// untouched — and a jitter-free run is recognizably quiescent for
    /// steady-state fast-forward.
    pub fn jitter(&mut self, cv: f64) -> f64 {
        if cv == 0.0 {
            return 1.0;
        }
        self.normal(1.0, cv).max(0.0)
    }

    /// An opaque fingerprint of the generator's full state (xoshiro256++
    /// words plus the cached Box–Muller spare). Two generators with equal
    /// fingerprints produce identical future streams; a fingerprint that
    /// changed between two observation points proves randomness was
    /// consumed in between. Steady-state detection uses this to recognize
    /// stochastically quiescent stretches of a simulation.
    pub fn state_fingerprint(&self) -> [u64; 6] {
        let spare = self.spare_normal;
        [
            self.inner.s[0],
            self.inner.s[1],
            self.inner.s[2],
            self.inner.s[3],
            spare.is_some() as u64,
            spare.unwrap_or(0.0).to_bits(),
        ]
    }

    /// Exponential waiting time with the given `mean` duration — the
    /// inter-event sample of a Poisson process such as GPU failures with a
    /// mean-time-between-failures. An infinite or `MAX` mean models an
    /// event that never fires and returns [`crate::SimDuration::MAX`]
    /// without consuming randomness (so fidelity sweeps over the mean do
    /// not perturb unrelated streams).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn exponential_duration(&mut self, mean: crate::SimDuration) -> crate::SimDuration {
        assert!(
            !mean.is_zero(),
            "exponential_duration needs a positive mean"
        );
        if mean == crate::SimDuration::MAX {
            return crate::SimDuration::MAX;
        }
        let secs = self.exponential(1.0 / mean.as_secs_f64());
        if secs.is_finite() && secs < (u64::MAX / 2) as f64 * 1e-9 {
            crate::SimDuration::from_secs_f64(secs)
        } else {
            crate::SimDuration::MAX
        }
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index needs at least one weight"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must sum to a positive value, got {total}"
        );
        let mut x = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seed_from(7);
        let mut b = DeterministicRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 10.0), b.uniform(0.0, 10.0));
            assert_eq!(a.poisson(5.0), b.poisson(5.0));
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut parent = DeterministicRng::seed_from(7);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let s1: Vec<f64> = (0..10).map(|_| c1.uniform(0.0, 1.0)).collect();
        let s2: Vec<f64> = (0..10).map(|_| c2.uniform(0.0, 1.0)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = DeterministicRng::seed_from(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = DeterministicRng::seed_from(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = DeterministicRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.lognormal(0.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut rng = DeterministicRng::seed_from(4);
        for &lambda in &[0.5, 8.0, 200.0] {
            let n = 10_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            let tol = 3.0 * (lambda / n as f64).sqrt() + 0.05;
            assert!(
                (mean - lambda).abs() < tol,
                "lambda={lambda} mean={mean} tol={tol}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DeterministicRng::seed_from(5);
        let weights = [1.0, 3.0];
        let n = 20_000;
        let ones = (0..n).filter(|_| rng.weighted_index(&weights) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut rng = DeterministicRng::seed_from(6);
        assert_eq!(rng.weighted_index(&[5.0]), 0);
        // Zero-weight entries are never chosen.
        for _ in 0..100 {
            assert_eq!(rng.weighted_index(&[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    fn jitter_never_negative() {
        let mut rng = DeterministicRng::seed_from(8);
        for _ in 0..10_000 {
            assert!(rng.jitter(0.5) >= 0.0);
        }
    }

    #[test]
    fn zero_cv_jitter_is_deterministic_and_consumes_nothing() {
        let mut a = DeterministicRng::seed_from(8);
        let mut b = DeterministicRng::seed_from(8);
        assert_eq!(a.jitter(0.0), 1.0);
        // The cv=0 path consumes no randomness: both streams stay aligned.
        assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }

    #[test]
    fn state_fingerprint_tracks_consumption() {
        let mut a = DeterministicRng::seed_from(21);
        let b = DeterministicRng::seed_from(21);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        let fp = a.state_fingerprint();
        let _ = a.jitter(0.0); // no consumption
        assert_eq!(a.state_fingerprint(), fp);
        let _ = a.uniform(0.0, 1.0);
        assert_ne!(a.state_fingerprint(), fp);
        // The Box–Muller spare is part of the state: the first normal
        // changes it, the second consumes it.
        let fp = a.state_fingerprint();
        let _ = a.normal(0.0, 1.0);
        let after_first = a.state_fingerprint();
        assert_ne!(after_first, fp);
        let _ = a.normal(0.0, 1.0);
        assert_ne!(a.state_fingerprint(), after_first);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DeterministicRng::seed_from(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_empty_range() {
        let mut rng = DeterministicRng::seed_from(10);
        let _ = rng.uniform(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = DeterministicRng::seed_from(11);
        let _ = rng.exponential(0.0);
    }

    #[test]
    fn exponential_duration_mean_matches() {
        use crate::SimDuration;
        let mut rng = DeterministicRng::seed_from(12);
        let mean = SimDuration::from_secs(3600);
        let n = 20_000;
        let avg: f64 = (0..n)
            .map(|_| rng.exponential_duration(mean).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((avg - 3600.0).abs() < 60.0, "avg={avg}");
    }

    #[test]
    fn exponential_duration_infinite_mean_never_fires() {
        use crate::SimDuration;
        let mut a = DeterministicRng::seed_from(13);
        let mut b = DeterministicRng::seed_from(13);
        assert_eq!(a.exponential_duration(SimDuration::MAX), SimDuration::MAX);
        // The MAX path consumes no randomness: both streams stay aligned.
        assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "positive mean")]
    fn exponential_duration_rejects_zero_mean() {
        let mut rng = DeterministicRng::seed_from(14);
        let _ = rng.exponential_duration(crate::SimDuration::ZERO);
    }
}
