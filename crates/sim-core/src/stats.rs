//! Summary statistics for the metrics layer: online (Welford) accumulation
//! and batch summaries with percentiles.

/// Incrementally accumulated mean/variance/min/max (Welford's algorithm),
/// used where the simulators stream per-step observations without storing
/// them all.
///
/// # Example
///
/// ```
/// use pipefill_sim_core::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A batch summary of a sample: mean, standard deviation, extrema, and
/// percentiles (by linear interpolation between order statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (p50).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarizes a sample. NaN observations are skipped — one failed or
    /// undefined metric must not abort a whole sweep. Returns `None` when
    /// the slice is empty or contains only NaNs.
    pub fn from_slice(values: &[f64]) -> Option<Summary> {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        })
    }
}

/// Percentile of an already-sorted sample, with linear interpolation.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Mean of `values` weighted by `weights`.
///
/// # Panics
///
/// Panics if lengths differ or the weights sum to zero or less.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len(), "weighted_mean length mismatch");
    let total_w: f64 = weights.iter().sum();
    assert!(total_w > 0.0, "weights must sum to a positive value");
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / total_w
}

/// Relative error `|measured - reference| / |reference|`, used when
/// comparing the coarse simulator against the fine-grained "physical"
/// simulator (Fig. 6 reports a maximum error of <2%).
///
/// # Panics
///
/// Panics if `reference` is zero.
pub fn relative_error(measured: f64, reference: f64) -> f64 {
    assert!(reference != 0.0, "relative error against zero reference");
    ((measured - reference) / reference).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch() {
        let data = [4.0, 7.0, 13.0, 16.0];
        let mut online = OnlineStats::new();
        for &x in &data {
            online.push(x);
        }
        let batch = Summary::from_slice(&data).unwrap();
        assert!((online.mean() - batch.mean).abs() < 1e-12);
        assert!((online.std_dev() - batch.std_dev).abs() < 1e-12);
        assert_eq!(online.min(), Some(4.0));
        assert_eq!(online.max(), Some(16.0));
    }

    #[test]
    fn online_merge_equals_concatenation() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for &x in &a_data {
            a.push(x);
            all.push(x);
        }
        for &x in &b_data {
            b.push(x);
            all.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
        assert_eq!(empty.count(), 1);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(Summary::from_slice(&[]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 40.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 25.0);
        assert_eq!(percentile_sorted(&[42.0], 75.0), 42.0);
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_slice(&[5.0; 10]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p99, 5.0);
    }

    #[test]
    fn summary_skips_nan_observations() {
        // Regression: a single NaN used to panic via partial_cmp().expect,
        // aborting an entire sweep over one bad metric.
        let s = Summary::from_slice(&[3.0, f64::NAN, 1.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(Summary::from_slice(&[f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    fn weighted_mean_basic() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), 1.5);
    }

    #[test]
    fn relative_error_is_symmetric_in_magnitude() {
        assert!((relative_error(102.0, 100.0) - 0.02).abs() < 1e-12);
        assert!((relative_error(98.0, 100.0) - 0.02).abs() < 1e-12);
    }
}
