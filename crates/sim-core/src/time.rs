//! Simulated time: instants ([`SimTime`]) and spans ([`SimDuration`]).
//!
//! Both are integer nanosecond counts. Floating-point time is the classic
//! source of non-reproducible discrete-event simulations (event order flips
//! under accumulation error); integer nanoseconds make every run
//! bit-identical for a given seed while still resolving the microsecond-
//! scale pipeline instructions the PipeFill engine schedules.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Nanoseconds in one second.
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
///
/// # Example
///
/// ```
/// use pipefill_sim_core::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Example
///
/// ```
/// use pipefill_sim_core::SimDuration;
///
/// let d = SimDuration::from_secs_f64(1.5) + SimDuration::from_millis(500);
/// assert_eq!(d.as_secs_f64(), 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant (used as an "infinitely far"
    /// sentinel for idle horizons).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy for very large
    /// times; fine for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Length of the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length of the span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Length of the span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Scales the span by a non-negative float, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio `self / other` as a float; returns 0.0 when `other` is
    /// zero (an empty window contributes no utilization).
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time must be finite and non-negative, got {secs}"
    );
    let nanos = secs * NANOS_PER_SEC as f64;
    assert!(
        nanos <= u64::MAX as f64,
        "time overflows the simulated clock: {secs} s"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics (in debug) if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs_f64(1.5);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_secs_f64(), 2.0);
        assert_eq!((t + d) - t, SimDuration::from_millis(500));
        assert_eq!(t - d, SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn saturating_ops_clamp() {
        let early = SimTime::from_secs_f64(1.0);
        let late = SimTime::from_secs_f64(2.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds_to_nanos() {
        let d = SimDuration::from_nanos(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_nanos(2)); // 1.5 rounds to 2
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        let big = SimDuration::from_secs(10);
        assert_eq!(big.mul_f64(0.68), SimDuration::from_millis(6800));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(SimDuration::from_secs(1).ratio(SimDuration::ZERO), 0.0);
        assert_eq!(
            SimDuration::from_secs(1).ratio(SimDuration::from_secs(4)),
            0.25
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_scale_rejected() {
        let _ = SimDuration::from_secs(1).mul_f64(-0.5);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![
            SimTime::from_secs_f64(2.0),
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_secs_f64(1.0),
                SimTime::from_secs_f64(2.0)
            ]
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
