//! The event queue: a time-ordered priority queue with deterministic
//! FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A future event: its firing time plus an insertion sequence number so
/// that events scheduled for the same instant pop in insertion order.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events pushed for the same [`SimTime`] are returned in push order, which
/// keeps multi-component simulations (engine signals, executor wake-ups,
/// scheduler placements) reproducible without fragile epsilon offsets.
///
/// # Example
///
/// ```
/// use pipefill_sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_secs_f64(1.0);
/// q.push(t, "a");
/// q.push(t, "b");
/// assert_eq!(q.pop(), Some((t, "a")));
/// assert_eq!(q.pop(), Some((t, "b")));
/// assert!(q.is_empty());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    credited: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            credited: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the backing heap reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            credited: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties break in push order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Credits `n` events as dispatched without running them through the
    /// queue. A handler that analytically skips a stretch of simulation
    /// (e.g. steady-state fast-forward) calls this with the number of
    /// events the skipped stretch would have fired, so that
    /// [`crate::Simulation::dispatched`] stays identical whether the
    /// stretch was simulated event-by-event or replayed in closed form.
    pub fn credit(&mut self, n: u64) {
        self.credited += n;
    }

    /// Takes (and resets) the credit accumulated since the last call.
    /// The simulation driver drains this after every dispatched event.
    pub fn take_credit(&mut self) -> u64 {
        std::mem::take(&mut self.credited)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(3.0), 3);
        q.push(SimTime::from_secs_f64(1.0), 1);
        q.push(SimTime::from_secs_f64(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        let base = SimTime::ZERO;
        q.push(base + SimDuration::from_secs(2), "late");
        q.push(base + SimDuration::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(base + SimDuration::from_millis(1500), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
