//! The simulation driver loop.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation component: consumes events, may schedule more.
///
/// Implementors hold all mutable simulation state; the driver owns only the
/// clock and the queue, which keeps borrow scopes simple for large
/// multi-component models.
pub trait EventHandler {
    /// The event alphabet of this simulation.
    type Event;

    /// Handles one event fired at `now`. New events are scheduled through
    /// `queue`; scheduling in the past is a logic error that
    /// [`Simulation::run`] turns into a panic.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// What a single [`Simulation::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was dispatched.
    Dispatched,
    /// The queue was empty; nothing happened.
    Idle,
    /// The next event lies beyond the configured horizon; nothing happened.
    PastHorizon,
}

/// A discrete-event simulation: a clock plus an event queue.
///
/// # Example
///
/// ```
/// use pipefill_sim_core::{EventHandler, EventQueue, SimDuration, SimTime, Simulation};
///
/// struct Counter {
///     fired: u32,
/// }
///
/// impl EventHandler for Counter {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _e: (), q: &mut EventQueue<()>) {
///         self.fired += 1;
///         if self.fired < 3 {
///             q.push(now + SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new();
/// sim.schedule(SimTime::ZERO, ());
/// let mut counter = Counter { fired: 0 };
/// sim.run(&mut counter, None);
/// assert_eq!(counter.fired, 3);
/// assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
/// ```
pub struct Simulation<E> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates a simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
        }
    }

    /// Current simulated time (the firing time of the last dispatched
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules an event.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — an event in the
    /// past means causality is broken and results would silently be wrong.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Access to the underlying queue (for handlers that need to inspect
    /// the next firing time).
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Dispatches the next event, if one exists and lies at or before
    /// `horizon` (when given).
    pub fn step<H>(&mut self, handler: &mut H, horizon: Option<SimTime>) -> StepOutcome
    where
        H: EventHandler<Event = E>,
    {
        match self.queue.peek_time() {
            None => StepOutcome::Idle,
            Some(t) if horizon.is_some_and(|h| t > h) => StepOutcome::PastHorizon,
            Some(_) => {
                // Peek returned a time, so pop is total; the else branch
                // keeps this panic-free under `clippy::expect_used`.
                let Some((at, event)) = self.queue.pop() else {
                    return StepOutcome::Idle;
                };
                debug_assert!(at >= self.now, "queue returned an event from the past");
                self.now = at;
                self.dispatched += 1;
                handler.handle(at, event, &mut self.queue);
                // Fold in events the handler accounted for analytically
                // (steady-state fast-forward) instead of scheduling.
                self.dispatched += self.queue.take_credit();
                StepOutcome::Dispatched
            }
        }
    }

    /// Runs until the queue drains or the next event would pass `horizon`.
    /// Returns the number of events dispatched by this call.
    pub fn run<H>(&mut self, handler: &mut H, horizon: Option<SimTime>) -> u64
    where
        H: EventHandler<Event = E>,
    {
        let start = self.dispatched;
        while self.step(handler, horizon) == StepOutcome::Dispatched {}
        self.dispatched - start
    }
}

impl<E> std::fmt::Debug for Simulation<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("dispatched", &self.dispatched)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Collect {
        seen: Vec<(SimTime, u32)>,
    }

    impl EventHandler for Collect {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, q: &mut EventQueue<u32>) {
            self.seen.push((now, event));
            if event == 1 {
                // Chain: event 1 schedules events 10 and 11.
                q.push(now + SimDuration::from_secs(1), 10);
                q.push(now + SimDuration::from_secs(2), 11);
            }
        }
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, 1);
        let mut h = Collect { seen: vec![] };
        let n = sim.run(&mut h, None);
        assert_eq!(n, 3);
        assert_eq!(
            h.seen,
            vec![
                (SimTime::ZERO, 1),
                (SimTime::from_secs_f64(1.0), 10),
                (SimTime::from_secs_f64(2.0), 11),
            ]
        );
        assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
    }

    #[test]
    fn horizon_stops_dispatch() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_secs_f64(1.0), 1);
        sim.schedule(SimTime::from_secs_f64(5.0), 2);
        let mut h = Collect { seen: vec![] };
        sim.run(&mut h, Some(SimTime::from_secs_f64(3.0)));
        // Event 1 fires (and schedules 10@2s, 11@3s which are within
        // horizon); event 2 at 5s stays queued.
        let ids: Vec<u32> = h.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(ids, vec![1, 10, 11]);
        assert_eq!(sim.queue().len(), 1);
        assert_eq!(
            sim.step(&mut h, Some(SimTime::from_secs_f64(3.0))),
            StepOutcome::PastHorizon
        );
    }

    #[test]
    fn idle_on_empty_queue() {
        let mut sim: Simulation<u32> = Simulation::new();
        let mut h = Collect { seen: vec![] };
        assert_eq!(sim.step(&mut h, None), StepOutcome::Idle);
        assert_eq!(sim.run(&mut h, None), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_secs_f64(2.0), 1);
        let mut h = Collect { seen: vec![] };
        sim.run(&mut h, None);
        sim.schedule(SimTime::from_secs_f64(1.0), 2);
    }
}
