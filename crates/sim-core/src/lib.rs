//! # pipefill-sim-core
//!
//! Discrete-event simulation kernel underlying the PipeFill reproduction.
//!
//! The paper evaluates PipeFill with "an event-driven simulator \[whose\]
//! events are the arrivals and completions of fill-jobs" seeded with
//! profiles of the main training job's pipeline instructions (§5.1). This
//! crate provides the generic machinery that both the coarse profile-driven
//! simulator and the fine-grained "physical cluster" simulator are built on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time, so
//!   event ordering is exact and runs are bit-reproducible.
//! * [`EventQueue`] — a priority queue with deterministic FIFO tie-breaking
//!   for simultaneous events.
//! * [`Simulation`] and the [`EventHandler`] trait — a minimal driver loop.
//! * [`rng::DeterministicRng`] — seeded RNG with the distributions the
//!   workload generators need (exponential, normal, lognormal, Poisson, …),
//!   implemented from scratch on top of `rand`'s uniform source.
//! * [`stats`] — summary statistics used by the metrics layer.
//!
//! # Example
//!
//! ```
//! use pipefill_sim_core::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_secs_f64(1.0), "second");
//! q.push(SimTime::ZERO, "first");
//! assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod queue;
mod sim;
mod time;

pub mod rng;
pub mod stats;

pub use queue::EventQueue;
pub use sim::{EventHandler, Simulation, StepOutcome};
pub use time::{SimDuration, SimTime};
