//! Property tests for the simulation kernel: queue ordering, time
//! arithmetic, and statistics invariants.

use proptest::prelude::*;

use pipefill_sim_core::rng::DeterministicRng;
use pipefill_sim_core::stats::{OnlineStats, Summary};
use pipefill_sim_core::{EventQueue, SimDuration, SimTime};

proptest! {
    /// The event queue yields events in non-decreasing time order, and
    /// simultaneous events in push order.
    #[test]
    fn queue_is_a_stable_time_sort(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Duration arithmetic is consistent: sum of parts equals the whole,
    /// and scaling by a ratio then its inverse round-trips within 1 ns
    /// per operation.
    #[test]
    fn duration_arithmetic_consistency(parts in prop::collection::vec(0u64..1_000_000, 1..50)) {
        let total: SimDuration = parts.iter().map(|&n| SimDuration::from_nanos(n)).sum();
        prop_assert_eq!(total.as_nanos(), parts.iter().sum::<u64>());
        let t = SimTime::ZERO + total;
        prop_assert_eq!(t.saturating_since(SimTime::ZERO), total);
    }

    /// `mul_f64` is monotone in the factor.
    #[test]
    fn scaling_is_monotone(nanos in 1u64..1_000_000_000, a in 0.0f64..2.0, b in 0.0f64..2.0) {
        let d = SimDuration::from_nanos(nanos);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.mul_f64(lo) <= d.mul_f64(hi));
    }

    /// Welford accumulation matches the batch summary for any sample.
    #[test]
    fn online_stats_match_batch(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut online = OnlineStats::new();
        for &v in &values {
            online.push(v);
        }
        let batch = Summary::from_slice(&values).unwrap();
        prop_assert!((online.mean() - batch.mean).abs() < 1e-6 * (1.0 + batch.mean.abs()));
        prop_assert!((online.std_dev() - batch.std_dev).abs() < 1e-5 * (1.0 + batch.std_dev));
        prop_assert_eq!(online.min().unwrap(), batch.min);
        prop_assert_eq!(online.max().unwrap(), batch.max);
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn stats_merge_is_concatenation(
        a in prop::collection::vec(-1e3f64..1e3, 0..100),
        b in prop::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        let mut sall = OnlineStats::new();
        for &v in &a { sa.push(v); sall.push(v); }
        for &v in &b { sb.push(v); sall.push(v); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), sall.count());
        prop_assert!((sa.mean() - sall.mean()).abs() < 1e-9);
        prop_assert!((sa.variance() - sall.variance()).abs() < 1e-6);
    }

    /// The RNG's weighted choice never selects a zero-weight arm and is
    /// deterministic per seed.
    #[test]
    fn weighted_index_support(seed in 0u64..1000, zero_arm in 0usize..4) {
        let mut weights = [1.0f64; 4];
        weights[zero_arm] = 0.0;
        let mut a = DeterministicRng::seed_from(seed);
        let mut b = DeterministicRng::seed_from(seed);
        for _ in 0..64 {
            let ia = a.weighted_index(&weights);
            let ib = b.weighted_index(&weights);
            prop_assert_eq!(ia, ib, "determinism violated");
            prop_assert_ne!(ia, zero_arm, "zero-weight arm selected");
        }
    }

    /// Distribution samples stay in their support.
    #[test]
    fn distribution_supports(seed in 0u64..1000) {
        let mut rng = DeterministicRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.exponential(3.0) >= 0.0);
            prop_assert!(rng.lognormal(-1.0, 2.0) > 0.0);
            prop_assert!(rng.jitter(0.3) >= 0.0);
            let u = rng.uniform(2.0, 5.0);
            prop_assert!((2.0..5.0).contains(&u));
        }
    }
}
