//! The live self-check: the workspace must lint clean under its own
//! checked-in policy, and the checked-in machine-readable report must
//! byte-match what the tool produces today — a suppression cannot be
//! added, dropped or reworded without the diff showing up in
//! `detlint-report.json`.

use std::fs;
use std::path::PathBuf;

use pipefill_detlint::{analyze_workspace, policy, report};

fn workspace_root() -> PathBuf {
    [env!("CARGO_MANIFEST_DIR"), "..", ".."].iter().collect()
}

#[test]
fn workspace_is_violation_free() {
    let root = workspace_root();
    let text = fs::read_to_string(root.join("detlint.toml")).expect("detlint.toml");
    let policy = policy::parse(&text).expect("policy parses");
    let analysis = analyze_workspace(&root, &policy).expect("workspace walks");
    assert!(
        analysis.violations.is_empty(),
        "detlint violations in the live workspace — fix the code or add an audited \
         allow annotation:\n{}",
        report::to_human(&analysis)
    );
}

#[test]
fn checked_in_report_matches_the_live_tree() {
    let root = workspace_root();
    let text = fs::read_to_string(root.join("detlint.toml")).expect("detlint.toml");
    let policy = policy::parse(&text).expect("policy parses");
    let analysis = analyze_workspace(&root, &policy).expect("workspace walks");
    let fresh = report::to_json(&analysis);
    let recorded =
        fs::read_to_string(root.join("detlint-report.json")).expect("detlint-report.json");
    assert_eq!(
        recorded, fresh,
        "detlint-report.json is stale — regenerate with \
         `cargo run -p pipefill-detlint --bin detlint -- --format json --write-report \
         detlint-report.json` and review the suppression diff"
    );
}
