//! Fixture coverage for every detlint rule: each rule directory under
//! `tests/fixtures/` carries a violating, a clean and a suppressed
//! snippet, and the engine must classify all three exactly. The
//! `allow-audit` meta rule gets its own pair (its findings cannot be
//! suppressed — an allow of an unknown rule is itself a finding).

use std::fs;
use std::path::PathBuf;

use pipefill_detlint::{
    analyze_source, policy, FileAnalysis, Tier, ALLOW_AUDIT, DEFAULT_POLICY_FOR_TESTS, RULE_IDS,
};

fn fixture(rule: &str, name: &str) -> String {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "fixtures", rule, name]
        .iter()
        .collect();
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The virtual repo path a fixture is linted under: `metrics-cast` is
/// file-scoped, so its fixtures lint as a `metrics.rs`.
fn virtual_path(rule: &str) -> &'static str {
    if rule == "metrics-cast" {
        "crates/x/src/metrics.rs"
    } else {
        "crates/x/src/lib.rs"
    }
}

fn lint(rule: &str, name: &str) -> FileAnalysis {
    let policy = policy::parse(DEFAULT_POLICY_FOR_TESTS).expect("test policy parses");
    analyze_source(
        virtual_path(rule),
        &fixture(rule, name),
        Tier::Deterministic,
        &policy,
    )
}

#[test]
fn every_rule_has_a_firing_violating_fixture() {
    for rule in RULE_IDS {
        let a = lint(rule, "violating.rs");
        assert!(
            a.violations.iter().any(|v| v.rule == *rule),
            "{rule}/violating.rs produced no {rule} finding: {:?}",
            a.violations
        );
        assert!(
            a.suppressions.is_empty(),
            "{rule}/violating.rs must not be suppressed: {:?}",
            a.suppressions
        );
    }
}

#[test]
fn every_rule_has_a_clean_fixture() {
    for rule in RULE_IDS {
        let a = lint(rule, "clean.rs");
        assert!(
            a.violations.is_empty(),
            "{rule}/clean.rs must lint clean: {:?}",
            a.violations
        );
        assert!(a.suppressions.is_empty(), "{rule}/clean.rs needs no allows");
    }
}

#[test]
fn every_rule_has_a_suppressed_fixture() {
    for rule in RULE_IDS {
        let a = lint(rule, "suppressed.rs");
        assert!(
            a.violations.is_empty(),
            "{rule}/suppressed.rs must be fully suppressed: {:?}",
            a.violations
        );
        assert!(
            a.suppressions.iter().any(|s| s.rule == *rule),
            "{rule}/suppressed.rs must record a {rule} suppression"
        );
        for s in &a.suppressions {
            assert!(
                !s.reason.is_empty(),
                "recorded suppressions carry their reason"
            );
        }
    }
}

#[test]
fn allow_audit_rejects_rotten_annotations() {
    let a = lint(ALLOW_AUDIT, "violating.rs");
    let audits: Vec<&str> = a
        .violations
        .iter()
        .filter(|v| v.rule == ALLOW_AUDIT)
        .map(|v| v.message.as_str())
        .collect();
    assert_eq!(
        audits.len(),
        3,
        "unused + unknown rule + missing reason: {audits:?}"
    );
    assert!(audits.iter().any(|m| m.contains("unused")), "{audits:?}");
    assert!(
        audits
            .iter()
            .any(|m| m.contains("unknown rule 'made-up-rule'")),
        "{audits:?}"
    );
    assert!(
        audits.iter().any(|m| m.contains("missing its reason")),
        "{audits:?}"
    );
}

#[test]
fn allow_audit_accepts_a_well_formed_used_annotation() {
    let a = lint(ALLOW_AUDIT, "clean.rs");
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.suppressions.len(), 1);
    assert_eq!(a.suppressions[0].rule, "hash-iter");
}

/// The *live* workspace policy (not just the test policy) must keep
/// every rule armed for deterministic-tier crates: seeding any
/// violating fixture into such a crate must produce a violation.
#[test]
fn workspace_policy_catches_every_seeded_fixture() {
    let root: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", ".."].iter().collect();
    let text = fs::read_to_string(root.join("detlint.toml")).expect("workspace policy");
    let policy = policy::parse(&text).expect("workspace policy parses");
    for rule in RULE_IDS {
        let seeded_as = if *rule == "metrics-cast" {
            "crates/core/src/metrics.rs"
        } else {
            "crates/core/src/seeded.rs"
        };
        let a = analyze_source(
            seeded_as,
            &fixture(rule, "violating.rs"),
            Tier::Deterministic,
            &policy,
        );
        assert!(
            a.violations.iter().any(|v| v.rule == *rule),
            "workspace policy no longer catches {rule} in a deterministic crate"
        );
    }
}
