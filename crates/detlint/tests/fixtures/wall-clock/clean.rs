//! Fixture: time only advances on the simulated clock; Duration is a
//! pure value type and carries no ambient reads.
use std::time::Duration;

pub fn horizon() -> Duration {
    Duration::from_secs(3600)
}
