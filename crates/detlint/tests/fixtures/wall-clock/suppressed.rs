//! Fixture: an audited exception — a progress heartbeat that never
//! reaches simulation state.
pub fn heartbeat_nanos() -> u128 {
    // detlint: allow(wall-clock) — operator progress display only, result never enters sim state
    std::time::Instant::now().elapsed().as_nanos()
}
