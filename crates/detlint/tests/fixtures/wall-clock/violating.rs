//! Fixture: host time read inside simulation state.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
