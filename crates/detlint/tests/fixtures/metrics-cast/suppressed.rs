//! Fixture (linted as metrics.rs): an audited exception.
pub fn bucket(secs: f64) -> usize {
    // detlint: allow(metrics-cast) — secs clamped to [0, 86400] one line above, cannot truncate
    secs as usize
}
