//! Fixture (linted as metrics.rs): a float-to-int cast in an
//! accounting path truncates silently.
pub fn lost_flops(total: f64) -> u64 {
    total as u64
}
