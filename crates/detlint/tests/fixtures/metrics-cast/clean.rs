//! Fixture (linted as metrics.rs): widen losslessly instead.
pub fn lost_flops(count: u32) -> u64 {
    u64::from(count)
}

pub fn utilization(done: u64, total: u64) -> f64 {
    done as f64 / total as f64
}
