//! Fixture: every way an annotation itself can rot.

// detlint: allow(hash-iter) — nothing on the next line iterates anything
pub fn fixed_long_ago() {}

pub fn unknown_rule() {} // detlint: allow(made-up-rule) — no such rule

pub fn reasonless() {} // detlint: allow(wall-clock)
