//! Fixture: a well-formed, in-use annotation produces no audit noise.
use std::collections::HashMap;

pub struct Cache {
    plans: HashMap<u64, u64>,
}

impl Cache {
    pub fn total(&self) -> u64 {
        // detlint: allow(hash-iter) — u64 sum is order-independent
        self.plans.values().sum()
    }
}
