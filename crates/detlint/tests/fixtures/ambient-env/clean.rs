//! Fixture: the value is plumbed through configuration instead.
pub struct Config {
    pub runner_class: String,
}

pub fn runner_class(cfg: &Config) -> &str {
    &cfg.runner_class
}
