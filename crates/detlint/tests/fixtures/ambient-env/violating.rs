//! Fixture: an environment lookup makes the run host-dependent.
pub fn runner_class() -> String {
    std::env::var("PERF_RUNNER_CLASS").unwrap_or_default()
}
