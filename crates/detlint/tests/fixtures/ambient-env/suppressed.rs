//! Fixture: an audited exception.
pub fn scratch_dir() -> std::path::PathBuf {
    // detlint: allow(ambient-env) — scratch path for a debug dump, never read back into the sim
    std::env::temp_dir()
}
