//! Fixture: all randomness flows through the seeded in-tree RNG.
use pipefill_sim_core::rng::DeterministicRng;

pub fn jitter(rng: &mut DeterministicRng) -> f64 {
    rng.next_f64()
}
