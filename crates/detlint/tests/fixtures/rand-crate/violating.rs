//! Fixture: unseeded ambient randomness.
use rand::Rng;

pub fn jitter() -> f64 {
    rand::thread_rng().gen()
}
