//! Fixture: an audited exception (hypothetical — nothing in-tree
//! should ever need one for this rule).
// detlint: allow(rand-crate) — quarantined example generator, output only feeds docs
use rand::Rng;
