//! Fixture: an audited exception — inputs validated finite upstream.
pub fn order(xs: &mut [f64]) {
    // detlint: allow(float-sort) — weights validated finite at construction, NaN unreachable
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
