//! Fixture: total_cmp is a total order over all bit patterns.
pub fn order(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

pub fn pick(xs: &[f64]) -> Option<&f64> {
    xs.iter().max_by(|a, b| a.total_cmp(b))
}
