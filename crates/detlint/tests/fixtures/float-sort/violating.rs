//! Fixture: partial_cmp().unwrap() panics on NaN and is not a total
//! order — equal-comparing elements can land in input order.
pub fn order(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn pick(xs: &[f64]) -> Option<&f64> {
    xs.iter()
        .max_by(|a, b| a.partial_cmp(b).expect("finite"))
}
