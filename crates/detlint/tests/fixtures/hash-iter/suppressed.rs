//! Fixture: an audited exception — the iteration feeds a commutative
//! integer reduction, so order cannot reach the result.
use std::collections::HashMap;

pub struct Cache {
    plans: HashMap<u64, u64>,
}

impl Cache {
    pub fn total(&self) -> u64 {
        // detlint: allow(hash-iter) — u64 sum is order-independent; reviewed 2026-08
        self.plans.values().sum()
    }
}
