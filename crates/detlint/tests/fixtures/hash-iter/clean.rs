//! Fixture: the ordered map gives every visit a deterministic order;
//! point lookups on a HashMap are fine too.
use std::collections::{BTreeMap, HashMap};

pub struct Cache {
    plans: BTreeMap<u64, f64>,
    lookup: HashMap<u64, f64>,
}

impl Cache {
    pub fn total(&self) -> f64 {
        self.plans.values().sum()
    }

    pub fn get(&self, k: u64) -> Option<f64> {
        self.lookup.get(&k).copied()
    }
}
