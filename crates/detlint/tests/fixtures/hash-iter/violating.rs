//! Fixture: summing over a HashMap's values observes the hasher's
//! visit order — float addition is not associative, so two runs can
//! disagree in the last bits.
use std::collections::HashMap;

pub struct Cache {
    plans: HashMap<u64, f64>,
}

impl Cache {
    pub fn total(&self) -> f64 {
        self.plans.values().sum()
    }

    pub fn drop_stale(&mut self) {
        self.plans.retain(|_, v| *v > 0.0);
    }
}
