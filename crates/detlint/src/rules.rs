//! The determinism rules and the line-level engine that applies them.
//!
//! Each rule is syntactic but token-aware: it runs over lexed lines
//! ([`crate::lexer::Line`]), so string literals and comments can never
//! trigger it. The engine also resolves suppression annotations (see
//! [`crate::suppress`]) and emits `allow-audit` findings for annotations
//! that are malformed, name an unknown rule, or no longer cover a real
//! finding — a suppression cannot rot silently.

use std::collections::BTreeSet;

use crate::lexer::{is_ident_char, Line};
use crate::policy::{Policy, Tier};
use crate::suppress::{parse_annotations, Annotation};

/// Every content rule the engine knows, in report order.
///
/// * `hash-iter` — iteration over a `HashMap`/`HashSet` (`for … in`,
///   `.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()` …):
///   visit order is seeded per-process, so any observable effect breaks
///   byte-identical replay.
/// * `wall-clock` — `std::time::Instant`/`SystemTime` reads or
///   `std::thread::current()`: real time and thread identity must never
///   reach simulation state.
/// * `ambient-env` — `std::env::*` / `std::process::id()`: environment
///   lookups make a run depend on the host.
/// * `rand-crate` — the `rand` crate: all randomness must flow through
///   the in-tree seeded `DeterministicRng`.
/// * `float-sort` — `partial_cmp(..).unwrap()/expect()` comparators: a
///   NaN panics mid-run; comparators must use `total_cmp` (or a
///   validated total order).
/// * `metrics-cast` — `as <integer>` casts in accounting paths
///   (policy-scoped to `metrics.rs`): silent truncation corrupts the
///   numbers every golden pins.
pub const RULE_IDS: &[&str] = &[
    "hash-iter",
    "wall-clock",
    "ambient-env",
    "rand-crate",
    "float-sort",
    "metrics-cast",
];

/// The meta-rule auditing the suppression annotations themselves.
pub const ALLOW_AUDIT: &str = "allow-audit";

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (one of [`RULE_IDS`] or [`ALLOW_AUDIT`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

/// One accepted suppression: a finding explicitly allowed in source.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppression {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the *suppressed code* (not the annotation).
    pub line: usize,
    /// Rule id being allowed.
    pub rule: String,
    /// The reviewer-facing justification from the annotation.
    pub reason: String,
}

/// Result of linting one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileAnalysis {
    /// Violations (unsuppressed findings + annotation-audit failures).
    pub violations: Vec<Finding>,
    /// Findings covered by a valid annotation.
    pub suppressions: Vec<Suppression>,
}

/// Lints one file's lexed lines under `policy`, for a crate in `tier`.
///
/// `file` is the repo-relative path used in reports; its final
/// component also drives per-file rule scoping (`metrics-cast`).
pub fn check_file(file: &str, tier: Tier, policy: &Policy, lines: &[Line]) -> FileAnalysis {
    let file_name = file.rsplit('/').next().unwrap_or(file);
    let hash_idents = collect_hash_idents(lines);
    let mut raw: Vec<Finding> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut fire = |rule: &str, message: String| {
            if policy.applies(rule, tier, file_name, line.in_test) {
                raw.push(Finding {
                    file: file.to_string(),
                    line: lineno,
                    rule: rule.to_string(),
                    message,
                });
            }
        };
        check_hash_iter(lines, idx, &hash_idents, &mut fire);
        check_wall_clock(&line.code, &mut fire);
        check_ambient_env(&line.code, &mut fire);
        check_rand_crate(&line.code, &mut fire);
        check_float_sort(lines, idx, &mut fire);
        check_metrics_cast(&line.code, &mut fire);
    }
    resolve_suppressions(file, tier, lines, raw)
}

/// Applies annotations to raw findings, auditing the annotations
/// themselves.
fn resolve_suppressions(file: &str, tier: Tier, lines: &[Line], raw: Vec<Finding>) -> FileAnalysis {
    let annotations = parse_annotations(lines);
    let mut analysis = FileAnalysis::default();
    let mut used: BTreeSet<usize> = BTreeSet::new(); // indices into `annotations`
    for finding in raw {
        let slot = annotations.iter().enumerate().find(|(_, a)| {
            a.covers == finding.line && a.rule.as_deref() == Some(finding.rule.as_str())
        });
        match slot {
            Some((i, a)) => {
                used.insert(i);
                analysis.suppressions.push(Suppression {
                    file: file.to_string(),
                    line: finding.line,
                    rule: finding.rule,
                    reason: a.reason.clone().unwrap_or_default(),
                });
            }
            None => analysis.violations.push(finding),
        }
    }
    // Exempt crates get no annotation audit either.
    if tier != Tier::Exempt {
        for (i, a) in annotations.iter().enumerate() {
            audit_annotation(file, a, used.contains(&i), &mut analysis.violations);
        }
    }
    analysis.violations.sort();
    analysis.suppressions.sort();
    analysis
}

/// Emits `allow-audit` violations for a bad or unused annotation.
fn audit_annotation(file: &str, a: &Annotation, used: bool, out: &mut Vec<Finding>) {
    let mut fail = |message: String| {
        out.push(Finding {
            file: file.to_string(),
            line: a.line,
            rule: ALLOW_AUDIT.to_string(),
            message,
        });
    };
    let Some(rule) = a.rule.as_deref() else {
        fail("malformed allow annotation: could not read a rule id".to_string());
        return;
    };
    if !RULE_IDS.contains(&rule) {
        fail(format!(
            "allow annotation names unknown rule '{rule}' (known: {})",
            RULE_IDS.join(", ")
        ));
        return;
    }
    if a.reason.as_deref().is_none_or(str::is_empty) {
        fail(format!(
            "allow({rule}) annotation is missing its reason — write \
             `detlint: allow({rule}) — <why this is deterministic>`"
        ));
        return;
    }
    if !used {
        // An annotation that suppresses nothing: either the code was
        // fixed (delete the annotation) or the rule no longer fires
        // there (the policy changed). Either way it must not linger.
        fail(format!(
            "unused allow({rule}) annotation: no {rule} finding on the line it covers"
        ));
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` values in this
/// file: struct fields, `let` bindings, params (`name: HashMap<…>`) and
/// direct constructions (`let name = HashMap::new()`), plus identifiers
/// typed with a local alias (`type PlanCache = HashMap<…>;`).
fn collect_hash_idents(lines: &[Line]) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    let mut aliases: BTreeSet<String> = BTreeSet::new();
    // Pass 1: type aliases whose right-hand side is a hash collection.
    for line in lines {
        let code = &line.code;
        if let Some(rest) = token_tail(code, "type") {
            if let Some((alias, rhs)) = rest.split_once('=') {
                let alias = alias.trim();
                let alias = alias.split('<').next().unwrap_or(alias).trim();
                if rhs_is_hash(rhs.trim()) && !alias.is_empty() {
                    aliases.insert(alias.to_string());
                }
            }
        }
    }
    // Pass 2: bindings.
    for line in lines {
        let code = &line.code;
        // `name: HashMap<…>` / `name: &mut HashSet<…>` / `name: Alias`
        for (pos, _) in code.match_indices(':') {
            // Skip `::` path separators.
            let bytes = code.as_bytes();
            if pos + 1 < bytes.len() && bytes[pos + 1] == b':' {
                continue;
            }
            if pos > 0 && bytes[pos - 1] == b':' {
                continue;
            }
            let Some(name) = ident_before(code, pos) else {
                continue;
            };
            let ty = code[pos + 1..].trim_start();
            if rhs_is_hash(ty) || aliases.iter().any(|a| type_starts_with(ty, a)) {
                idents.insert(name);
            }
        }
        // `let name = HashMap::new()` and friends — every `let` on the
        // line, each scoped to its own statement.
        for rest in token_tails(code, "let") {
            let rest = rest.split(';').next().unwrap_or(rest).trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            if let Some((name, rhs)) = rest.split_once('=') {
                let name = name.trim();
                let name = name.split(':').next().unwrap_or(name).trim();
                let rhs = rhs.trim_start();
                if name.chars().all(is_ident_char)
                    && !name.is_empty()
                    && (rhs_is_hash(rhs) || aliases.iter().any(|a| type_starts_with(rhs, a)))
                {
                    idents.insert(name.to_string());
                }
            }
        }
    }
    idents
}

/// Whether a type or constructor expression denotes a hash collection
/// (optionally behind references / a `std::collections::` path).
fn rhs_is_hash(s: &str) -> bool {
    let s = s
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start();
    let s = s.strip_prefix("std::collections::").unwrap_or(s);
    s.starts_with("HashMap<")
        || s.starts_with("HashSet<")
        || s.starts_with("HashMap::")
        || s.starts_with("HashSet::")
}

/// Whether type text `ty` begins with alias `a` as a whole token.
fn type_starts_with(ty: &str, a: &str) -> bool {
    let ty = ty
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start();
    ty.starts_with(a)
        && ty[a.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c))
}

/// If `code` contains keyword `kw` as a whole token, returns the text
/// after its first occurrence.
fn token_tail<'a>(code: &'a str, kw: &str) -> Option<&'a str> {
    token_tails(code, kw).into_iter().next()
}

/// The text after every whole-token occurrence of keyword `kw`.
fn token_tails<'a>(code: &'a str, kw: &str) -> Vec<&'a str> {
    let mut tails = Vec::new();
    for (pos, m) in code.match_indices(kw) {
        let before_ok = code[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let after = &code[pos + m.len()..];
        let after_ok = after.chars().next().is_some_and(|c| c == ' ');
        if before_ok && after_ok {
            tails.push(after);
        }
    }
    tails
}

/// The identifier ending right before byte offset `pos` (skipping
/// trailing spaces), if any.
fn ident_before(code: &str, pos: usize) -> Option<String> {
    let head = code[..pos].trim_end();
    let start = head
        .rfind(|c: char| !is_ident_char(c))
        .map_or(0, |i| i + c_len(head, i));
    let name = &head[start..];
    (!name.is_empty()
        && name.chars().all(is_ident_char)
        && !name.starts_with(|c: char| c.is_ascii_digit()))
    .then(|| name.to_string())
}

fn c_len(s: &str, i: usize) -> usize {
    s[i..].chars().next().map_or(1, char::len_utf8)
}

/// Iteration-shaped method calls whose visit order is the hasher's.
const HASH_ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".retain(",
    ".into_keys()",
    ".into_values()",
];

fn check_hash_iter(
    lines: &[Line],
    idx: usize,
    hash_idents: &BTreeSet<String>,
    fire: &mut impl FnMut(&str, String),
) {
    let code = &lines[idx].code;
    for method in HASH_ITER_METHODS {
        for (pos, _) in code.match_indices(method) {
            // Receiver on this line, or — for a chain split across
            // lines (`self.allocations\n    .values()`) — the trailing
            // identifier of the nearest preceding code line.
            let recv = ident_before(code, pos).or_else(|| {
                code[..pos].trim().is_empty().then(|| {
                    lines[..idx]
                        .iter()
                        .rev()
                        .find(|l| !l.code.trim().is_empty())
                        .and_then(|l| ident_before(&l.code, l.code.len()))
                })?
            });
            if let Some(recv) = recv {
                if hash_idents.contains(&recv) {
                    fire(
                        "hash-iter",
                        format!(
                            "`{recv}{}` iterates a hash collection in arbitrary order — \
                             use a BTreeMap/BTreeSet, a sorted Vec, or an explicit key order",
                            method.trim_end_matches('(')
                        ),
                    );
                }
            }
        }
    }
    // `for x in &map` / `for x in map` over a known hash binding.
    if let Some(rest) = token_tail(code, "for") {
        if let Some((_, iterable)) = rest.split_once(" in ") {
            let expr = iterable.split('{').next().unwrap_or(iterable).trim();
            let expr = expr
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim_start();
            let expr = expr.strip_prefix("self.").unwrap_or(expr);
            if expr.chars().all(is_ident_char) && hash_idents.contains(expr) {
                fire(
                    "hash-iter",
                    format!(
                        "`for … in {expr}` iterates a hash collection in arbitrary order — \
                         use a BTreeMap/BTreeSet, a sorted Vec, or an explicit key order"
                    ),
                );
            }
        }
    }
}

/// Wall-clock / thread-identity reads.
const WALL_CLOCK_TOKENS: &[&str] = &[
    "std::time::Instant",
    "std::time::SystemTime",
    "time::Instant",
    "time::SystemTime",
    "Instant::now",
    "SystemTime::now",
    "std::thread::current",
    "thread::current",
];

fn check_wall_clock(code: &str, fire: &mut impl FnMut(&str, String)) {
    for token in WALL_CLOCK_TOKENS {
        if contains_token(code, token) {
            fire(
                "wall-clock",
                format!(
                    "`{token}` reads host time or thread identity — simulation state \
                     must only advance on `SimTime`"
                ),
            );
            return;
        }
    }
}

/// Environment / process-identity reads.
const AMBIENT_ENV_TOKENS: &[&str] = &[
    "std::env::",
    "env::var(",
    "env::vars(",
    "env::args(",
    "env::temp_dir(",
    "env::current_dir(",
    "process::id(",
];

fn check_ambient_env(code: &str, fire: &mut impl FnMut(&str, String)) {
    for token in AMBIENT_ENV_TOKENS {
        if contains_token(code, token) {
            fire(
                "ambient-env",
                format!(
                    "`{token}…` makes the result depend on the host environment — \
                     plumb the value through a config instead"
                ),
            );
            return;
        }
    }
}

fn check_rand_crate(code: &str, fire: &mut impl FnMut(&str, String)) {
    if contains_token(code, "rand::")
        || token_tail(code, "use").is_some_and(|t| {
            let t = t.trim_start();
            t == "rand;" || t.starts_with("rand::") || t.starts_with("rand ")
        })
    {
        fire(
            "rand-crate",
            "the `rand` crate is unseeded ambient randomness — use the in-tree \
             `DeterministicRng` (pipefill-sim-core)"
                .to_string(),
        );
    }
}

/// `partial_cmp` whose `Option` is force-unwrapped inside the same
/// statement (this line plus up to two continuation lines): NaN input
/// panics mid-run, and `sort_by` with such a comparator is not a total
/// order.
fn check_float_sort(lines: &[Line], idx: usize, fire: &mut impl FnMut(&str, String)) {
    let code = &lines[idx].code;
    let Some(pos) = code.find("partial_cmp") else {
        return;
    };
    if contains_token(code, "fn partial_cmp") {
        return; // a PartialOrd impl, not a comparator call site
    }
    let mut window = code[pos..].to_string();
    for cont in lines.iter().skip(idx + 1).take(2) {
        if window.contains(';') {
            break;
        }
        window.push_str(&cont.code);
    }
    let stmt = window.split(';').next().unwrap_or(&window);
    if stmt.contains(".unwrap()") || stmt.contains(".expect(") {
        fire(
            "float-sort",
            "`partial_cmp(..).unwrap()/expect(..)` is a partial order that panics on \
             NaN — use `f64::total_cmp` or validate inputs and order totally"
                .to_string(),
        );
    }
}

/// Integer target types of a truncating `as` cast.
const INT_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

fn check_metrics_cast(code: &str, fire: &mut impl FnMut(&str, String)) {
    for (pos, _) in code.match_indices(" as ") {
        let tail = &code[pos + 4..];
        let ty: String = tail.chars().take_while(|&c| is_ident_char(c)).collect();
        if INT_CAST_TARGETS.contains(&ty.as_str()) {
            fire(
                "metrics-cast",
                format!(
                    "`as {ty}` in an accounting path truncates silently — use \
                     `try_from`/`from` or widen the accumulator"
                ),
            );
        }
    }
}

/// Substring match requiring a non-identifier char (or line start)
/// immediately before the match.
fn contains_token(code: &str, token: &str) -> bool {
    for (pos, _) in code.match_indices(token) {
        let ok = pos == 0
            || code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| !is_ident_char(c));
        if ok {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::policy;

    fn det_policy() -> Policy {
        policy::parse(crate::DEFAULT_POLICY_FOR_TESTS).unwrap()
    }

    fn lint(src: &str) -> FileAnalysis {
        check_file(
            "crates/x/src/lib.rs",
            Tier::Deterministic,
            &det_policy(),
            &lex(src),
        )
    }

    fn rules_of(a: &FileAnalysis) -> Vec<&str> {
        a.violations.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn hash_iter_fires_on_declared_maps_only() {
        let src = "struct S { m: HashMap<u32, u32>, v: Vec<u32> }\n\
                   fn f(s: &S) { for x in &s.v {} s.v.iter(); }\n\
                   fn g(s: &S) { s.m.values(); }\n";
        let a = lint(src);
        assert_eq!(rules_of(&a), vec!["hash-iter"]);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn hash_iter_sees_let_bindings_and_for_loops() {
        let src = "fn f() { let seen = HashSet::new(); for x in &seen {} }\n";
        assert_eq!(rules_of(&lint(src)), vec!["hash-iter"]);
        let src = "fn f() { let mut m = std::collections::HashMap::new(); m.drain(); }\n";
        assert_eq!(rules_of(&lint(src)), vec!["hash-iter"]);
    }

    #[test]
    fn hash_iter_sees_type_aliases() {
        let src = "type PlanCache = HashMap<u64, u64>;\n\
                   struct S { plan_cache: PlanCache }\n\
                   fn f(s: &S) { s.plan_cache.keys(); }\n";
        let a = lint(src);
        assert_eq!(rules_of(&a), vec!["hash-iter"]);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn lookup_only_hash_use_is_clean() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &mut S) { s.m.insert(1, 2); s.m.get(&1); s.m.remove(&1); s.m.len(); }\n";
        assert!(lint(src).violations.is_empty());
    }

    #[test]
    fn wall_clock_and_env_and_rand_fire() {
        let a = lint("fn f() { let t = Instant::now(); }\n");
        assert_eq!(rules_of(&a), vec!["wall-clock"]);
        let a = lint("fn f() { let v = std::env::var(\"X\"); }\n");
        assert_eq!(rules_of(&a), vec!["ambient-env"]);
        let a = lint("use rand::Rng;\n");
        assert_eq!(rules_of(&a), vec!["rand-crate"]);
    }

    #[test]
    fn ambient_env_relaxed_in_tests_by_policy() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { std::env::temp_dir(); }\n}\n";
        assert!(lint(src).violations.is_empty());
    }

    #[test]
    fn float_sort_fires_across_continuation_lines() {
        let a = lint("fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n");
        assert_eq!(rules_of(&a), vec!["float-sort"]);
        let a = lint("fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b)\n        .expect(\"finite\"));\n}\n");
        assert_eq!(rules_of(&a), vec!["float-sort"]);
        // total_cmp and PartialOrd impls are fine.
        assert!(
            lint("fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }\n")
                .violations
                .is_empty()
        );
        assert!(lint(
            "fn partial_cmp(&self, o: &Self) -> Option<Ordering> {\n    Some(self.cmp(o))\n}\n"
        )
        .violations
        .is_empty());
    }

    #[test]
    fn metrics_cast_scoped_to_metrics_rs() {
        let src = "fn f(x: f64) -> u64 { x as u64 }\n";
        let p = det_policy();
        let in_metrics = check_file(
            "crates/x/src/metrics.rs",
            Tier::Deterministic,
            &p,
            &lex(src),
        );
        assert_eq!(rules_of(&in_metrics), vec!["metrics-cast"]);
        let elsewhere = check_file("crates/x/src/fleet.rs", Tier::Deterministic, &p, &lex(src));
        assert!(elsewhere.violations.is_empty());
        // Widening float casts are not truncation.
        let widen = check_file(
            "crates/x/src/metrics.rs",
            Tier::Deterministic,
            &p,
            &lex("fn f(x: usize) -> f64 { x as f64 }\n"),
        );
        assert!(widen.violations.is_empty());
    }

    #[test]
    fn driver_tier_relaxes_clock_and_env() {
        let src = "fn f() { Instant::now(); std::env::args(); }\n";
        let a = check_file(
            "crates/cli/src/main.rs",
            Tier::Driver,
            &det_policy(),
            &lex(src),
        );
        assert!(a.violations.is_empty());
        // …but not hash iteration.
        let src = "fn f() { let m = HashMap::new(); for x in &m {} }\n";
        let a = check_file(
            "crates/cli/src/main.rs",
            Tier::Driver,
            &det_policy(),
            &lex(src),
        );
        assert_eq!(rules_of(&a), vec!["hash-iter"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"Instant::now()\"; }\n// Instant::now() in prose\n";
        assert!(lint(src).violations.is_empty());
    }
}
