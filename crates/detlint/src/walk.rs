//! Workspace discovery: which files get linted, under which tier.
//!
//! The walk is policy-driven and *total in both directions*: every
//! crate directory under `<root>/crates` must appear in the policy's
//! `[tiers]` table (a new crate cannot dodge the lint), and every tier
//! entry must correspond to a crate on disk (the policy cannot go
//! stale). The root facade package is linted as the tier entry
//! `pipefill` over `<root>/src`. Only `src/` trees are walked —
//! integration-test and fixture directories host deliberate violations.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::policy::Policy;
use crate::report::Analysis;
use crate::rules;

/// Lints every policy-covered source file under `root`.
///
/// # Errors
///
/// IO failures, a crate directory missing from the policy, or a policy
/// tier entry with no matching crate on disk.
pub fn analyze_workspace(root: &Path, policy: &Policy) -> Result<Analysis, String> {
    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = Vec::new();
    let entries =
        fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        if entry.path().is_dir() {
            crate_names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    crate_names.sort();
    for name in &crate_names {
        if policy.tier_of(name).is_none() {
            return Err(format!(
                "crate '{name}' has no tier in detlint.toml — every crate must be \
                 assigned deterministic, driver or exempt"
            ));
        }
    }
    for name in policy.tiers.keys() {
        let exists = if name == "pipefill" {
            root.join("src").is_dir()
        } else {
            crates_dir.join(name).is_dir()
        };
        if !exists {
            return Err(format!(
                "detlint.toml assigns a tier to '{name}' but no such crate exists — \
                 remove the stale entry"
            ));
        }
    }

    let mut analysis = Analysis::default();
    for name in &crate_names {
        let tier = policy.tier_of(name).expect("checked above");
        let src = crates_dir.join(name).join("src");
        lint_tree(&src, root, tier, policy, &mut analysis)?;
    }
    if let Some(tier) = policy.tier_of("pipefill") {
        lint_tree(&root.join("src"), root, tier, policy, &mut analysis)?;
    }
    analysis.violations.sort();
    analysis.suppressions.sort();
    Ok(analysis)
}

/// Recursively lints every `.rs` file under `dir` (sorted order).
fn lint_tree(
    dir: &Path,
    root: &Path,
    tier: crate::policy::Tier,
    policy: &Policy,
    analysis: &mut Analysis,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            lint_tree(&path, root, tier, policy, analysis)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let source =
                fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let lines = lexer::lex(&source);
            let file = rules::check_file(&rel, tier, policy, &lines);
            analysis.violations.extend(file.violations);
            analysis.suppressions.extend(file.suppressions);
        }
    }
    Ok(())
}
