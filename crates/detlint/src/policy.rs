//! The checked-in `detlint.toml` policy: crate tiers and per-rule
//! applicability.
//!
//! The policy is deliberately *total*: every crate directory under
//! `crates/` (plus the root `pipefill` facade package) must be assigned
//! a tier, and every known rule must be configured — a new crate or a
//! new rule cannot slip in un-audited. The file is a TOML subset in the
//! same spirit as the scenario reader (`crates/scenario/src/toml.rs`):
//! `[section]` headers, `key = value` lines, `#` comments, and — because
//! silent last-write-wins is itself a reproducibility hazard — duplicate
//! keys are rejected with the line of the first occurrence.

use std::collections::BTreeMap;

use crate::rules::RULE_IDS;

/// How strictly a crate is held to the determinism discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Simulation/state crates: results must be byte-identical across
    /// thread counts, runs and hosts. All rules apply.
    Deterministic,
    /// Entry-point crates (CLI, bench harness): may read clocks, env
    /// and argv, but still must not introduce ordering hazards.
    Driver,
    /// Walked but not linted (reserved; no crate uses it today).
    Exempt,
}

impl Tier {
    fn parse(s: &str) -> Result<Tier, String> {
        match s {
            "deterministic" => Ok(Tier::Deterministic),
            "driver" => Ok(Tier::Driver),
            "exempt" => Ok(Tier::Exempt),
            other => Err(format!(
                "unknown tier '{other}' (expected deterministic|driver|exempt)"
            )),
        }
    }

    /// The policy-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Deterministic => "deterministic",
            Tier::Driver => "driver",
            Tier::Exempt => "exempt",
        }
    }
}

/// Per-rule applicability, from a `[rules.<id>]` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleConfig {
    /// Tiers the rule fires in.
    pub tiers: Vec<Tier>,
    /// Whether the rule also fires inside `#[cfg(test)]` code.
    pub in_tests: bool,
    /// When non-empty, the rule only fires in files whose name matches
    /// one of these (exact file-name match, e.g. `metrics.rs`).
    pub files: Vec<String>,
}

/// The parsed policy document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// Crate directory name (or `pipefill` for the root package) → tier.
    pub tiers: BTreeMap<String, Tier>,
    /// Rule id → applicability.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Policy {
    /// Looks up a crate's tier.
    pub fn tier_of(&self, crate_name: &str) -> Option<Tier> {
        self.tiers.get(crate_name).copied()
    }

    /// Whether `rule` applies in `tier` for a file named `file_name`,
    /// on a line that is (`in_test`) or is not test code.
    pub fn applies(&self, rule: &str, tier: Tier, file_name: &str, in_test: bool) -> bool {
        let Some(cfg) = self.rules.get(rule) else {
            return false;
        };
        if tier == Tier::Exempt || !cfg.tiers.contains(&tier) {
            return false;
        }
        if in_test && !cfg.in_tests {
            return false;
        }
        cfg.files.is_empty() || cfg.files.iter().any(|f| f == file_name)
    }
}

/// Parses `detlint.toml`.
///
/// # Errors
///
/// `line N: message` for syntax errors; unknown sections, unknown or
/// unconfigured rules, duplicate keys and bad tier names are all errors.
pub fn parse(text: &str) -> Result<Policy, String> {
    let mut tiers: BTreeMap<String, Tier> = BTreeMap::new();
    let mut rules: BTreeMap<String, RuleConfig> = BTreeMap::new();
    // (section, key) → first-occurrence line, for duplicate reporting.
    let mut seen: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut section: Option<String> = None;
    let mut tiers_section_seen = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let at = |msg: String| format!("line {lineno}: {msg}");
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(at(format!("unterminated section header '{line}'")));
            };
            let name = name.trim();
            if name == "tiers" && !tiers_section_seen {
                tiers_section_seen = true;
            } else if name == "tiers" {
                return Err(at("duplicate section '[tiers]'".into()));
            }
            if name != "tiers" && !name.starts_with("rules.") {
                return Err(at(format!(
                    "unknown section '[{name}]' (expected [tiers] or [rules.<id>])"
                )));
            }
            if let Some(rule) = name.strip_prefix("rules.") {
                if !RULE_IDS.contains(&rule) {
                    return Err(at(format!(
                        "unknown rule '{rule}' (known: {})",
                        RULE_IDS.join(", ")
                    )));
                }
                if rules.contains_key(rule) {
                    return Err(at(format!("duplicate section '[rules.{rule}]'")));
                }
                rules.insert(
                    rule.to_string(),
                    RuleConfig {
                        tiers: Vec::new(),
                        in_tests: true,
                        files: Vec::new(),
                    },
                );
            }
            section = Some(name.to_string());
            continue;
        }
        let Some(current) = section.clone() else {
            return Err(at("keys must follow a section header".into()));
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(at(format!("expected 'key = value', got '{line}'")));
        };
        let key = key.trim().to_string();
        let value = value.trim();
        if let Some(&first) = seen.get(&(current.clone(), key.clone())) {
            return Err(at(format!(
                "duplicate key '{key}' in [{current}] (first set at line {first})"
            )));
        }
        seen.insert((current.clone(), key.clone()), lineno);
        if current == "tiers" {
            let tier = Tier::parse(&parse_string(value).map_err(&at)?).map_err(&at)?;
            tiers.insert(key, tier);
        } else {
            let rule = current.strip_prefix("rules.").expect("checked above");
            let cfg = rules.get_mut(rule).expect("inserted with the section");
            match key.as_str() {
                "tiers" => {
                    let names = parse_string_array(value).map_err(&at)?;
                    cfg.tiers = names
                        .iter()
                        .map(|n| Tier::parse(n))
                        .collect::<Result<_, _>>()
                        .map_err(&at)?;
                }
                "in_tests" => cfg.in_tests = parse_bool(value).map_err(&at)?,
                "files" => cfg.files = parse_string_array(value).map_err(&at)?,
                other => {
                    return Err(at(format!(
                        "unknown rule key '{other}' (expected tiers, in_tests or files)"
                    )))
                }
            }
        }
    }
    for rule in RULE_IDS {
        let Some(cfg) = rules.get(*rule) else {
            return Err(format!(
                "rule '{rule}' is not configured — every known rule needs a [rules.{rule}] section"
            ));
        };
        if cfg.tiers.is_empty() {
            return Err(format!("rule '{rule}' lists no tiers"));
        }
    }
    if tiers.is_empty() {
        return Err("policy has no [tiers] section".into());
    }
    Ok(Policy { tiers, rules })
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got '{value}'"))?;
    if inner.contains('"') {
        return Err(format!("embedded quote in string {value}"));
    }
    Ok(inner.to_string())
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected true or false, got '{other}'")),
    }
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array like [\"a\", \"b\"], got '{value}'"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|e| parse_string(e.trim())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
# tiers
[tiers]
core = "deterministic"
cli = "driver"

[rules.hash-iter]
tiers = ["deterministic", "driver"]

[rules.wall-clock]
tiers = ["deterministic"]

[rules.ambient-env]
tiers = ["deterministic"]
in_tests = false

[rules.rand-crate]
tiers = ["deterministic", "driver"]

[rules.float-sort]
tiers = ["deterministic", "driver"]

[rules.metrics-cast]
tiers = ["deterministic"]
files = ["metrics.rs"]
"#;

    #[test]
    fn parses_a_full_policy() {
        let p = parse(MINI).unwrap();
        assert_eq!(p.tier_of("core"), Some(Tier::Deterministic));
        assert_eq!(p.tier_of("cli"), Some(Tier::Driver));
        assert!(p.applies("hash-iter", Tier::Deterministic, "fleet.rs", false));
        assert!(p.applies("hash-iter", Tier::Driver, "main.rs", false));
        assert!(!p.applies("wall-clock", Tier::Driver, "main.rs", false));
        assert!(!p.applies("ambient-env", Tier::Deterministic, "csv.rs", true));
        assert!(p.applies("metrics-cast", Tier::Deterministic, "metrics.rs", false));
        assert!(!p.applies("metrics-cast", Tier::Deterministic, "fleet.rs", false));
    }

    #[test]
    fn duplicate_keys_are_rejected_with_first_line() {
        let doc = format!("{MINI}\n[tiers]\n");
        let err = parse(&doc).unwrap_err();
        assert!(
            err.contains("duplicate") || err.contains("unknown"),
            "{err}"
        );
        let dup = MINI.replace(
            "core = \"deterministic\"",
            "core = \"deterministic\"\ncore = \"driver\"",
        );
        let err = parse(&dup).unwrap_err();
        assert!(err.contains("duplicate key 'core'"), "{err}");
        assert!(err.contains("first set at line"), "{err}");
    }

    #[test]
    fn missing_rule_config_is_an_error() {
        let truncated = MINI.replace("[rules.metrics-cast]", "[rules.float-sort]");
        let err = parse(&truncated).unwrap_err();
        assert!(
            err.contains("duplicate section") || err.contains("metrics-cast"),
            "{err}"
        );
    }

    #[test]
    fn unknown_rule_and_bad_tier_are_errors() {
        let err = parse("[rules.made-up]\ntiers = [\"deterministic\"]\n").unwrap_err();
        assert!(err.contains("unknown rule 'made-up'"), "{err}");
        let err = parse("[tiers]\ncore = \"golden\"\n").unwrap_err();
        assert!(err.contains("unknown tier 'golden'"), "{err}");
    }
}
