//! The `detlint` bin: lints the workspace, prints `human` or `json`,
//! exits nonzero on violations or a stale checked-in report.
//!
//! ```text
//! detlint [--root DIR] [--policy FILE] [--format human|json]
//!         [--check-report FILE] [--write-report FILE]
//! ```
//!
//! * `--root` — workspace root (default `.`; must contain `crates/`).
//! * `--policy` — policy file (default `<root>/detlint.toml`).
//! * `--format json` — print the machine-readable report to stdout.
//! * `--check-report` — additionally fail (exit 1) when the given
//!   checked-in report does not byte-match the fresh one, so a
//!   suppression cannot be added or dropped without updating the report.
//! * `--write-report` — write the fresh report to the given path.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use pipefill_detlint::{analyze_workspace, policy, report};

struct Args {
    root: PathBuf,
    policy: Option<PathBuf>,
    format: Format,
    check_report: Option<PathBuf>,
    write_report: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        policy: None,
        format: Format::Human,
        check_report: None,
        write_report: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value()?),
            "--policy" => args.policy = Some(PathBuf::from(value()?)),
            "--format" => {
                args.format = match value()?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format '{other}' (human|json)")),
                }
            }
            "--check-report" => args.check_report = Some(PathBuf::from(value()?)),
            "--write-report" => args.write_report = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn run(argv: &[String]) -> Result<bool, String> {
    let args = parse_args(argv)?;
    let policy_path = args
        .policy
        .clone()
        .unwrap_or_else(|| args.root.join("detlint.toml"));
    let policy_text = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("{}: {e}", policy_path.display()))?;
    let policy = policy::parse(&policy_text).map_err(|e| format!("detlint.toml: {e}"))?;
    let analysis = analyze_workspace(&args.root, &policy)?;
    let json = report::to_json(&analysis);
    match args.format {
        Format::Human => print!("{}", report::to_human(&analysis)),
        Format::Json => print!("{json}"),
    }
    if let Some(path) = &args.write_report {
        std::fs::write(path, &json).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let mut ok = analysis.violations.is_empty();
    if let Some(path) = &args.check_report {
        let recorded =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        if recorded != json {
            eprintln!(
                "detlint: {} is stale — the live suppression/violation set changed; \
                 regenerate it with `detlint --format json --write-report {}` and review \
                 the diff",
                path.display(),
                path.display()
            );
            ok = false;
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("detlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
