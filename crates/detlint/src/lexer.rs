//! A hand-rolled line-oriented Rust lexer.
//!
//! The rule engine works on *lines*, but raw source lines are unsafe to
//! pattern-match: a `.keys()` inside a string literal or a code example
//! inside a comment must not trigger a rule, and a suppression
//! annotation lives in comment text that must be recovered exactly. The
//! lexer walks each file once and produces, per physical line:
//!
//! * `code` — the line with comments removed and every string/char
//!   literal collapsed to an empty literal, so rules match only real
//!   code tokens;
//! * `comments` — the text of each comment (without delimiters) that
//!   starts on or spans the line, for suppression parsing;
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item, so
//!   the policy can relax rules for test-only code.
//!
//! The lexer understands line comments, nested block comments, string
//! literals with escapes (including multi-line), raw strings with any
//! hash count, byte strings, and the char-literal/lifetime ambiguity
//! (`'a'` vs `<'a>`). It does not need to be a full Rust lexer — only
//! to never misclassify the token class a rule or suppression reads.

/// One physical source line, classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Code content: comments stripped, literal bodies blanked.
    pub code: String,
    /// Text of comments that begin on this line (delimiters removed,
    /// leading doc-comment markers kept out).
    pub comments: Vec<String>,
    /// True when the line is part of a `#[cfg(test)]` item.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside `/* */`, with nesting depth.
    Block(u32),
    /// Inside a `"…"` string (escapes respected).
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Splits `source` into classified [`Line`]s.
pub fn lex(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for raw in source.lines() {
        let mut code = String::new();
        let mut comments = Vec::new();
        // Block-comment text is collected per line: a multi-line block
        // contributes each line's fragment to that line only, so a
        // suppression annotation attaches to exactly one line.
        let mut block_fragment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            match mode {
                Mode::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        i += 2;
                        if depth == 1 {
                            mode = Mode::Code;
                            comments.push(block_fragment.trim().to_string());
                            block_fragment.clear();
                        } else {
                            mode = Mode::Block(depth - 1);
                            block_fragment.push_str("*/");
                        }
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        i += 2;
                        mode = Mode::Block(depth + 1);
                        block_fragment.push_str("/*");
                    } else {
                        block_fragment.push(chars[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if chars[i] == '\\' {
                        i += 2; // skip the escaped char (may run off the line: \ at EOL)
                    } else if chars[i] == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: strip doc markers, keep the text.
                        let mut j = i + 2;
                        while j < chars.len() && (chars[j] == '/' || chars[j] == '!') {
                            j += 1;
                        }
                        let text: String = chars[j..].iter().collect();
                        comments.push(text.trim().to_string());
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        i += 2;
                        // Skip doc markers `/**` / `/*!`.
                        while i < chars.len() && (chars[i] == '*' || chars[i] == '!') {
                            // A `*/` right here would close an empty comment.
                            if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                                break;
                            }
                            i += 1;
                        }
                    } else if let Some(hashes) = raw_string_at(&chars, i) {
                        // r"…", r#"…"#, br#"…"# …
                        code.push('"');
                        // Advance past prefix, hashes and opening quote.
                        while chars[i] != '"' {
                            i += 1;
                        }
                        i += 1;
                        mode = Mode::RawStr(hashes);
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if c == '\'' {
                        if let Some(end) = char_literal_end(&chars, i) {
                            code.push_str("' '");
                            i = end;
                        } else {
                            // Lifetime marker — code as-is.
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        if matches!(mode, Mode::Block(_)) && !block_fragment.trim().is_empty() {
            // Line ends inside a block comment: expose this line's text
            // for the suppression scan.
            comments.push(block_fragment.trim().to_string());
        }
        lines.push(Line {
            code,
            comments,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    lines
}

/// True when `chars[at..]` holds `hashes` consecutive `#`s (the closer
/// of a raw string).
fn closes_raw(chars: &[char], at: usize, hashes: u32) -> bool {
    let h = hashes as usize;
    chars.len() >= at + h && chars[at..at + h].iter().all(|&c| c == '#')
}

/// Detects a raw-string opener (`r"`, `r#"`, `br##"` …) at `i`,
/// returning its hash count.
fn raw_string_at(chars: &[char], i: usize) -> Option<u32> {
    // Must not be the tail of an identifier (e.g. `for r` vs `var`).
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// If a char literal starts at `i` (which holds `'`), returns the index
/// just past its closing quote; `None` means this is a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let next = *chars.get(i + 1)?;
    if next == '\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        if chars.get(j) == Some(&'u') {
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
        } else {
            j += 1;
        }
        (chars.get(j) == Some(&'\'')).then_some(j + 1)
    } else if chars.get(i + 2) == Some(&'\'') && next != '\'' {
        // Plain 'x'. (`'a` with no closing quote is a lifetime.)
        Some(i + 3)
    } else {
        None
    }
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// State machine marking lines inside `#[cfg(test)]` items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TestState {
    Out,
    /// Saw the attribute; waiting for the item it decorates.
    Pending,
    /// Inside the braced item; region ends when depth returns to this.
    InBlock(i64),
}

fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut state = TestState::Out;
    for line in lines.iter_mut() {
        let started_in = state != TestState::Out;
        let mut entered = false;
        if state == TestState::Out && line.code.contains("#[cfg(test)]") {
            state = TestState::Pending;
            entered = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if state == TestState::Pending {
                        state = TestState::InBlock(depth);
                        entered = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let TestState::InBlock(end) = state {
                        if depth <= end {
                            state = TestState::Out;
                        }
                    }
                }
                // `#[cfg(test)] use …;` — a single braceless item.
                ';' if state == TestState::Pending => {
                    state = TestState::Out;
                    entered = true;
                }
                _ => {}
            }
        }
        line.in_test = started_in || entered || state != TestState::Out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked() {
        let code = code_of("let x = \"map.keys()\";");
        assert_eq!(code, vec!["let x = \"\";"]);
    }

    #[test]
    fn raw_strings_are_blanked_across_lines() {
        let code = code_of("let x = r#\"a\nb.keys()\nc\"#; x.keys()");
        assert_eq!(code, vec!["let x = \"", "", "\"#; x.keys()"]);
    }

    #[test]
    fn line_comments_are_captured() {
        let lines = lex("foo(); // detlint note\n/// doc text\n");
        assert_eq!(lines[0].code, "foo(); ");
        assert_eq!(lines[0].comments, vec!["detlint note"]);
        assert_eq!(lines[1].code, "");
        assert_eq!(lines[1].comments, vec!["doc text"]);
    }

    #[test]
    fn block_comments_strip_code() {
        let lines = lex("a(); /* x.keys() */ b();");
        assert_eq!(lines[0].code, "a();  b();");
        assert_eq!(lines[0].comments, vec!["x.keys()"]);
    }

    #[test]
    fn nested_block_comments() {
        let lines = lex("/* outer /* inner */ still */ code()");
        assert_eq!(lines[0].code, " code()");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let code = code_of("let c = '\"'; fn f<'a>(x: &'a str) {}");
        assert_eq!(code, vec!["let c = ' '; fn f<'a>(x: &'a str) {}"]);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = lex(src);
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let flags: Vec<bool> = lex(src).iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn multiline_string_hides_content() {
        let src = "let s = \"first\nsecond.keys()\nthird\";\nx.f();\n";
        let code = code_of(src);
        assert_eq!(code, vec!["let s = \"", "", "\";", "x.f();"]);
    }
}
