//! `detlint` — the workspace determinism lint.
//!
//! Every headline claim this repo makes — byte-identical results at any
//! `--threads`, fast-forward on/off bit-for-bit equal, degenerate-config
//! conformance across four backends — rests on one invariant: nothing in
//! a simulation crate may observe hash iteration order, wall-clock time,
//! thread identity, the process environment, or unseeded randomness.
//! The proptests enforce that invariant *dynamically* for the seeds they
//! run; this crate proves the discipline *statically*, at CI time, for
//! every line of the workspace.
//!
//! The pipeline: a hand-rolled Rust lexer ([`lexer`]) classifies each
//! source line (code with literals blanked, comment text, test-region
//! membership); the rule engine ([`rules`]) applies repo-specific
//! determinism rules scoped by the checked-in `detlint.toml` policy
//! ([`policy`], crate tiers `deterministic` / `driver` / `exempt`);
//! individual sites are suppressible only via an audited annotation
//! ([`suppress`]) that the tool records in a machine-readable report
//! ([`report`], checked in as `detlint-report.json`). The `detlint` bin
//! exposes `human` and `json` output and exits nonzero on violations.
//!
//! The crate has zero dependencies — it must stay buildable offline and
//! must not depend on anything it audits.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use policy::{Policy, RuleConfig, Tier};
pub use report::{to_human, to_json, Analysis, SCHEMA};
pub use rules::{check_file, FileAnalysis, Finding, Suppression, ALLOW_AUDIT, RULE_IDS};
pub use walk::analyze_workspace;

/// Lints a single source string (fixtures, tests) as repo-relative
/// `file` under `tier`.
pub fn analyze_source(file: &str, source: &str, tier: Tier, policy: &Policy) -> FileAnalysis {
    let lines = lexer::lex(source);
    rules::check_file(file, tier, policy, &lines)
}

/// The canonical rule configuration used by unit and fixture tests: a
/// minimal `[tiers]` table plus the same `[rules.*]` stanzas the
/// checked-in `detlint.toml` carries. Kept here so fixture tests pin
/// rule behavior even if the workspace policy later retunes tiers.
pub const DEFAULT_POLICY_FOR_TESTS: &str = r#"
[tiers]
x = "deterministic"
cli = "driver"

[rules.hash-iter]
tiers = ["deterministic", "driver"]

[rules.wall-clock]
tiers = ["deterministic"]

[rules.ambient-env]
tiers = ["deterministic"]
in_tests = false

[rules.rand-crate]
tiers = ["deterministic", "driver"]

[rules.float-sort]
tiers = ["deterministic", "driver"]

[rules.metrics-cast]
tiers = ["deterministic"]
in_tests = false
files = ["metrics.rs"]
"#;
