//! Suppression annotations: the only sanctioned way to keep code a rule
//! would otherwise reject.
//!
//! The contract (documented in ARCHITECTURE.md):
//!
//! ```text
//! self.audited.keys()  // detlint: allow(hash-iter) — keys copied into a sorted Vec below
//! ```
//!
//! or, on its own line immediately above the offending code:
//!
//! ```text
//! // detlint: allow(hash-iter) — keys copied into a sorted Vec below
//! self.audited.keys()
//! ```
//!
//! The rule id must be a real rule, the reason (after an `—`/`--`/`-`
//! separator) is mandatory, and an annotation that stops matching a
//! finding becomes an `allow-audit` violation itself. Accepted
//! suppressions are recorded in the machine-readable report, so every
//! exception stays greppable and reviewed.

use crate::lexer::Line;

/// The marker an annotation must *start* with (after doc markers).
/// Prose that merely mentions the syntax mid-comment does not count.
const MARKER: &str = "detlint: allow(";

/// One parsed annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// 1-based line the annotation text sits on.
    pub line: usize,
    /// 1-based line of code the annotation covers (same line for a
    /// trailing comment; the next code-bearing line for a standalone
    /// one).
    pub covers: usize,
    /// The rule id inside `allow(…)`, if it could be read.
    pub rule: Option<String>,
    /// The justification after the separator, if present and non-empty.
    pub reason: Option<String>,
}

/// Extracts every annotation from a file's lexed lines.
pub fn parse_annotations(lines: &[Line]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for comment in &line.comments {
            let Some(rest) = comment.trim().strip_prefix(MARKER) else {
                continue;
            };
            let (rule, reason) = match rest.split_once(')') {
                None => (None, None),
                Some((id, tail)) => (Some(id.trim().to_string()), parse_reason(tail)),
            };
            let covers = if line.code.trim().is_empty() {
                next_code_line(lines, idx)
            } else {
                idx + 1
            };
            out.push(Annotation {
                line: idx + 1,
                covers,
                rule,
                reason,
            });
        }
    }
    out
}

/// The reason after `)`: requires a `—`, `--` or `-` separator followed
/// by non-empty text.
fn parse_reason(tail: &str) -> Option<String> {
    let tail = tail.trim_start();
    let body = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix("--"))
        .or_else(|| tail.strip_prefix('-'))?;
    let body = body.trim();
    (!body.is_empty()).then(|| body.to_string())
}

/// 1-based number of the first code-bearing line after `idx`, or the
/// annotation's own line when the file ends first (the audit will then
/// report it unused).
fn next_code_line(lines: &[Line], idx: usize) -> usize {
    lines
        .iter()
        .enumerate()
        .skip(idx + 1)
        .find(|(_, l)| !l.code.trim().is_empty())
        .map_or(idx + 1, |(i, _)| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_annotation_covers_its_own_line() {
        let src = "m.keys(); // detlint: allow(hash-iter) — copied into a sorted Vec\n";
        let a = parse_annotations(&lex(src));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].covers, 1);
        assert_eq!(a[0].rule.as_deref(), Some("hash-iter"));
        assert_eq!(a[0].reason.as_deref(), Some("copied into a sorted Vec"));
    }

    #[test]
    fn standalone_annotation_covers_next_code_line() {
        let src = "// detlint: allow(wall-clock) -- progress display only\n\n    let t = now();\n";
        let a = parse_annotations(&lex(src));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].line, 1);
        assert_eq!(a[0].covers, 3);
        assert_eq!(a[0].reason.as_deref(), Some("progress display only"));
    }

    #[test]
    fn missing_reason_or_rule_is_preserved_for_the_audit() {
        let a = parse_annotations(&lex("x(); // detlint: allow(hash-iter)\n"));
        assert_eq!(a[0].reason, None);
        let a = parse_annotations(&lex("x(); // detlint: allow(hash-iter) —   \n"));
        assert_eq!(a[0].reason, None);
    }

    #[test]
    fn prose_mentions_do_not_annotate() {
        let a = parse_annotations(&lex(
            "// suppress with detlint: allow(hash-iter) — like so\n",
        ));
        assert!(a.is_empty());
    }
}
