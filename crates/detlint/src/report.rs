//! Report rendering: `human` for terminals, `json` for CI and the
//! checked-in `detlint-report.json`.
//!
//! The JSON writer is hand-rolled (same stance as the perf-snapshot
//! writer in `crates/bench`): the dependency policy has no serde_json,
//! and the document is small. Output is fully deterministic — findings
//! and suppressions are sorted by (file, line, rule) — so the checked-in
//! report can be compared byte-for-byte.

use crate::rules::{Finding, Suppression};

/// A whole-workspace lint result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Analysis {
    /// Unsuppressed findings, sorted.
    pub violations: Vec<Finding>,
    /// Accepted suppressions, sorted.
    pub suppressions: Vec<Suppression>,
}

/// Schema version stamped into the JSON document.
pub const SCHEMA: u32 = 1;

/// Renders the machine-readable report (trailing newline included).
pub fn to_json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": {SCHEMA},\n"));
    out.push_str(&format!(
        "  \"violation_count\": {},\n",
        analysis.violations.len()
    ));
    out.push_str(&format!(
        "  \"suppression_count\": {},\n",
        analysis.suppressions.len()
    ));
    out.push_str("  \"violations\": [");
    for (i, v) in analysis.violations.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&v.file),
            v.line,
            json_str(&v.rule),
            json_str(&v.message)
        ));
    }
    out.push_str(if analysis.violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"suppressions\": [");
    for (i, s) in analysis.suppressions.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
            json_str(&s.file),
            s.line,
            json_str(&s.rule),
            json_str(&s.reason)
        ));
    }
    out.push_str(if analysis.suppressions.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

/// Renders the terminal report.
pub fn to_human(analysis: &Analysis) -> String {
    let mut out = String::new();
    for v in &analysis.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            v.file, v.line, v.rule, v.message
        ));
    }
    if !analysis.suppressions.is_empty() {
        out.push_str(&format!(
            "{} audited suppression(s):\n",
            analysis.suppressions.len()
        ));
        for s in &analysis.suppressions {
            out.push_str(&format!(
                "  {}:{}: allow({}) — {}\n",
                s.file, s.line, s.rule, s.reason
            ));
        }
    }
    if analysis.violations.is_empty() {
        out.push_str(&format!(
            "detlint: clean ({} suppression(s) on record)\n",
            analysis.suppressions.len()
        ));
    } else {
        out.push_str(&format!(
            "detlint: {} violation(s)\n",
            analysis.violations.len()
        ));
    }
    out
}

/// JSON string escaping (control chars, quotes, backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Analysis {
        Analysis {
            violations: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "hash-iter".into(),
                message: "`m.keys` iterates \"hash\"".into(),
            }],
            suppressions: vec![Suppression {
                file: "crates/y/src/lib.rs".into(),
                line: 9,
                rule: "wall-clock".into(),
                reason: "display only".into(),
            }],
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let doc = to_json(&sample());
        assert!(doc.contains("\"violation_count\": 1"), "{doc}");
        assert!(doc.contains("\\\"hash\\\""), "{doc}");
        assert!(doc.ends_with("}\n"), "{doc}");
        assert_eq!(doc, to_json(&sample()), "rendering must be deterministic");
    }

    #[test]
    fn empty_analysis_renders_empty_arrays() {
        let doc = to_json(&Analysis::default());
        assert!(doc.contains("\"violations\": []"), "{doc}");
        assert!(doc.contains("\"suppressions\": []"), "{doc}");
    }

    #[test]
    fn human_mode_reports_both_sections() {
        let text = to_human(&sample());
        assert!(
            text.contains("crates/x/src/lib.rs:3: [hash-iter]"),
            "{text}"
        );
        assert!(text.contains("allow(wall-clock) — display only"), "{text}");
        assert!(text.contains("1 violation(s)"), "{text}");
    }
}
