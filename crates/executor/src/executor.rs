//! The per-device fill-job executor state machine.
//!
//! The cluster simulator drives one of these per device: every time the
//! pipeline engine signals a fillable bubble ("bubble synchronization",
//! §4.3), [`FillJobExecutor::on_bubble`] executes the next partition of
//! the plan and reports what ran. The executor also answers the progress
//! queries the Scheduler needs ("the Scheduler knows how long the
//! currently executing fill-jobs will take to complete", §4.4).

use std::sync::Arc;

use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

use crate::job::FillJobSpec;
use crate::plan::ExecutionPlan;

/// What one bubble's execution accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BubbleExecution {
    /// Bubble time consumed (partition duration; context-switch cost was
    /// already budgeted at planning time).
    pub time_used: SimDuration,
    /// FLOPs executed.
    pub flops: f64,
    /// Samples newly completed.
    pub samples_completed: u64,
    /// True if the job reached its sample target during this bubble.
    pub job_finished: bool,
}

impl BubbleExecution {
    /// An execution that did nothing (job already complete or partition
    /// skipped).
    pub fn idle() -> Self {
        BubbleExecution {
            time_used: SimDuration::ZERO,
            flops: 0.0,
            samples_completed: 0,
            job_finished: false,
        }
    }
}

/// A serialized executor position: everything needed to resume a fill job
/// after its device is lost (FreeRide-style preemption — side jobs must
/// survive eviction). Cheap to take (four scalars; the weights live in a
/// host-side checkpoint whose reload cost the simulation charges
/// separately at restart).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorCheckpoint {
    cursor: usize,
    samples_done: u64,
    flops_done: f64,
    bubble_time_used: SimDuration,
}

/// Executes one fill job against one device's bubble cycle.
///
/// The plan is held behind an [`Arc`] so that the many executors a cluster
/// simulation spawns for the same (model, kind, stage) shape share one
/// profiled plan instead of deep-copying it per drawn job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FillJobExecutor {
    job: FillJobSpec,
    plan: Arc<ExecutionPlan>,
    cursor: usize,
    samples_done: u64,
    flops_done: f64,
    bubble_time_used: SimDuration,
}

impl FillJobExecutor {
    /// Binds a job to its chosen plan. Accepts either a bare
    /// [`ExecutionPlan`] or an already-shared `Arc<ExecutionPlan>`.
    pub fn new(job: FillJobSpec, plan: impl Into<Arc<ExecutionPlan>>) -> Self {
        FillJobExecutor {
            job,
            plan: plan.into(),
            cursor: 0,
            samples_done: 0,
            flops_done: 0.0,
            bubble_time_used: SimDuration::ZERO,
        }
    }

    /// The job being executed.
    pub fn job(&self) -> &FillJobSpec {
        &self.job
    }

    /// The plan being followed.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The shared handle to the plan being followed. Two executors whose
    /// handles are [`Arc::ptr_eq`] are provably running the same profiled
    /// plan — steady-state detection uses the pointer as a cheap plan
    /// identity.
    pub fn plan_handle(&self) -> &Arc<ExecutionPlan> {
        &self.plan
    }

    /// Shifts the job's id forward. Steady-state fast-forward advances
    /// ids in closed form when it skips whole cycles: the executor's
    /// behavior never depends on the id, but the id this job eventually
    /// completes under must reflect the draws the skip accounted for.
    pub fn advance_job_id(&mut self, delta: u64) {
        self.job.id.0 += delta;
    }

    /// Position in the plan's partition sequence (total partitions
    /// executed so far; the pending partition is `cursor % partitions`).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Samples completed so far (clamped to the job's target).
    pub fn samples_done(&self) -> u64 {
        self.samples_done
    }

    /// FLOPs executed so far.
    pub fn flops_done(&self) -> f64 {
        self.flops_done
    }

    /// Total bubble time consumed so far.
    pub fn bubble_time_used(&self) -> SimDuration {
        self.bubble_time_used
    }

    /// True once the sample target is reached.
    pub fn is_complete(&self) -> bool {
        self.samples_done >= self.job.samples
    }

    /// Peak memory of the partition that would run if `slot_index` were
    /// offered now — what the executor requests under its memory cap.
    /// `None` if the job is complete or the pending partition targets a
    /// different slot.
    pub fn pending_memory(&self, slot_index: usize) -> Option<pipefill_device::Bytes> {
        if self.is_complete() {
            return None;
        }
        let part = &self.plan.partitions[self.cursor % self.plan.partitions.len()];
        (part.bubble_index == slot_index).then_some(part.memory)
    }

    /// Executes the next partition of the plan (the engine signalled
    /// fillable bubble slot `slot_index` of the cycle). Partitions are
    /// sized for specific bubble slots, so if the pending partition was
    /// planned for a different slot — e.g. the job started mid-cycle —
    /// the executor waits (returns an idle execution) rather than
    /// overrunning a bubble it was not sized for. Calling after
    /// completion is benign and returns an idle execution.
    pub fn on_bubble(&mut self, slot_index: usize) -> BubbleExecution {
        if self.is_complete() {
            return BubbleExecution::idle();
        }
        let part = &self.plan.partitions[self.cursor % self.plan.partitions.len()];
        if part.bubble_index != slot_index {
            return BubbleExecution::idle();
        }
        self.cursor += 1;

        let before = self.samples_done;
        let newly = part.iterations_completed * self.plan.config.batch_size as u64;
        self.samples_done = (before + newly).min(self.job.samples);
        self.flops_done += part.flops;
        self.bubble_time_used += part.duration;

        BubbleExecution {
            time_used: part.duration,
            flops: part.flops,
            samples_completed: self.samples_done - before,
            job_finished: self.is_complete(),
        }
    }

    /// Snapshots the current position. Restoring the snapshot with
    /// [`FillJobExecutor::restore`] rewinds the executor to this point;
    /// progress made after the snapshot is lost — exactly the accounting a
    /// failure-injecting simulation needs for work lost to eviction.
    pub fn checkpoint(&self) -> ExecutorCheckpoint {
        ExecutorCheckpoint {
            cursor: self.cursor,
            samples_done: self.samples_done,
            flops_done: self.flops_done,
            bubble_time_used: self.bubble_time_used,
        }
    }

    /// Rewinds to a previously taken [`checkpoint`](Self::checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint lies *ahead* of the current position —
    /// that would fabricate progress out of thin air.
    pub fn restore(&mut self, ckpt: ExecutorCheckpoint) {
        assert!(
            ckpt.cursor <= self.cursor && ckpt.samples_done <= self.samples_done,
            "cannot restore a checkpoint from the future"
        );
        self.cursor = ckpt.cursor;
        self.samples_done = ckpt.samples_done;
        self.flops_done = ckpt.flops_done;
        self.bubble_time_used = ckpt.bubble_time_used;
    }

    /// Main-job iterations still needed to finish, assuming every future
    /// fillable bubble is delivered — the Scheduler's remaining-time
    /// estimate in iteration units.
    pub fn remaining_main_iterations(&self) -> u64 {
        if self.is_complete() {
            return 0;
        }
        let remaining = self.job.samples - self.samples_done;
        self.plan.main_iterations_for(remaining)
    }

    /// Average TFLOPS achieved over the bubble time actually used — the
    /// Fig. 7a metric for this job.
    pub fn tflops_during_execution(&self) -> f64 {
        let secs = self.bubble_time_used.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.flops_done / secs / 1e12
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutorConfig;
    use crate::plan::plan_best;
    use pipefill_device::{Bytes, DeviceSpec};
    use pipefill_model_zoo::{JobKind, ModelId};

    fn bubbles() -> Vec<(SimDuration, Bytes)> {
        vec![
            (SimDuration::from_millis(1900), Bytes::from_gib_f64(4.5)),
            (SimDuration::from_millis(1000), Bytes::from_gib_f64(4.5)),
        ]
    }

    fn executor_for(samples: u64) -> FillJobExecutor {
        let job = FillJobSpec::new(1, ModelId::BertBase, JobKind::BatchInference, samples);
        let plan = plan_best(
            &job,
            &bubbles(),
            &DeviceSpec::v100(),
            &ExecutorConfig::default(),
        )
        .unwrap();
        FillJobExecutor::new(job, plan)
    }

    /// Drives the executor through the two-slot bubble cycle in order.
    fn drive(ex: &mut FillJobExecutor, rounds: usize) {
        for i in 0..rounds {
            ex.on_bubble(i % 2);
        }
    }

    #[test]
    fn executes_to_completion() {
        let mut ex = executor_for(5_000);
        let mut guard = 0;
        while !ex.is_complete() {
            let r = ex.on_bubble(guard % 2);
            assert!(r.time_used > SimDuration::ZERO || r.samples_completed == 0);
            guard += 1;
            assert!(guard < 1_000_000, "executor never completed");
        }
        assert_eq!(ex.samples_done(), 5_000);
        assert!(ex.flops_done() > 0.0);
        assert!(ex.tflops_during_execution() > 0.0);
    }

    #[test]
    fn final_bubble_clamps_samples() {
        let mut ex = executor_for(10);
        let r = ex.on_bubble(0);
        // The first partition can complete far more than 10 samples, but
        // the count clamps at the job target.
        assert!(r.job_finished);
        assert_eq!(ex.samples_done(), 10);
    }

    #[test]
    fn wrong_slot_waits_instead_of_running() {
        let mut ex = executor_for(1_000_000);
        // The first pending partition targets slot 0; offering slot 1
        // must not execute anything.
        let r = ex.on_bubble(1);
        assert_eq!(r, BubbleExecution::idle());
        assert_eq!(ex.samples_done(), 0);
        let r = ex.on_bubble(0);
        assert!(r.time_used > SimDuration::ZERO);
    }

    #[test]
    fn partition_slots_are_respected_throughout() {
        let mut ex = executor_for(200_000);
        let partitions = ex.plan().partitions.clone();
        let mut executed = 0usize;
        for i in 0..50 {
            let slot = i % 2;
            let before = ex.bubble_time_used();
            let r = ex.on_bubble(slot);
            if r.time_used > SimDuration::ZERO {
                let part = &partitions[executed % partitions.len()];
                assert_eq!(part.bubble_index, slot, "partition ran in wrong slot");
                assert_eq!(ex.bubble_time_used(), before + part.duration);
                executed += 1;
            }
            if ex.is_complete() {
                break;
            }
        }
        assert!(executed > 0);
    }

    #[test]
    fn on_bubble_after_completion_is_idle() {
        let mut ex = executor_for(10);
        let _ = ex.on_bubble(0);
        assert!(ex.is_complete());
        let r = ex.on_bubble(0);
        assert_eq!(r, BubbleExecution::idle());
        assert_eq!(ex.remaining_main_iterations(), 0);
    }

    #[test]
    fn remaining_iterations_decrease_monotonically() {
        let mut ex = executor_for(100_000);
        let mut prev = ex.remaining_main_iterations();
        assert!(prev > 0);
        for i in 0..20 {
            ex.on_bubble(i % 2);
            let now = ex.remaining_main_iterations();
            assert!(now <= prev, "remaining went up: {prev} -> {now}");
            prev = now;
            if ex.is_complete() {
                break;
            }
        }
    }

    #[test]
    fn checkpoint_restore_rewinds_progress() {
        let mut ex = executor_for(200_000);
        drive(&mut ex, 2);
        let ckpt = ex.checkpoint();
        let at_ckpt = (ex.samples_done(), ex.flops_done(), ex.bubble_time_used());
        drive(&mut ex, 6);
        assert!(ex.flops_done() > at_ckpt.1, "no progress after checkpoint");
        ex.restore(ckpt);
        assert_eq!(
            (ex.samples_done(), ex.flops_done(), ex.bubble_time_used()),
            at_ckpt
        );
        // The rewound executor replays the same partitions it lost.
        let r = ex.on_bubble(0);
        assert!(r.time_used > SimDuration::ZERO || r.samples_completed == 0);
    }

    #[test]
    #[should_panic(expected = "checkpoint from the future")]
    fn restoring_a_future_checkpoint_panics() {
        let mut ex = executor_for(200_000);
        drive(&mut ex, 4);
        let future = ex.checkpoint();
        let mut fresh = executor_for(200_000);
        fresh.restore(future);
    }

    #[test]
    fn tflops_is_flops_over_bubble_time() {
        let mut ex = executor_for(100_000);
        drive(&mut ex, 4);
        let expect = ex.flops_done() / ex.bubble_time_used().as_secs_f64() / 1e12;
        assert!((ex.tflops_during_execution() - expect).abs() < 1e-9);
    }
}
