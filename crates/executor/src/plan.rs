//! The Fill Job Execution Plan Algorithm — the paper's Algorithm 1.
//!
//! Given the bubble cycle (the per-iteration sequence of bubble durations
//! and free-memory capacities) and a job profile, the planner:
//!
//! 1. replicates the linearized graph until its total duration approaches
//!    the cycle's total bubble time (Algorithm 1, lines 3–7);
//! 2. greedily packs source nodes of the remaining graph into successive
//!    bubbles without violating each bubble's duration or free-memory
//!    limit (lines 8–18).
//!
//! [`plan_best`] runs this for every feasible configuration (batch size ×
//! technique) and keeps the plan with the highest throughput, which is the
//! Executor's "choose a batch size and create partitions … that maximize
//! the amount of work completed during the pipeline bubbles" (§4.1).

use pipefill_device::{Bytes, DeviceSpec};
use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

use crate::config::{ExecConfig, ExecTechnique, ExecutorConfig};
use crate::job::FillJobSpec;
use crate::profile::{build_profile, JobProfile};

/// One contiguous chunk of graph nodes assigned to one bubble slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Bubble-slot index in the cycle this partition runs in.
    pub bubble_index: usize,
    /// Total execution time of the nodes (already inflated by the
    /// cold-start factor).
    pub duration: SimDuration,
    /// Peak memory across the nodes.
    pub memory: Bytes,
    /// FLOPs executed.
    pub flops: f64,
    /// Number of graph nodes.
    pub node_count: usize,
    /// Fill-job iterations whose final node completes inside this
    /// partition.
    pub iterations_completed: u64,
}

/// Why planning failed for a configuration (or a whole job).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanError {
    /// Some graph node cannot fit in any bubble: either it is longer than
    /// the longest usable bubble or needs more memory than any bubble
    /// offers.
    NodeDoesNotFit,
    /// The bubble cycle has no usable capacity (all bubbles shorter than
    /// the context-switch overhead).
    NoUsableBubbles,
    /// No configuration in the job's menu produced a feasible plan.
    NoFeasibleConfig,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NodeDoesNotFit => write!(f, "a graph node fits no bubble"),
            PlanError::NoUsableBubbles => write!(f, "no usable bubble capacity"),
            PlanError::NoFeasibleConfig => write!(f, "no feasible configuration"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A complete execution plan: partitions mapped cyclically onto the
/// bubble slots of successive main-job iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// The chosen configuration.
    pub config: ExecConfig,
    /// Partitions in execution order.
    pub partitions: Vec<Partition>,
    /// Graph replicas (fill-job iterations) packed per pass.
    pub iterations_per_pass: u64,
    /// Samples completed per pass.
    pub samples_per_pass: u64,
    /// FLOPs executed per pass.
    pub flops_per_pass: f64,
    /// Total bubble time occupied per pass (sum of partition durations,
    /// excluding context-switch overhead).
    pub busy_time_per_pass: SimDuration,
    /// Bubble slots in the cycle (= fillable windows per main-job
    /// iteration).
    pub bubbles_per_iteration: usize,
    /// Main-job iterations one pass spans.
    pub main_iterations_per_pass: u64,
}

impl ExecutionPlan {
    /// Samples completed per main-job iteration — the throughput metric
    /// `plan_best` maximizes.
    pub fn samples_per_main_iteration(&self) -> f64 {
        self.samples_per_pass as f64 / self.main_iterations_per_pass as f64
    }

    /// Main-job iterations needed to process `samples`.
    pub fn main_iterations_for(&self, samples: u64) -> u64 {
        let passes = samples.div_ceil(self.samples_per_pass.max(1));
        passes * self.main_iterations_per_pass
    }
}

/// Alias used throughout: one bubble slot = (usable duration, free memory).
pub type BubbleSlot = (SimDuration, Bytes);

/// Runs Algorithm 1 for one already-built profile.
///
/// # Errors
///
/// See [`PlanError`].
pub fn plan_for_config(
    profile: &JobProfile,
    bubbles: &[BubbleSlot],
    exec: &ExecutorConfig,
) -> Result<ExecutionPlan, PlanError> {
    exec.validate();
    // Usable capacity per bubble: the filled fraction minus switch cost.
    let caps: Vec<BubbleSlot> = bubbles
        .iter()
        .map(|&(d, m)| {
            (
                d.mul_f64(exec.fill_fraction)
                    .saturating_sub(exec.switch_overhead),
                m,
            )
        })
        .collect();
    let total_cap: SimDuration = caps.iter().map(|&(d, _)| d).sum();
    if total_cap.is_zero() {
        return Err(PlanError::NoUsableBubbles);
    }

    // Node durations as executed in bubbles (cold caches).
    let slowdown = 1.0 / exec.cold_start_factor;
    let node_dur: Vec<SimDuration> = profile
        .nodes
        .iter()
        .map(|n| n.duration.mul_f64(slowdown))
        .collect();
    let node_mem: Vec<Bytes> = profile.nodes.iter().map(|n| n.memory).collect();
    let node_flops: Vec<f64> = profile.nodes.iter().map(|n| n.flops).collect();
    let graph_dur: SimDuration = node_dur.iter().copied().sum();

    // Every node must fit in at least one bubble (duration and memory in
    // the same bubble).
    for (d, m) in node_dur.iter().zip(&node_mem) {
        if !caps.iter().any(|&(cd, cm)| *d <= cd && *m <= cm) {
            return Err(PlanError::NodeDoesNotFit);
        }
    }

    // Lines 3–7: replicate the graph while another copy still fits.
    let mut replicas = 1u64;
    let mut planned = graph_dur;
    while planned + graph_dur < total_cap {
        replicas += 1;
        planned += graph_dur;
    }
    let n_nodes = profile.nodes.len();
    let total_nodes = n_nodes * replicas as usize;

    // Lines 8–18: greedy packing into cyclic bubbles. `slot_steps` counts
    // every bubble slot consumed (including ones skipped for memory), so
    // the pass's main-iteration span is exact.
    let mut partitions = Vec::new();
    let mut next = 0usize; // index into the replicated node sequence
    let mut bubble_i = 0usize;
    let mut empty_streak = 0usize;
    let mut slot_steps = 0u64;
    while next < total_nodes {
        let (cap_d, cap_m) = caps[bubble_i];
        let mut dur = SimDuration::ZERO;
        let mut mem = Bytes::ZERO;
        let mut flops = 0.0;
        let mut count = 0usize;
        let mut iterations = 0u64;
        while next < total_nodes {
            let k = next % n_nodes;
            if dur + node_dur[k] > cap_d || node_mem[k] > cap_m {
                break;
            }
            dur += node_dur[k];
            mem = mem.max(node_mem[k]);
            flops += node_flops[k];
            count += 1;
            if k == n_nodes - 1 {
                iterations += 1;
            }
            next += 1;
        }
        if count == 0 {
            empty_streak += 1;
            // A full cycle without progress means the head node fits no
            // bubble under current occupancy — impossible by the
            // feasibility pre-check unless all bubbles were tried.
            if empty_streak >= caps.len() {
                return Err(PlanError::NodeDoesNotFit);
            }
        } else {
            empty_streak = 0;
            partitions.push(Partition {
                bubble_index: bubble_i,
                duration: dur,
                memory: mem,
                flops,
                node_count: count,
                iterations_completed: iterations,
            });
        }
        slot_steps += 1;
        bubble_i = (bubble_i + 1) % caps.len();
    }
    let main_iterations = slot_steps.div_ceil(caps.len() as u64).max(1);

    Ok(ExecutionPlan {
        config: profile.config,
        iterations_per_pass: replicas,
        samples_per_pass: replicas * profile.samples_per_iteration,
        flops_per_pass: partitions.iter().map(|p| p.flops).sum(),
        busy_time_per_pass: partitions.iter().map(|p| p.duration).sum(),
        bubbles_per_iteration: caps.len(),
        main_iterations_per_pass: main_iterations,
        partitions,
    })
}

/// Builds profiles for every configuration in the job's menu, plans each,
/// and returns the feasible plan with the most samples per main-job
/// iteration.
///
/// # Errors
///
/// [`PlanError::NoFeasibleConfig`] if nothing fits.
pub fn plan_best(
    job: &FillJobSpec,
    bubbles: &[BubbleSlot],
    device: &DeviceSpec,
    exec: &ExecutorConfig,
) -> Result<ExecutionPlan, PlanError> {
    let model = job.model_graph();
    let mut best: Option<ExecutionPlan> = None;
    for &batch_size in &job.valid_batch_sizes {
        for &technique in ExecTechnique::applicable(job.kind) {
            let profile = build_profile(
                &model,
                job.kind,
                ExecConfig {
                    batch_size,
                    technique,
                },
                device,
            );
            let Ok(plan) = plan_for_config(&profile, bubbles, exec) else {
                continue;
            };
            // Maximize throughput; break sample ties toward the plan
            // executing more FLOPs (e.g. prefer a bigger checkpointed
            // batch over a small plain one at equal sample rate).
            let key = |p: &ExecutionPlan| {
                (
                    p.samples_per_main_iteration(),
                    p.flops_per_pass / p.main_iterations_per_pass as f64,
                )
            };
            if best.as_ref().is_none_or(|b| key(&plan) > key(b)) {
                best = Some(plan);
            }
        }
    }
    best.ok_or(PlanError::NoFeasibleConfig)
}

/// Ablation baseline: no partitioning — the whole fill-job iteration must
/// fit inside a single bubble or the config is infeasible. This is what a
/// bubble-filler without Algorithm 1 could do.
///
/// # Errors
///
/// Same conditions as [`plan_for_config`], with the stricter whole-graph
/// fit requirement.
pub fn plan_whole_graph_only(
    profile: &JobProfile,
    bubbles: &[BubbleSlot],
    exec: &ExecutorConfig,
) -> Result<ExecutionPlan, PlanError> {
    exec.validate();
    let slowdown = 1.0 / exec.cold_start_factor;
    let graph_dur: SimDuration = profile
        .nodes
        .iter()
        .map(|n| n.duration.mul_f64(slowdown))
        .sum();
    let peak = profile.peak_memory();
    let caps: Vec<BubbleSlot> = bubbles
        .iter()
        .map(|&(d, m)| {
            (
                d.mul_f64(exec.fill_fraction)
                    .saturating_sub(exec.switch_overhead),
                m,
            )
        })
        .collect();
    let fitting: Vec<usize> = caps
        .iter()
        .enumerate()
        .filter(|&(_, &(d, m))| graph_dur <= d && peak <= m)
        .map(|(i, _)| i)
        .collect();
    if fitting.is_empty() {
        return Err(PlanError::NodeDoesNotFit);
    }
    // One whole iteration per fitting bubble per cycle.
    let partitions: Vec<Partition> = fitting
        .iter()
        .map(|&i| Partition {
            bubble_index: i,
            duration: graph_dur,
            memory: peak,
            flops: profile.iteration_flops(),
            node_count: profile.nodes.len(),
            iterations_completed: 1,
        })
        .collect();
    let iterations = partitions.len() as u64;
    Ok(ExecutionPlan {
        config: profile.config,
        iterations_per_pass: iterations,
        samples_per_pass: iterations * profile.samples_per_iteration,
        flops_per_pass: partitions.iter().map(|p| p.flops).sum(),
        busy_time_per_pass: partitions.iter().map(|p| p.duration).sum(),
        bubbles_per_iteration: caps.len(),
        main_iterations_per_pass: 1,
        partitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NodeProfile;
    use pipefill_model_zoo::{JobKind, ModelId};

    fn exec() -> ExecutorConfig {
        ExecutorConfig {
            fill_fraction: 1.0,
            cold_start_factor: 1.0,
            switch_overhead: SimDuration::ZERO,
        }
    }

    fn uniform_profile(nodes: usize, ms: u64, mem_mib: u64) -> JobProfile {
        JobProfile {
            config: ExecConfig {
                batch_size: 4,
                technique: ExecTechnique::Plain,
            },
            nodes: (0..nodes)
                .map(|_| NodeProfile {
                    duration: SimDuration::from_millis(ms),
                    memory: Bytes::from_mib(mem_mib),
                    flops: 1.0e9,
                })
                .collect(),
            samples_per_iteration: 4,
        }
    }

    fn slots(spec: &[(u64, u64)]) -> Vec<BubbleSlot> {
        spec.iter()
            .map(|&(ms, gib)| (SimDuration::from_millis(ms), Bytes::from_gib(gib)))
            .collect()
    }

    #[test]
    fn partitions_respect_bubble_durations() {
        // Graph: 10 nodes × 30 ms = 300 ms. Bubbles: 100 ms and 65 ms.
        let profile = uniform_profile(10, 30, 100);
        let plan = plan_for_config(&profile, &slots(&[(100, 4), (65, 4)]), &exec()).unwrap();
        for p in &plan.partitions {
            let cap = if p.bubble_index == 0 { 100 } else { 65 };
            assert!(
                p.duration <= SimDuration::from_millis(cap),
                "partition {p:?} exceeds bubble {cap} ms"
            );
        }
        // All nodes of all replicas are packed.
        let total: usize = plan.partitions.iter().map(|p| p.node_count).sum();
        assert_eq!(total, 10 * plan.iterations_per_pass as usize);
    }

    #[test]
    fn replication_fills_available_time() {
        // Graph 100 ms; cycle 1000 ms => Algorithm 1 lines 3-7 replicate
        // while dur(F') + dur(F) < ΣB: 9 replicas (900 + 100 !< 1000).
        let profile = uniform_profile(10, 10, 10);
        let plan = plan_for_config(&profile, &slots(&[(1000, 4)]), &exec()).unwrap();
        assert_eq!(plan.iterations_per_pass, 9);
        assert_eq!(plan.samples_per_pass, 9 * 4);
    }

    #[test]
    fn memory_constraint_defers_to_fitting_bubble() {
        // Node needs 3 GiB; bubble 0 offers 1 GiB, bubble 1 offers 4 GiB.
        let profile = uniform_profile(4, 10, 3 * 1024);
        let plan = plan_for_config(&profile, &slots(&[(1000, 1), (1000, 4)]), &exec()).unwrap();
        for p in &plan.partitions {
            assert_eq!(p.bubble_index, 1, "all work must land in the 4 GiB bubble");
        }
    }

    #[test]
    fn oversized_node_is_rejected() {
        // 200 ms node, longest bubble 100 ms.
        let profile = uniform_profile(1, 200, 10);
        assert_eq!(
            plan_for_config(&profile, &slots(&[(100, 4), (50, 4)]), &exec()),
            Err(PlanError::NodeDoesNotFit)
        );
        // 8 GiB node, biggest bubble 4 GiB.
        let profile = uniform_profile(1, 10, 8 * 1024);
        assert_eq!(
            plan_for_config(&profile, &slots(&[(100, 4)]), &exec()),
            Err(PlanError::NodeDoesNotFit)
        );
    }

    #[test]
    fn zero_capacity_cycle_is_rejected() {
        let profile = uniform_profile(2, 10, 10);
        let tiny = ExecutorConfig {
            fill_fraction: 0.5,
            cold_start_factor: 1.0,
            switch_overhead: SimDuration::from_millis(100),
        };
        // 100 ms bubble × 0.5 − 100 ms switch = 0 usable.
        assert_eq!(
            plan_for_config(&profile, &slots(&[(100, 4)]), &tiny),
            Err(PlanError::NoUsableBubbles)
        );
    }

    #[test]
    fn fill_fraction_shrinks_capacity() {
        let profile = uniform_profile(10, 10, 10);
        let full = plan_for_config(&profile, &slots(&[(400, 4)]), &exec()).unwrap();
        assert_eq!(full.iterations_per_pass, 3);
        let capped = plan_for_config(
            &profile,
            &slots(&[(400, 4)]),
            &ExecutorConfig {
                fill_fraction: 0.5,
                cold_start_factor: 1.0,
                switch_overhead: SimDuration::ZERO,
            },
        )
        .unwrap();
        assert!(capped.iterations_per_pass < full.iterations_per_pass);
    }

    #[test]
    fn cold_start_inflates_node_time() {
        let profile = uniform_profile(10, 10, 10);
        let cold = plan_for_config(
            &profile,
            &slots(&[(200, 4)]),
            &ExecutorConfig {
                fill_fraction: 1.0,
                cold_start_factor: 0.5,
                switch_overhead: SimDuration::ZERO,
            },
        )
        .unwrap();
        // Nodes run at half speed: a 200 ms bubble fits 10 nodes of 20 ms.
        assert_eq!(cold.partitions[0].node_count, 10);
        assert_eq!(cold.partitions[0].duration, SimDuration::from_millis(200));
    }

    #[test]
    fn multi_iteration_pass_spans_main_iterations() {
        // Graph 400 ms, cycle capacity 100 ms/iteration => pass spans 4+
        // main iterations.
        let profile = uniform_profile(40, 10, 10);
        let plan = plan_for_config(&profile, &slots(&[(100, 4)]), &exec()).unwrap();
        assert!(plan.main_iterations_per_pass >= 4);
        assert_eq!(plan.main_iterations_for(4), plan.main_iterations_per_pass);
        assert_eq!(
            plan.main_iterations_for(8),
            2 * plan.main_iterations_per_pass
        );
    }

    #[test]
    fn plan_best_picks_bert_inference_plain() {
        let job = FillJobSpec::new(1, ModelId::BertBase, JobKind::BatchInference, 10_000);
        let bubbles = slots(&[(1900, 4), (1000, 4)]);
        let plan = plan_best(
            &job,
            &bubbles,
            &DeviceSpec::v100(),
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.config.technique, ExecTechnique::Plain);
        assert!(plan.config.batch_size >= 16, "{}", plan.config);
        assert!(plan.samples_per_main_iteration() > 0.0);
    }

    #[test]
    fn plan_best_uses_streaming_for_xlm() {
        // XLM's weights exceed 4.5 GB: only ZeRO-Infinity-style configs
        // are feasible (§6.2).
        let job = FillJobSpec::new(2, ModelId::XlmRobertaXl, JobKind::BatchInference, 1_000);
        let bubbles = slots(&[(1900, 4), (1000, 4)]);
        let plan = plan_best(
            &job,
            &bubbles,
            &DeviceSpec::v100(),
            &ExecutorConfig::default(),
        )
        .unwrap();
        assert!(plan.config.technique.streams_params(), "{}", plan.config);
    }

    #[test]
    fn whole_graph_baseline_is_no_better_than_algorithm1() {
        let job = FillJobSpec::new(3, ModelId::BertLarge, JobKind::BatchInference, 10_000);
        let model = job.model_graph();
        let bubbles = slots(&[(500, 4), (300, 4)]);
        let cfg = ExecutorConfig::default();
        let device = DeviceSpec::v100();
        let best = plan_best(&job, &bubbles, &device, &cfg).unwrap();
        // Compare against the naive baseline under the same best config.
        let profile = build_profile(&model, job.kind, best.config, &device);
        match plan_whole_graph_only(&profile, &bubbles, &cfg) {
            Ok(naive) => assert!(
                naive.samples_per_main_iteration() <= best.samples_per_main_iteration() + 1e-9
            ),
            Err(_) => { /* naive infeasible: Algorithm 1 strictly better */ }
        }
    }
}
