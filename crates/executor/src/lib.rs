//! # pipefill-executor
//!
//! The Fill Job Executor (§4.3): the per-device component that runs a fill
//! job inside a device's pipeline bubbles at maximum throughput without
//! violating bubble-duration or free-memory constraints.
//!
//! Pipeline, mirroring the paper:
//!
//! 1. **Profiles** ([`profile`]): for each configuration — a batch size ×
//!    an execution technique (plain, activation checkpointing,
//!    ZeRO-Offload-style optimizer offloading, ZeRO-Infinity-style
//!    parameter streaming) — build the linearized computational graph with
//!    each node's execution time and memory requirement.
//! 2. **Planning** ([`plan`]): run the paper's Algorithm 1 — replicate the
//!    graph to fill the bubble cycle, then greedily pack source nodes into
//!    successive bubbles — for every feasible configuration, and keep the
//!    plan with the highest throughput.
//! 3. **Execution** ([`FillJobExecutor`]): a state machine the cluster
//!    simulator drives one bubble at a time; it reports the work done per
//!    bubble and isolates memory-cap violations to the fill process.
//!
//! # Example
//!
//! ```
//! use pipefill_device::{Bytes, DeviceSpec};
//! use pipefill_executor::{plan_best, ExecutorConfig, FillJobSpec};
//! use pipefill_model_zoo::{JobKind, ModelId};
//! use pipefill_sim_core::{SimDuration, SimTime};
//!
//! let job = FillJobSpec::new(1, ModelId::BertBase, JobKind::BatchInference, 100_000)
//!     .with_arrival(SimTime::ZERO);
//! // One 1-second bubble with the paper's 4.5 GB free memory.
//! let bubbles = vec![(SimDuration::from_secs(1), Bytes::from_gib_f64(4.5))];
//! let plan = plan_best(&job, &bubbles, &DeviceSpec::v100(), &ExecutorConfig::default())
//!     .expect("BERT inference fits easily");
//! assert!(plan.samples_per_pass > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod executor;
mod job;
pub mod plan;
pub mod profile;

pub use config::{ExecConfig, ExecTechnique, ExecutorConfig};
pub use executor::{BubbleExecution, ExecutorCheckpoint, FillJobExecutor};
pub use job::{FillJobSpec, JobId};
pub use plan::{
    plan_best, plan_for_config, plan_whole_graph_only, ExecutionPlan, Partition, PlanError,
};
pub use profile::{build_profile, exclusive_throughput, JobProfile, NodeProfile};
