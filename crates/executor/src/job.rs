//! Fill-job descriptions.

use pipefill_model_zoo::{JobKind, ModelGraph, ModelId};
use pipefill_sim_core::SimTime;
use serde::{Deserialize, Serialize};

/// Unique fill-job identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A fill job as submitted to PipeFill: "PIPEFILL takes as input the model
/// used for the fill-job, as well as valid batch-sizes; given the job
/// configuration, it will attempt to execute the fill-job with maximum
/// throughput" (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FillJobSpec {
    /// Job identifier.
    pub id: JobId,
    /// Which Table-1 model the job runs.
    pub model: ModelId,
    /// Training or batch inference.
    pub kind: JobKind,
    /// Samples the job must process to complete.
    pub samples: u64,
    /// Batch sizes the job's code supports (powers of two up to 256 by
    /// default).
    pub valid_batch_sizes: Vec<usize>,
    /// Submission time.
    pub arrival: SimTime,
    /// Optional completion deadline (drives deadline-aware policies).
    pub deadline: Option<SimTime>,
}

impl FillJobSpec {
    /// Default batch-size menu: powers of two from 1 to 512.
    pub fn default_batch_sizes() -> Vec<usize> {
        (0..=9).map(|i| 1usize << i).collect()
    }

    /// Creates a job with the default batch-size menu, arriving at time
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn new(id: u64, model: ModelId, kind: JobKind, samples: u64) -> Self {
        assert!(samples > 0, "a job must process at least one sample");
        FillJobSpec {
            id: JobId(id),
            model,
            kind,
            samples,
            valid_batch_sizes: Self::default_batch_sizes(),
            arrival: SimTime::ZERO,
            deadline: None,
        }
    }

    /// Sets the arrival time.
    pub fn with_arrival(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets a deadline.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Restricts the batch-size menu.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or contains zero.
    pub fn with_batch_sizes(mut self, sizes: Vec<usize>) -> Self {
        assert!(
            !sizes.is_empty() && sizes.iter().all(|&b| b > 0),
            "batch sizes must be non-empty and positive"
        );
        self.valid_batch_sizes = sizes;
        self
    }

    /// Builds the model graph for this job.
    pub fn model_graph(&self) -> ModelGraph {
        self.model.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_model_zoo::ModelId;

    #[test]
    fn default_batch_menu_is_powers_of_two() {
        let job = FillJobSpec::new(1, ModelId::BertBase, JobKind::BatchInference, 100);
        assert_eq!(
            job.valid_batch_sizes,
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
        );
    }

    #[test]
    fn builder_methods_chain() {
        let job = FillJobSpec::new(2, ModelId::EfficientNet, JobKind::Training, 50)
            .with_arrival(SimTime::from_secs_f64(10.0))
            .with_deadline(SimTime::from_secs_f64(100.0))
            .with_batch_sizes(vec![4, 8]);
        assert_eq!(job.arrival, SimTime::from_secs_f64(10.0));
        assert_eq!(job.deadline, Some(SimTime::from_secs_f64(100.0)));
        assert_eq!(job.valid_batch_sizes, vec![4, 8]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = FillJobSpec::new(3, ModelId::BertBase, JobKind::Training, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty and positive")]
    fn zero_batch_size_rejected() {
        let _ =
            FillJobSpec::new(4, ModelId::BertBase, JobKind::Training, 10).with_batch_sizes(vec![0]);
    }
}
