//! Execution configurations: batch size × technique, plus the Executor's
//! global tuning knobs.

use serde::{Deserialize, Serialize};

/// An execution technique a fill-job configuration may use (§4.5: "the
/// Executor will consider using ZeRO-Offload and ZeRO-Infinity to offload
/// optimizer states, gradients, activations, and parameters").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecTechnique {
    /// Everything resident on the device.
    Plain,
    /// Activation checkpointing: store block boundaries, recompute
    /// interiors in backward (training only; backward costs 3× forward).
    ActivationCheckpointing,
    /// ZeRO-Offload: optimizer state lives on the host; gradients stream
    /// down and updated parameters stream back each iteration (training
    /// only).
    OffloadOptimizer,
    /// ZeRO-Infinity-style parameter streaming: only a sliding window of
    /// layer parameters is resident; each layer's weights stream from the
    /// host, overlapping the previous layer's compute.
    OffloadParams,
    /// Parameter streaming combined with activation checkpointing — the
    /// "aggressive CPU-offloading" XLM needs (§6.2).
    OffloadParamsAndCheckpoint,
    /// ZeRO-Infinity's second tier: parameters stream from NVMe instead
    /// of host DRAM (§4.3 lists NVMe-offloading among the Executor's
    /// configurations). Strictly slower than [`ExecTechnique::OffloadParams`]
    /// on devices with spare host memory, but the only option when host
    /// DRAM is exhausted.
    OffloadParamsNvme,
}

impl ExecTechnique {
    /// All techniques applicable to a job kind. Inference has no
    /// optimizer or stored activations, so only parameter placement
    /// varies.
    pub fn applicable(kind: pipefill_model_zoo::JobKind) -> &'static [ExecTechnique] {
        use pipefill_model_zoo::JobKind;
        match kind {
            JobKind::Training => &[
                ExecTechnique::Plain,
                ExecTechnique::ActivationCheckpointing,
                ExecTechnique::OffloadOptimizer,
                ExecTechnique::OffloadParams,
                ExecTechnique::OffloadParamsAndCheckpoint,
                ExecTechnique::OffloadParamsNvme,
            ],
            JobKind::BatchInference => &[
                ExecTechnique::Plain,
                ExecTechnique::OffloadParams,
                ExecTechnique::OffloadParamsNvme,
            ],
        }
    }

    /// True if parameters are streamed from off-device storage.
    pub fn streams_params(self) -> bool {
        matches!(
            self,
            ExecTechnique::OffloadParams
                | ExecTechnique::OffloadParamsAndCheckpoint
                | ExecTechnique::OffloadParamsNvme
        )
    }

    /// True if parameter streaming sources from NVMe rather than host
    /// DRAM.
    pub fn streams_from_nvme(self) -> bool {
        matches!(self, ExecTechnique::OffloadParamsNvme)
    }

    /// True if activations are checkpointed.
    pub fn checkpoints_activations(self) -> bool {
        matches!(
            self,
            ExecTechnique::ActivationCheckpointing | ExecTechnique::OffloadParamsAndCheckpoint
        )
    }
}

impl std::fmt::Display for ExecTechnique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExecTechnique::Plain => "plain",
            ExecTechnique::ActivationCheckpointing => "act-ckpt",
            ExecTechnique::OffloadOptimizer => "zero-offload",
            ExecTechnique::OffloadParams => "zero-infinity",
            ExecTechnique::OffloadParamsAndCheckpoint => "zero-infinity+ckpt",
            ExecTechnique::OffloadParamsNvme => "zero-infinity-nvme",
        };
        write!(f, "{s}")
    }
}

/// One candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Samples per fill-job iteration.
    pub batch_size: usize,
    /// Placement/recompute technique.
    pub technique: ExecTechnique,
}

impl std::fmt::Display for ExecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}/{}", self.batch_size, self.technique)
    }
}

/// Global Executor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Fraction of each measured bubble the Executor packs work into.
    /// Fig. 5: overhead to the main job stays <2% up to 68%, which is the
    /// paper's (and our) default.
    pub fill_fraction: f64,
    /// Throughput multiplier for bubble execution relative to the offline
    /// profile: bubbles start with cold caches and no kernel-autotuning
    /// warmup ("not enough to warmup the GPU caches", §6.2).
    pub cold_start_factor: f64,
    /// Context-switch cost charged at the start of every filled bubble
    /// (signal + allocator cap + stream launch).
    pub switch_overhead: pipefill_sim_core::SimDuration,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            fill_fraction: 0.68,
            cold_start_factor: 0.75,
            switch_overhead: pipefill_sim_core::SimDuration::from_millis(5),
        }
    }
}

impl ExecutorConfig {
    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics if `fill_fraction` is outside `(0, 1]` or
    /// `cold_start_factor` outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.fill_fraction > 0.0 && self.fill_fraction <= 1.0,
            "fill fraction must be in (0, 1], got {}",
            self.fill_fraction
        );
        assert!(
            self.cold_start_factor > 0.0 && self.cold_start_factor <= 1.0,
            "cold-start factor must be in (0, 1], got {}",
            self.cold_start_factor
        );
    }

    /// Returns a copy with a different fill fraction (the Fig. 5 sweep).
    pub fn with_fill_fraction(mut self, f: f64) -> Self {
        self.fill_fraction = f;
        self.validate();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_model_zoo::JobKind;

    #[test]
    fn inference_has_no_training_techniques() {
        let inf = ExecTechnique::applicable(JobKind::BatchInference);
        assert!(!inf.contains(&ExecTechnique::OffloadOptimizer));
        assert!(!inf.contains(&ExecTechnique::ActivationCheckpointing));
        assert!(inf.contains(&ExecTechnique::OffloadParams));
        assert!(inf.contains(&ExecTechnique::OffloadParamsNvme));
        let train = ExecTechnique::applicable(JobKind::Training);
        assert_eq!(train.len(), 6);
    }

    #[test]
    fn nvme_is_a_streaming_technique() {
        assert!(ExecTechnique::OffloadParamsNvme.streams_params());
        assert!(ExecTechnique::OffloadParamsNvme.streams_from_nvme());
        assert!(!ExecTechnique::OffloadParams.streams_from_nvme());
        assert!(!ExecTechnique::OffloadParamsNvme.checkpoints_activations());
    }

    #[test]
    fn technique_predicates() {
        assert!(ExecTechnique::OffloadParams.streams_params());
        assert!(ExecTechnique::OffloadParamsAndCheckpoint.streams_params());
        assert!(!ExecTechnique::Plain.streams_params());
        assert!(ExecTechnique::ActivationCheckpointing.checkpoints_activations());
        assert!(!ExecTechnique::OffloadOptimizer.checkpoints_activations());
    }

    #[test]
    fn default_matches_paper_constants() {
        let cfg = ExecutorConfig::default();
        assert_eq!(cfg.fill_fraction, 0.68);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "fill fraction")]
    fn bad_fill_fraction_rejected() {
        let _ = ExecutorConfig::default().with_fill_fraction(1.5);
    }

    #[test]
    fn display_is_compact() {
        let c = ExecConfig {
            batch_size: 32,
            technique: ExecTechnique::OffloadParams,
        };
        assert_eq!(c.to_string(), "b32/zero-infinity");
    }
}
