//! Per-configuration job profiles: "each profile contains the execution
//! time and memory requirement of each node in the computational graph
//! under a specific configuration" (§4.3).
//!
//! The paper measures these with PyTorch profiling; here they are derived
//! from the model zoo's layer graphs and the device's analytical cost
//! model. The technique semantics follow ZeRO-Offload / ZeRO-Infinity:
//! off-device state trades memory for host-link transfer time, with
//! transfers overlapping compute (a node's duration is the max of the
//! two).

use pipefill_device::{Bytes, DeviceSpec};
use pipefill_model_zoo::{
    JobKind, ModelGraph, ADAM_STATE_BYTES_PER_PARAM, FP16_BYTES, GRAD_BYTES_PER_PARAM,
};
use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

use crate::config::{ExecConfig, ExecTechnique};

/// Host-side memory bandwidth available to the CPU Adam update used by
/// the offloaded-optimizer techniques (ZeRO-Offload's CPU optimizer).
const CPU_UPDATE_BANDWIDTH: f64 = 25.0e9;

/// Fraction of the raw host/NVMe link bandwidth parameter streaming
/// actually achieves: per-tensor launch overheads and imperfect
/// prefetch overlap keep ZeRO-Infinity-style pipelines well below link
/// peak in practice.
const STREAM_EFFICIENCY: f64 = 0.65;

/// One node of the linearized computational graph under a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Execution time (compute overlapped with any host transfers).
    pub duration: SimDuration,
    /// Device memory that must be available while this node runs.
    pub memory: Bytes,
    /// Floating-point operations this node executes (recompute included).
    pub flops: f64,
}

/// A fill job's profile under one configuration: the linearized graph for
/// a single fill-job iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// The configuration profiled.
    pub config: ExecConfig,
    /// Linearized graph nodes with sequential dependency.
    pub nodes: Vec<NodeProfile>,
    /// Samples one iteration processes (= batch size).
    pub samples_per_iteration: u64,
}

impl JobProfile {
    /// Total execution time of one iteration.
    pub fn iteration_time(&self) -> SimDuration {
        self.nodes.iter().map(|n| n.duration).sum()
    }

    /// Total FLOPs of one iteration.
    pub fn iteration_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.flops).sum()
    }

    /// Largest single-node memory requirement — the binding constraint
    /// against bubble free-memory.
    pub fn peak_memory(&self) -> Bytes {
        self.nodes
            .iter()
            .map(|n| n.memory)
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Samples per second when run back-to-back (no bubbles).
    pub fn isolated_throughput(&self) -> f64 {
        self.samples_per_iteration as f64 / self.iteration_time().as_secs_f64()
    }
}

/// Builds the profile of `model` under `config` for a `kind` job on
/// `device`.
///
/// # Panics
///
/// Panics if an inference config uses a training-only technique or the
/// batch size is zero.
pub fn build_profile(
    model: &ModelGraph,
    kind: JobKind,
    config: ExecConfig,
    device: &DeviceSpec,
) -> JobProfile {
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(
        ExecTechnique::applicable(kind).contains(&config.technique),
        "technique {} is not applicable to {kind}",
        config.technique
    );
    let b = config.batch_size;
    let eff = model.efficiency.at(b);
    let tech = config.technique;
    // Streaming source bandwidth: host DRAM over PCIe, or the NVMe tier,
    // derated by the achievable pipeline efficiency.
    let pcie = STREAM_EFFICIENCY
        * if tech.streams_from_nvme() {
            device.nvme_bandwidth
        } else {
            device.host_link_bandwidth
        };

    // Device-resident baseline state. Under parameter streaming the
    // window is a double buffer of the largest *dense* layer: embedding
    // tables are gathered row-wise (only the rows a batch references move
    // across PCIe), so they do not size the window.
    let total_params = model.total_params();
    let param_bytes = Bytes::new(total_params * FP16_BYTES);
    let max_dense_layer = model
        .layers
        .iter()
        .filter(|l| l.kind != pipefill_model_zoo::LayerKind::Embedding)
        .map(|l| l.param_bytes())
        .max()
        .unwrap_or_else(|| model.max_layer_param_bytes());
    let streaming_resident = max_dense_layer * 2;
    let resident = match (kind, tech) {
        (JobKind::BatchInference, ExecTechnique::Plain) => param_bytes,
        (JobKind::BatchInference, _) => streaming_resident,
        (JobKind::Training, ExecTechnique::Plain | ExecTechnique::ActivationCheckpointing) => {
            Bytes::new(
                total_params * (FP16_BYTES + GRAD_BYTES_PER_PARAM + ADAM_STATE_BYTES_PER_PARAM),
            )
        }
        (JobKind::Training, ExecTechnique::OffloadOptimizer) => {
            Bytes::new(total_params * (FP16_BYTES + GRAD_BYTES_PER_PARAM))
        }
        (JobKind::Training, _) => streaming_resident, // params/grads/opt on host
    };

    let ckpt = tech.checkpoints_activations();
    let streams = tech.streams_params();
    let mut nodes = Vec::new();

    // Bytes that must cross PCIe to execute a layer under parameter
    // streaming: dense layers move their full weights; embeddings move
    // only the referenced rows (bounded by the batch's token count).
    let stream_bytes = |layer: &pipefill_model_zoo::Layer| -> Bytes {
        if layer.kind == pipefill_model_zoo::LayerKind::Embedding {
            layer.param_bytes().min(layer.activation_bytes(b))
        } else {
            layer.param_bytes()
        }
    };

    // Forward pass: activations (or boundaries) accumulate.
    let mut stored = Bytes::ZERO;
    for layer in &model.layers {
        let compute = device.compute_time(layer.fwd_flops(b), eff);
        let stream = if streams {
            SimDuration::from_secs_f64(stream_bytes(layer).as_f64() / pcie)
        } else {
            SimDuration::ZERO
        };
        let working = layer.activation_bytes(b);
        nodes.push(NodeProfile {
            duration: compute.max(stream),
            memory: resident + stored + working,
            flops: layer.fwd_flops(b),
        });
        stored += match kind {
            JobKind::BatchInference => Bytes::ZERO, // activations released immediately
            JobKind::Training => {
                if ckpt {
                    layer.boundary_bytes(b)
                } else {
                    layer.activation_bytes(b)
                }
            }
        };
    }

    if kind == JobKind::Training {
        // Backward pass in reverse layer order; stored activations are
        // released as each layer is consumed.
        for layer in model.layers.iter().rev() {
            let recompute_factor = if ckpt && layer.kind.is_block() {
                3.0
            } else {
                2.0
            };
            let flops = recompute_factor * layer.fwd_flops(b);
            let compute = device.compute_time(flops, eff);
            let stream = if streams {
                // Params stream down again for backward; gradients stream up.
                SimDuration::from_secs_f64((stream_bytes(layer).as_f64() * 2.0) / pcie)
            } else {
                SimDuration::ZERO
            };
            let working = layer.activation_bytes(b); // recomputed or retained
            nodes.push(NodeProfile {
                duration: compute.max(stream),
                memory: resident + stored + working,
                flops,
            });
            stored = stored.saturating_sub(if ckpt {
                layer.boundary_bytes(b)
            } else {
                layer.activation_bytes(b)
            });
        }

        // Optimizer node.
        let opt = match tech {
            ExecTechnique::OffloadOptimizer => {
                // Gradients stream down, updated fp16 params stream back.
                let transfer = (total_params * (GRAD_BYTES_PER_PARAM + FP16_BYTES)) as f64 / pcie;
                let cpu = (total_params * ADAM_STATE_BYTES_PER_PARAM) as f64 / CPU_UPDATE_BANDWIDTH;
                SimDuration::from_secs_f64(transfer + cpu)
            }
            t if t.streams_params() => {
                // Gradients already on host; CPU update only.
                SimDuration::from_secs_f64(
                    (total_params * ADAM_STATE_BYTES_PER_PARAM) as f64 / CPU_UPDATE_BANDWIDTH,
                )
            }
            _ => {
                // On-device Adam: memory-bound parameter-state sweep.
                SimDuration::from_secs_f64(total_params as f64 * 32.0 / device.hbm_bandwidth)
            }
        };
        nodes.push(NodeProfile {
            duration: opt,
            memory: resident,
            flops: 0.0,
        });
    }

    JobProfile {
        config,
        nodes,
        samples_per_iteration: b as u64,
    }
}

/// The maximum throughput (samples/second) a job achieves "when executed
/// in isolation on one GPU" (§5.3) — full HBM, no interruptions. Used
/// both to size trace jobs and as the Fig. 7b slowdown baseline.
///
/// Returns the throughput and the profile that achieves it, or `None` if
/// no configuration fits device memory at all.
pub fn exclusive_throughput(
    model: &ModelGraph,
    kind: JobKind,
    device: &DeviceSpec,
    batch_sizes: &[usize],
) -> Option<(f64, JobProfile)> {
    let mut best: Option<(f64, JobProfile)> = None;
    for &batch in batch_sizes {
        for &technique in ExecTechnique::applicable(kind) {
            let profile = build_profile(
                model,
                kind,
                ExecConfig {
                    batch_size: batch,
                    technique,
                },
                device,
            );
            if profile.peak_memory() > device.hbm {
                continue;
            }
            let tput = profile.isolated_throughput();
            if best.as_ref().is_none_or(|(t, _)| tput > *t) {
                best = Some((tput, profile));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_model_zoo::ModelId;

    fn v100() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn cfg(batch_size: usize, technique: ExecTechnique) -> ExecConfig {
        ExecConfig {
            batch_size,
            technique,
        }
    }

    #[test]
    fn inference_profile_has_one_node_per_layer() {
        let m = ModelId::BertBase.build();
        let p = build_profile(
            &m,
            JobKind::BatchInference,
            cfg(8, ExecTechnique::Plain),
            &v100(),
        );
        assert_eq!(p.nodes.len(), m.layers.len());
        assert_eq!(p.samples_per_iteration, 8);
        assert!(p.iteration_flops() > 0.0);
    }

    #[test]
    fn training_profile_has_fwd_bwd_opt() {
        let m = ModelId::BertBase.build();
        let p = build_profile(&m, JobKind::Training, cfg(8, ExecTechnique::Plain), &v100());
        assert_eq!(p.nodes.len(), 2 * m.layers.len() + 1);
        // Training FLOPs ≈ 3× inference FLOPs.
        let inf = build_profile(
            &m,
            JobKind::BatchInference,
            cfg(8, ExecTechnique::Plain),
            &v100(),
        );
        let ratio = p.iteration_flops() / inf.iteration_flops();
        assert!((ratio - 3.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn training_needs_more_memory_than_inference() {
        let m = ModelId::BertLarge.build();
        let t = build_profile(
            &m,
            JobKind::Training,
            cfg(16, ExecTechnique::Plain),
            &v100(),
        );
        let i = build_profile(
            &m,
            JobKind::BatchInference,
            cfg(16, ExecTechnique::Plain),
            &v100(),
        );
        assert!(t.peak_memory() > i.peak_memory() * 2);
    }

    #[test]
    fn checkpointing_cuts_memory_but_costs_time() {
        let m = ModelId::BertLarge.build();
        let plain = build_profile(
            &m,
            JobKind::Training,
            cfg(32, ExecTechnique::Plain),
            &v100(),
        );
        let ck = build_profile(
            &m,
            JobKind::Training,
            cfg(32, ExecTechnique::ActivationCheckpointing),
            &v100(),
        );
        assert!(ck.peak_memory() < plain.peak_memory());
        assert!(ck.iteration_time() > plain.iteration_time());
    }

    #[test]
    fn optimizer_offload_frees_adam_state() {
        let m = ModelId::BertLarge.build();
        let plain = build_profile(&m, JobKind::Training, cfg(8, ExecTechnique::Plain), &v100());
        let off = build_profile(
            &m,
            JobKind::Training,
            cfg(8, ExecTechnique::OffloadOptimizer),
            &v100(),
        );
        let saved = plain.peak_memory() - off.peak_memory();
        // 12 bytes/param of Adam state moved to the host.
        let expect = Bytes::new(m.total_params() * 12);
        let err = (saved.as_f64() - expect.as_f64()).abs() / expect.as_f64();
        assert!(err < 0.05, "saved {saved}, expected {expect}");
        // But the optimizer step now pays PCIe + CPU time.
        assert!(off.iteration_time() > plain.iteration_time());
    }

    #[test]
    fn xlm_inference_needs_param_streaming_under_bubble_memory() {
        // §6.2: "XLM requires aggressive CPU-offloading" — its fp16
        // weights (≈5.7 GB) exceed the 4.5 GB bubble free-memory.
        let m = ModelId::XlmRobertaXl.build();
        let bubble = Bytes::from_gib_f64(4.5);
        let plain = build_profile(
            &m,
            JobKind::BatchInference,
            cfg(4, ExecTechnique::Plain),
            &v100(),
        );
        assert!(plain.peak_memory() > bubble);
        let streamed = build_profile(
            &m,
            JobKind::BatchInference,
            cfg(4, ExecTechnique::OffloadParams),
            &v100(),
        );
        assert!(streamed.peak_memory() < bubble);
        // Streaming is slower per sample.
        assert!(streamed.iteration_time() > plain.iteration_time());
    }

    #[test]
    fn bert_inference_is_the_best_bubble_citizen() {
        // Fig. 7a: BERT inference reaches the highest utilization because
        // large batches fit in little memory.
        let bert = ModelId::BertBase.build();
        let p = build_profile(
            &bert,
            JobKind::BatchInference,
            cfg(256, ExecTechnique::Plain),
            &v100(),
        );
        assert!(p.peak_memory() < Bytes::from_gib_f64(4.5));
    }

    #[test]
    fn exclusive_throughput_prefers_big_batches() {
        let m = ModelId::BertBase.build();
        let (tput, profile) =
            exclusive_throughput(&m, JobKind::BatchInference, &v100(), &[1, 8, 64, 256]).unwrap();
        assert!(profile.config.batch_size >= 64, "{}", profile.config);
        assert!(
            tput > 100.0,
            "BERT-base inference should exceed 100 samples/s, got {tput}"
        );
    }

    #[test]
    fn exclusive_throughput_exists_for_all_fill_jobs() {
        for id in ModelId::FILL_JOBS {
            let m = id.build();
            let kinds: &[JobKind] = if id.trainable_as_fill_job() {
                &[JobKind::Training, JobKind::BatchInference]
            } else {
                &[JobKind::BatchInference]
            };
            for &k in kinds {
                let r = exclusive_throughput(&m, k, &v100(), &[1, 2, 4, 8, 16, 32, 64, 128, 256]);
                assert!(r.is_some(), "{id} {k} has no feasible exclusive config");
            }
        }
    }

    #[test]
    fn memory_peaks_at_end_of_forward_for_plain_training() {
        let m = ModelId::BertBase.build();
        let p = build_profile(
            &m,
            JobKind::Training,
            cfg(16, ExecTechnique::Plain),
            &v100(),
        );
        let l = m.layers.len();
        // Peak is at the last forward node (all activations stored) and
        // the first backward node.
        let peak = p.peak_memory();
        assert_eq!(p.nodes[l - 1].memory.max(p.nodes[l].memory), peak);
        // Memory declines over the backward pass.
        assert!(p.nodes[2 * l - 1].memory < peak);
    }

    #[test]
    fn nvme_streaming_is_slower_but_not_bigger() {
        // The NVMe tier trades time, not memory: same resident window,
        // longer stalls (3.2 vs 12 GB/s on a V100).
        let m = ModelId::XlmRobertaXl.build();
        let host = build_profile(
            &m,
            JobKind::BatchInference,
            cfg(8, ExecTechnique::OffloadParams),
            &v100(),
        );
        let nvme = build_profile(
            &m,
            JobKind::BatchInference,
            cfg(8, ExecTechnique::OffloadParamsNvme),
            &v100(),
        );
        assert_eq!(nvme.peak_memory(), host.peak_memory());
        assert!(nvme.iteration_time() > host.iteration_time());
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn inference_rejects_training_technique() {
        let m = ModelId::BertBase.build();
        let _ = build_profile(
            &m,
            JobKind::BatchInference,
            cfg(8, ExecTechnique::OffloadOptimizer),
            &v100(),
        );
    }
}
