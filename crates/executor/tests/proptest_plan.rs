//! Property tests for Algorithm 1: the plan must respect every bubble's
//! duration and memory constraints for arbitrary graphs and cycles, pack
//! all nodes in order, and drive the executor to completion.

use proptest::prelude::*;

use pipefill_device::Bytes;
use pipefill_executor::{
    plan_for_config, ExecConfig, ExecTechnique, ExecutorConfig, FillJobExecutor, FillJobSpec,
    JobProfile, NodeProfile, PlanError,
};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_sim_core::SimDuration;

fn profile_from(nodes: Vec<(u64, u64)>) -> JobProfile {
    JobProfile {
        config: ExecConfig {
            batch_size: 2,
            technique: ExecTechnique::Plain,
        },
        nodes: nodes
            .into_iter()
            .map(|(ms, mib)| NodeProfile {
                duration: SimDuration::from_millis(ms),
                memory: Bytes::from_mib(mib),
                flops: ms as f64 * 1e9,
            })
            .collect(),
        samples_per_iteration: 2,
    }
}

fn exact_exec() -> ExecutorConfig {
    ExecutorConfig {
        fill_fraction: 1.0,
        cold_start_factor: 1.0,
        switch_overhead: SimDuration::ZERO,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every partition honours its bubble slot's duration and memory
    /// limits; all replicated nodes are packed exactly once, in order.
    #[test]
    fn partitions_respect_all_constraints(
        nodes in prop::collection::vec((1u64..50, 1u64..512), 1..30),
        bubbles in prop::collection::vec((60u64..500, 256u64..2048), 1..6),
    ) {
        let profile = profile_from(nodes.clone());
        let slots: Vec<(SimDuration, Bytes)> = bubbles
            .iter()
            .map(|&(ms, mib)| (SimDuration::from_millis(ms), Bytes::from_mib(mib)))
            .collect();
        match plan_for_config(&profile, &slots, &exact_exec()) {
            Err(PlanError::NodeDoesNotFit) => {
                // Legitimate only if some node really fits no bubble.
                let unfit = profile.nodes.iter().any(|n| {
                    !slots.iter().any(|&(d, m)| n.duration <= d && n.memory <= m)
                });
                prop_assert!(unfit, "planner gave up although every node fits somewhere");
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            Ok(plan) => {
                for part in &plan.partitions {
                    let (cap_d, cap_m) = slots[part.bubble_index];
                    prop_assert!(part.duration <= cap_d, "duration violated");
                    prop_assert!(part.memory <= cap_m, "memory violated");
                    prop_assert!(part.node_count > 0);
                }
                let packed: usize = plan.partitions.iter().map(|p| p.node_count).sum();
                prop_assert_eq!(
                    packed,
                    profile.nodes.len() * plan.iterations_per_pass as usize,
                    "not every node packed exactly once"
                );
                let iters: u64 = plan.partitions.iter().map(|p| p.iterations_completed).sum();
                prop_assert_eq!(iters, plan.iterations_per_pass);
                // Replication is bounded by Algorithm 1 line 4.
                let graph: SimDuration = profile.nodes.iter().map(|n| n.duration).sum();
                let total: SimDuration = slots.iter().map(|&(d, _)| d).sum();
                if plan.iterations_per_pass > 1 {
                    prop_assert!(graph * plan.iterations_per_pass < total + graph);
                }
            }
        }
    }

    /// Fill-fraction scaling: a smaller fraction never packs more work
    /// per pass-iteration.
    #[test]
    fn fill_fraction_monotonicity(
        nodes in prop::collection::vec((1u64..30, 1u64..256), 1..15),
        frac_pct in 30u64..100,
    ) {
        let profile = profile_from(nodes);
        let slots = vec![(SimDuration::from_millis(600), Bytes::from_mib(2048))];
        let full = plan_for_config(&profile, &slots, &exact_exec());
        let partial = plan_for_config(
            &profile,
            &slots,
            &ExecutorConfig {
                fill_fraction: frac_pct as f64 / 100.0,
                cold_start_factor: 1.0,
                switch_overhead: SimDuration::ZERO,
            },
        );
        if let (Ok(f), Ok(p)) = (full, partial) {
            prop_assert!(
                p.samples_per_main_iteration() <= f.samples_per_main_iteration() + 1e-9
            );
        }
    }

    /// The executor driven slot-by-slot completes any finite job, and
    /// its FLOPs/time accounting matches the partitions it executed.
    #[test]
    fn executor_completes_and_accounts(samples in 1u64..5_000, seed in 0u64..8) {
        // Vary the job type with the seed for coverage.
        let (model, kind) = match seed % 4 {
            0 => (ModelId::BertBase, JobKind::BatchInference),
            1 => (ModelId::BertBase, JobKind::Training),
            2 => (ModelId::BertLarge, JobKind::BatchInference),
            _ => (ModelId::EfficientNet, JobKind::BatchInference),
        };
        let job = FillJobSpec::new(seed, model, kind, samples);
        let slots = vec![
            (SimDuration::from_millis(1900), Bytes::from_gib_f64(4.5)),
            (SimDuration::from_millis(1000), Bytes::from_gib_f64(4.5)),
        ];
        let plan = pipefill_executor::plan_best(
            &job,
            &slots,
            &pipefill_device::DeviceSpec::v100(),
            &ExecutorConfig::default(),
        ).unwrap();
        let mut ex = FillJobExecutor::new(job, plan);
        let mut flops = 0.0;
        let mut time = SimDuration::ZERO;
        let mut slot = 0usize;
        let mut guard = 0u64;
        while !ex.is_complete() {
            let r = ex.on_bubble(slot);
            flops += r.flops;
            time += r.time_used;
            slot = (slot + 1) % 2;
            guard += 1;
            prop_assert!(guard < 10_000_000, "did not terminate");
        }
        prop_assert_eq!(ex.samples_done(), samples);
        prop_assert!((ex.flops_done() - flops).abs() < 1.0);
        prop_assert_eq!(ex.bubble_time_used(), time);
    }
}
