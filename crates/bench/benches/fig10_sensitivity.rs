//! Fig. 10 — sensitivity of recovered utilization to bubble size (10a)
//! and bubble free memory (10b), including the main-job-offloading
//! ablation (offloading widens free memory, moving along the 10b axis).

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_core::steady_recovered_tflops;
use pipefill_device::Bytes;
use pipefill_executor::ExecutorConfig;
use pipefill_pipeline::{BubbleMemoryModel, MainJobSpec, OffloadPlanner, ScheduleKind};
use pipefill_trace::ModelMix;

fn bench(c: &mut Criterion) {
    let exec = ExecutorConfig::default();
    println!("\nFig. 10a — bubble size (model scale), free memory fixed at 4.5 GiB:");
    regenerate("fig10a_bubble_size");
    println!("\nFig. 10b — bubble free memory, model size fixed:");
    regenerate("fig10b_free_memory");

    // Ablation: what main-job optimizer-state offloading buys. The
    // offloadable bytes add to every bubble's free memory (§4.2).
    let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe);
    let partition = main.partition();
    let sp = &partition.stages()[8];
    let timeline = main.engine_timeline();
    let fwd_window = sp.fwd_time * main.parallelism.microbatches_per_replica() as u64;
    let plan = OffloadPlanner::new(main.device.host_link_bandwidth).plan(
        sp.optimizer_state_bytes(),
        fwd_window,
        pipefill_sim_core::SimDuration::from_millis(400),
    );
    let base = steady_recovered_tflops(&main, &exec, &ModelMix::paper_mix());
    let offloaded = steady_recovered_tflops(
        &main.clone().with_memory(BubbleMemoryModel::Uniform(
            Bytes::from_gib_f64(4.5) + plan.offloaded,
        )),
        &exec,
        &ModelMix::paper_mix(),
    );
    println!(
        "\nMain-job offloading ablation: +{} bubble memory → {:.2} → {:.2} TFLOPS/GPU recovered",
        plan.offloaded, base, offloaded
    );
    let _ = timeline;

    c.bench_function("fig10/steady_at_2gib", |bch| {
        let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe)
            .with_memory(BubbleMemoryModel::Uniform(Bytes::from_gib(2)));
        bch.iter(|| steady_recovered_tflops(&main, &exec, &ModelMix::paper_mix()))
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
