//! Fig. 7 — fill-job characterization: achieved TFLOPS during bubble
//! execution (7a) and slowdown vs exclusive GPUs (7b), plus the
//! Algorithm-1-vs-naive-packing ablation from DESIGN.md §6.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_core::experiments::characterization::fig7_default_main;
use pipefill_core::steady_rate;
use pipefill_executor::ExecutorConfig;
use pipefill_model_zoo::{JobKind, ModelId};

fn bench(c: &mut Criterion) {
    let main = fig7_default_main();
    let exec = ExecutorConfig::default();
    println!("\nFig. 7 — fill-job characterization (40B main job, 8K-GPU bubbles):");
    regenerate("fig7_characterization");

    c.bench_function("fig7/steady_rate_bert_inference", |b| {
        b.iter(|| steady_rate(&main, &exec, ModelId::BertBase, JobKind::BatchInference))
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
