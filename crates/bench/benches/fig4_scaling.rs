//! Fig. 4 — main-job training time (a), bubble ratio (b) and GPU
//! utilization (c) while scaling the 40B job across 1K–8K GPUs.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};

fn bench(c: &mut Criterion) {
    println!("\nFig. 4 — scaling the 40B main job:");
    regenerate("fig4_scaling");

    c.bench_function("fig4/scaling_point", |b| {
        b.iter(|| MainJobSpec::simulator_40b(16, ScheduleKind::GPipe).scaling_point())
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
