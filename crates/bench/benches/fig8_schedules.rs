//! Fig. 8 — fill-job utilization under GPipe vs 1F1B main-job schedules,
//! 2K–16K GPUs.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};

fn bench(c: &mut Criterion) {
    println!("\nFig. 8 — GPipe vs 1F1B:");
    regenerate("fig8_schedules");

    c.bench_function("fig8/one_f_one_b_timeline_16k", |b| {
        b.iter(|| MainJobSpec::simulator_40b(4, ScheduleKind::OneFOneB).engine_timeline())
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
