//! Fig. 8 — fill-job utilization under GPipe vs 1F1B main-job schedules,
//! 2K–16K GPUs.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, experiment_csv};
use pipefill_core::experiments::schedules::{fig8_schedules, print_schedules, save_schedules};
use pipefill_executor::ExecutorConfig;
use pipefill_pipeline::{MainJobSpec, ScheduleKind};

fn bench(c: &mut Criterion) {
    let rows = fig8_schedules(&ExecutorConfig::default());
    println!("\nFig. 8 — GPipe vs 1F1B:");
    print_schedules(&rows);
    save_schedules(&rows, &experiment_csv("fig8_schedules.csv")).expect("csv");

    c.bench_function("fig8/one_f_one_b_timeline_16k", |b| {
        b.iter(|| MainJobSpec::simulator_40b(4, ScheduleKind::OneFOneB).engine_timeline())
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
