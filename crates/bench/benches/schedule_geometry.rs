//! Schedule × depth bubble-geometry sweep — GPipe, 1F1B, interleaved
//! 1F1B and ZB-H1 engine timelines across pipeline depths.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_pipeline::{EngineConfig, ScheduleKind};
use pipefill_sim_core::SimDuration;

fn bench(c: &mut Criterion) {
    println!("\nSchedule × depth bubble-geometry sweep:");
    regenerate("schedule_depth");

    // One timeline derivation per schedule at the 16-stage × 32-microbatch
    // point: the interleaved arm exercises the constructive generator,
    // ZB-H1 the B/W-split execution.
    let (tf, tb) = (SimDuration::from_millis(43), SimDuration::from_millis(86));
    for schedule in ScheduleKind::ALL {
        c.bench_function(
            &format!("schedule_geometry/{schedule}_timeline_p16_m32"),
            |b| b.iter(|| EngineConfig::uniform(schedule, 16, 32, tf, tb).run()),
        );
    }
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
