//! Schedule × depth bubble-geometry sweep — GPipe, 1F1B, interleaved
//! 1F1B and ZB-H1 engine timelines across pipeline depths.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, experiment_csv};
use pipefill_core::experiments::schedules::{
    print_depth_sweep, save_depth_sweep, schedule_depth_sweep,
};
use pipefill_pipeline::{EngineConfig, ScheduleKind};
use pipefill_sim_core::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = schedule_depth_sweep();
    println!("\nSchedule × depth bubble-geometry sweep:");
    print_depth_sweep(&rows);
    save_depth_sweep(&rows, &experiment_csv("schedule_depth.csv")).expect("csv");

    // One timeline derivation per schedule at the 16-stage × 32-microbatch
    // point: the interleaved arm exercises the constructive generator,
    // ZB-H1 the B/W-split execution.
    let (tf, tb) = (SimDuration::from_millis(43), SimDuration::from_millis(86));
    for schedule in ScheduleKind::ALL {
        c.bench_function(
            &format!("schedule_geometry/{schedule}_timeline_p16_m32"),
            |b| b.iter(|| EngineConfig::uniform(schedule, 16, 32, tf, tb).run()),
        );
    }
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
