//! Fig. 1 — utilization of LLM-training GPUs, traditional PP vs PipeFill,
//! while scaling a 40B model from 1K to 8K GPUs. (The two-series subset
//! of Fig. 4c.)

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, experiment_csv};
use pipefill_core::experiments::scaling::{fig4_scaling, save_scaling};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};

fn bench(c: &mut Criterion) {
    let rows = fig4_scaling();
    println!("\nFig. 1 — TFLOPS/GPU while scaling the 40B LLM:");
    println!(
        "{:>6} {:>18} {:>22}",
        "GPUs", "Traditional PP", "PipeFill (trace mix)"
    );
    for r in &rows {
        println!(
            "{:>6} {:>18.1} {:>22.1}",
            r.gpus, r.traditional_tflops, r.pipefill_trace_mix_tflops
        );
    }
    save_scaling(&rows, &experiment_csv("fig1_utilization.csv")).expect("csv");

    c.bench_function("fig1/engine_timeline_8k", |b| {
        b.iter(|| MainJobSpec::simulator_40b(8, ScheduleKind::GPipe).engine_timeline())
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
