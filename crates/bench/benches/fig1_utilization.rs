//! Fig. 1 — utilization of LLM-training GPUs, traditional PP vs PipeFill,
//! while scaling a 40B model from 1K to 8K GPUs. (The two-series subset
//! of Fig. 4c.)

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};

fn bench(c: &mut Criterion) {
    println!("\nFig. 1 — TFLOPS/GPU while scaling the 40B LLM (Fig. 4 sweep):");
    let table = regenerate("fig4_scaling");
    let gpus = table.f64_column("gpus");
    let trad = table.f64_column("traditional_tflops");
    let mix = table.f64_column("pipefill_trace_mix_tflops");
    println!(
        "\n{:>6} {:>18} {:>22}",
        "GPUs", "Traditional PP", "PipeFill (trace mix)"
    );
    for i in 0..gpus.len() {
        println!("{:>6} {:>18.1} {:>22.1}", gpus[i], trad[i], mix[i]);
    }

    c.bench_function("fig1/engine_timeline_8k", |b| {
        b.iter(|| MainJobSpec::simulator_40b(8, ScheduleKind::GPipe).engine_timeline())
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
