//! Fig. 6 — simulator validation: fine-grained "physical" measurements vs
//! the coarse profile-driven prediction while sweeping the fill-job mix
//! from all-XLM to all-EfficientNet.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, experiment_csv};
use pipefill_core::experiments::validation::{
    fig6_agreement, fig6_validation, print_agreement, print_validation, save_validation,
};
use pipefill_core::steady_recovered_tflops;
use pipefill_executor::ExecutorConfig;
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_trace::ModelMix;

fn bench(c: &mut Criterion) {
    let rows = fig6_validation(300, 7);
    println!("\nFig. 6 — simulator vs physical, varying the fill-job mix:");
    print_validation(&rows);
    let max_err = rows.iter().map(|r| r.relative_error).fold(0.0, f64::max);
    println!(
        "maximum simulator error: {:.2}% (paper: <2%)",
        100.0 * max_err
    );
    save_validation(&rows, &experiment_csv("fig6_validation.csv")).expect("csv");

    println!("\ncross-backend agreement (coarse vs physical on the shared kernel):");
    let agreement = fig6_agreement(&[1, 2, 3], 200);
    print_agreement(&agreement);

    c.bench_function("fig6/steady_prediction", |b| {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        b.iter(|| {
            steady_recovered_tflops(&main, &ExecutorConfig::default(), &ModelMix::paper_mix())
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
