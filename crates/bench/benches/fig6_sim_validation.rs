//! Fig. 6 — simulator validation: fine-grained "physical" measurements vs
//! the coarse profile-driven prediction while sweeping the fill-job mix
//! from all-XLM to all-EfficientNet.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_core::steady_recovered_tflops;
use pipefill_executor::ExecutorConfig;
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_trace::ModelMix;

fn bench(c: &mut Criterion) {
    println!("\nFig. 6 — simulator vs physical, varying the fill-job mix:");
    regenerate("fig6_validation");

    println!("\ncross-backend agreement (coarse vs physical on the shared kernel):");
    regenerate("fig6_agreement");

    c.bench_function("fig6/steady_prediction", |b| {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        b.iter(|| {
            steady_recovered_tflops(&main, &ExecutorConfig::default(), &ModelMix::paper_mix())
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
