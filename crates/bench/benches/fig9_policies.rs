//! Fig. 9 — scheduling-policy sensitivity: average JCT (9a) and makespan
//! (9b) for SJF vs Makespan-Min across offered loads.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_core::{BackendConfig, ClusterSimConfig};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;
use pipefill_trace::TraceConfig;

fn bench(c: &mut Criterion) {
    println!("\nFig. 9 — scheduling policies:");
    regenerate("fig9_policies");

    c.bench_function("fig9/coarse_backend_30min_trace", |b| {
        b.iter(|| {
            let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
            let mut trace = TraceConfig::physical(11);
            trace.horizon = SimDuration::from_secs(1800);
            BackendConfig::Coarse(ClusterSimConfig::new(main, trace))
                .run()
                .metrics
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
