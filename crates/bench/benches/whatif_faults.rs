//! Fault-tolerance map — the MTBF × checkpoint-cost sweep through the
//! heterogeneous + fault-injecting backend, plus a timing probe of one
//! fault-backend run (the newest simulation hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_core::{BackendConfig, FaultSimConfig};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;

fn bench(c: &mut Criterion) {
    println!("\nFault-tolerance map — MTBF × checkpoint cost on the 5B cluster:");
    regenerate("whatif_faults");

    c.bench_function("faults/one_run_60_iters", |b| {
        b.iter(|| {
            let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
            let mut cfg = FaultSimConfig::new(main).with_mtbf(SimDuration::from_secs(1800));
            cfg.iterations = 60;
            BackendConfig::Fault(cfg).run().metrics
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
