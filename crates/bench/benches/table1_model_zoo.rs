//! Table 1 — the fill-job category table, regenerated from the model zoo
//! (plus a build-speed benchmark of the zoo itself).

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_model_zoo::ModelId;

fn bench(c: &mut Criterion) {
    println!("\nTable 1 — fill-job categories:");
    regenerate("table1");

    c.bench_function("table1/build_zoo", |b| {
        b.iter(|| {
            ModelId::ALL
                .iter()
                .map(|m| m.build().total_params())
                .sum::<u64>()
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
