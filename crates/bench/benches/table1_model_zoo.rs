//! Table 1 — the fill-job category table, regenerated from the model zoo
//! (plus a build-speed benchmark of the zoo itself).

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, experiment_csv};
use pipefill_core::experiments::table1::{print_table1, save_table1, table1};
use pipefill_model_zoo::ModelId;

fn bench(c: &mut Criterion) {
    let rows = table1();
    println!("\nTable 1 — fill-job categories:");
    print_table1(&rows);
    save_table1(&rows, &experiment_csv("table1.csv")).expect("csv");

    c.bench_function("table1/build_zoo", |b| {
        b.iter(|| {
            ModelId::ALL
                .iter()
                .map(|m| m.build().total_params())
                .sum::<u64>()
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
