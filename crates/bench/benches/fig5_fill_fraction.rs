//! Fig. 5 — main-job overhead and recovered TFLOPS vs the fraction of
//! each bubble filled, on the fine-grained "physical" 5B/16-GPU setup.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, experiment_csv};
use pipefill_core::experiments::fill_fraction::{
    fig5_fill_fraction, print_fill_fraction, save_fill_fraction,
};
use pipefill_core::{BackendConfig, PhysicalSimConfig};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};

fn bench(c: &mut Criterion) {
    let rows = fig5_fill_fraction(300, 7);
    println!("\nFig. 5 — fill-fraction sweep (5B physical cluster):");
    print_fill_fraction(&rows);
    save_fill_fraction(&rows, &experiment_csv("fig5_fill_fraction.csv")).expect("csv");

    c.bench_function("fig5/physical_backend_100_iters", |b| {
        b.iter(|| {
            let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
            let mut cfg = PhysicalSimConfig::new(main);
            cfg.iterations = 100;
            BackendConfig::Physical(cfg).run().metrics
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
