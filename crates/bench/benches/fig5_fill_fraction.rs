//! Fig. 5 — main-job overhead and recovered TFLOPS vs the fraction of
//! each bubble filled, on the fine-grained "physical" 5B/16-GPU setup.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_core::{BackendConfig, PhysicalSimConfig};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};

fn bench(c: &mut Criterion) {
    println!("\nFig. 5 — fill-fraction sweep (5B physical cluster):");
    regenerate("fig5_fill_fraction");

    c.bench_function("fig5/physical_backend_100_iters", |b| {
        b.iter(|| {
            let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
            let mut cfg = PhysicalSimConfig::new(main);
            cfg.iterations = 100;
            BackendConfig::Physical(cfg).run().metrics
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
