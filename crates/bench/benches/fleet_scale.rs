//! Fleet-size scaling — the multi-job sweep through the fleet backend
//! (1 → 64 concurrent jobs, up to 8K GPUs, one global fill queue), plus
//! timing probes of the two fleet hot paths: a rack-scale fleet run and
//! the 64-job construction + simulation at the paper's projection scale.

use criterion::{criterion_group, criterion_main, Criterion};
use pipefill_bench::{criterion_config, regenerate};
use pipefill_core::experiments::fleet::FLEET_MTBF;
use pipefill_core::{BackendConfig, FleetSimConfig};
use pipefill_trace::FleetWorkloadConfig;

fn bench(c: &mut Criterion) {
    println!("\nFleet-size scaling — multi-job fleets on one global fill queue:");
    regenerate("fleet_scale");

    c.bench_function("fleet/rack_scale_4_jobs_150_iters", |b| {
        b.iter(|| {
            let mut workload = FleetWorkloadConfig::rack_scale(7);
            workload.iterations = 150;
            let cfg = FleetSimConfig::from_workload(&workload).with_mtbf(FLEET_MTBF);
            BackendConfig::Fleet(cfg).run().metrics
        })
    });

    c.bench_function("fleet/production_64_jobs_8k_gpus", |b| {
        b.iter(|| {
            let mut workload = FleetWorkloadConfig::production_8k(7);
            workload.iterations = 150;
            let cfg = FleetSimConfig::from_workload(&workload).with_mtbf(FLEET_MTBF);
            BackendConfig::Fleet(cfg).run().metrics
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
