//! Perf-snapshot harness: measures steady-state fast-forward wall-clock
//! wins and pins them in checked-in JSON snapshots.
//!
//! Two documents live at the repository root:
//!
//! * `BENCH_fleet.json` — the fleet backend. The `full`-profile headline
//!   simulates a week of a 1000-job / 112,000-GPU fleet both with the
//!   skip on and at event fidelity; the `ci`-profile entry is a day-long
//!   32-job fleet small enough for the CI gate to re-measure.
//! * `BENCH_engine.json` — the single-job physical backend at two
//!   iteration horizons.
//!
//! Modes:
//!
//! * `perf_snapshot` (no flags) regenerates both files, measuring every
//!   entry including the headline's event-fidelity baseline — expect
//!   several minutes.
//! * `perf_snapshot --check [--profile ci|full|all]` parses and
//!   validates the checked-in files, enforces the recorded speedup
//!   floor, then re-measures the selected profile (default `ci`) and
//!   fails on a fresh speedup below the floor or — when the recorded
//!   `runner_class` matches `PERF_RUNNER_CLASS` (default `local-dev`) —
//!   a wall-clock regression beyond the tolerance. Wall numbers from a
//!   different machine class are reported but not compared.
#![forbid(unsafe_code)]

use std::time::Instant;

use pipefill_bench::snapshot::{
    Entry, Snapshot, NOISE_FLOOR_SECS, REGRESSION_TOLERANCE, SCHEMA, SPEEDUP_FLOOR,
};
use pipefill_core::{BackendConfig, FleetJobConfig, FleetSimConfig, PhysicalSimConfig};
use pipefill_model_zoo::ModelId;
use pipefill_pipeline::{MainJobSpec, ParallelismConfig, ScheduleKind};
use pipefill_trace::ModelMix;

/// Fleet fill-job size (job-GPU-hours). Large enough to keep the
/// completed-id volume tractable at week scale, small enough that the
/// steady-state detector still proves a cycle under GPipe.
const FLEET_BACKLOG: f64 = 0.002;

/// Physical-backend fill-job size: the regime every schedule detects in.
const ENGINE_BACKLOG: f64 = 0.0005;

/// One measurement the harness knows how to (re)run.
struct Spec {
    name: &'static str,
    profile: &'static str,
    /// Fleet entries run this many concurrent jobs; `None` selects the
    /// single-job physical backend.
    fleet_jobs: Option<usize>,
    /// Simulated horizon: wall of the main job, in simulated seconds
    /// (fleet) or iterations (engine).
    horizon_secs: f64,
    iterations: usize,
}

fn fleet_specs() -> Vec<Spec> {
    vec![
        Spec {
            name: "fleet_week_headline",
            profile: "full",
            fleet_jobs: Some(1000),
            horizon_secs: 604_800.0,
            iterations: 0,
        },
        Spec {
            name: "fleet_day_gate",
            profile: "ci",
            fleet_jobs: Some(32),
            horizon_secs: 86_400.0,
            iterations: 0,
        },
    ]
}

fn engine_specs() -> Vec<Spec> {
    vec![
        Spec {
            name: "engine_1m_iters",
            profile: "full",
            fleet_jobs: None,
            horizon_secs: 0.0,
            iterations: 1_000_000,
        },
        Spec {
            name: "engine_100k_iters",
            profile: "ci",
            fleet_jobs: None,
            horizon_secs: 0.0,
            iterations: 100_000,
        },
    ]
}

/// The headline fleet job: tp=2 / pp=8 / dp=7 — 112 GPUs per job, so a
/// thousand of them model a >100K-GPU fleet.
fn fleet_main_job() -> MainJobSpec {
    let mut main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    main.parallelism = ParallelismConfig::new(2, 8, 7, 2, 112);
    main
}

/// A quiescent fleet config — no jitter draws, deterministic single-model
/// mix, no failure injection — the regime the detector arms in.
fn fleet_config(jobs: usize, iterations: usize, fast_forward: bool) -> BackendConfig {
    let main = fleet_main_job();
    let jobs = (0..jobs)
        .map(|j| {
            let mut job = FleetJobConfig::new(main.clone());
            job.iterations = iterations;
            job.seed = 7 + j as u64;
            job
        })
        .collect();
    let mut cfg = FleetSimConfig::new(jobs);
    cfg.jitter_cv = 0.0;
    cfg.deterministic_mix = true;
    cfg.mix = ModelMix::single(ModelId::EfficientNet);
    cfg.backlog_job_gpu_hours = FLEET_BACKLOG;
    cfg.fast_forward = fast_forward;
    BackendConfig::Fleet(cfg)
}

/// The quiescent single-job physical config at a given horizon.
fn engine_config(iterations: usize, fast_forward: bool) -> BackendConfig {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut cfg = PhysicalSimConfig::new(main).with_fill_fraction(0.68);
    cfg.iterations = iterations;
    cfg.seed = 7;
    cfg.jitter_cv = 0.0;
    cfg.deterministic_mix = true;
    cfg.mix = ModelMix::single(ModelId::EfficientNet);
    cfg.backlog_job_gpu_hours = ENGINE_BACKLOG;
    cfg.fast_forward = fast_forward;
    BackendConfig::Physical(cfg)
}

/// Runs one spec in both modes and returns the measured entry.
///
/// Besides timing, this cross-checks the invariant the snapshot's value
/// rests on: the skipped and event-fidelity runs must agree bit-for-bit
/// on the accumulated fill flops.
fn measure(spec: &Spec) -> Result<Entry, String> {
    let (cfg_on, cfg_off, jobs, gpus) = match spec.fleet_jobs {
        Some(jobs) => {
            let main = fleet_main_job();
            let period = main.engine_timeline().period.as_secs_f64();
            let iters = (spec.horizon_secs / period).ceil() as usize;
            (
                fleet_config(jobs, iters, true),
                fleet_config(jobs, iters, false),
                jobs as u64,
                (jobs * main.parallelism.total_gpus()) as u64,
            )
        }
        None => {
            let gpus = MainJobSpec::physical_5b(8, ScheduleKind::GPipe)
                .parallelism
                .total_gpus() as u64;
            (
                engine_config(spec.iterations, true),
                engine_config(spec.iterations, false),
                1,
                gpus,
            )
        }
    };

    let t = Instant::now();
    let run_on = cfg_on.run();
    let wall_on = t.elapsed().as_secs_f64().max(1e-6);

    let t = Instant::now();
    let run_off = cfg_off.run();
    let wall_off = t.elapsed().as_secs_f64().max(1e-6);

    let skipped = run_on
        .as_physical()
        .map(|r| r.iterations_fast_forwarded)
        .or_else(|| run_on.as_fleet().map(|r| r.iterations_fast_forwarded))
        .expect("simulation backends report the skip counter");
    if skipped == 0 {
        return Err(format!(
            "{}: fast-forward never fired; the measurement is meaningless",
            spec.name
        ));
    }
    let (flops_on, flops_off) = (
        run_on.metrics().fill_flops.to_bits(),
        run_off.metrics().fill_flops.to_bits(),
    );
    if flops_on != flops_off {
        return Err(format!(
            "{}: fast-forward changed fill_flops ({flops_on:#x} vs {flops_off:#x})",
            spec.name
        ));
    }

    Ok(Entry {
        name: spec.name.to_string(),
        profile: spec.profile.to_string(),
        jobs,
        gpus,
        simulated_secs: run_on.metrics().elapsed.as_secs_f64(),
        iterations_fast_forwarded: skipped,
        wall_secs_ff_on: wall_on,
        wall_secs_ff_off: wall_off,
        speedup: wall_off / wall_on,
    })
}

fn runner_class() -> String {
    std::env::var("PERF_RUNNER_CLASS").unwrap_or_else(|_| "local-dev".to_string())
}

/// `<repo root>/<file>` — the snapshots live next to the README.
fn snapshot_path(file: &str) -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../..");
    p.push(file);
    p
}

fn write_snapshots() -> Result<(), String> {
    for (file, specs) in [
        ("BENCH_fleet.json", fleet_specs()),
        ("BENCH_engine.json", engine_specs()),
    ] {
        let mut entries = Vec::new();
        for spec in &specs {
            eprintln!("measuring {} ({})...", spec.name, spec.profile);
            let entry = measure(spec)?;
            eprintln!(
                "  on={:.2}s off={:.2}s speedup={:.1}x",
                entry.wall_secs_ff_on, entry.wall_secs_ff_off, entry.speedup
            );
            entries.push(entry);
        }
        let snapshot = Snapshot {
            schema: SCHEMA.to_string(),
            runner_class: runner_class(),
            entries,
        };
        snapshot.validate()?;
        let path = snapshot_path(file);
        std::fs::write(&path, snapshot.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn check_snapshots(profile: &str) -> Result<(), String> {
    let current_class = runner_class();
    for (file, specs) in [
        ("BENCH_fleet.json", fleet_specs()),
        ("BENCH_engine.json", engine_specs()),
    ] {
        let path = snapshot_path(file);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let snapshot = Snapshot::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        snapshot.validate().map_err(|e| format!("{file}: {e}"))?;
        for e in &snapshot.entries {
            if e.speedup > 0.0 && e.speedup < SPEEDUP_FLOOR {
                return Err(format!(
                    "{file}: recorded speedup for '{}' is {:.1}x, below the {SPEEDUP_FLOOR}x floor",
                    e.name, e.speedup
                ));
            }
        }
        println!("{file}: schema + recorded-speedup checks passed");

        for spec in specs
            .iter()
            .filter(|s| profile == "all" || s.profile == profile)
        {
            let recorded = snapshot
                .entries
                .iter()
                .find(|e| e.name == spec.name)
                .ok_or_else(|| format!("{file}: missing entry '{}'", spec.name))?;
            eprintln!("re-measuring {}...", spec.name);
            let fresh = measure(spec)?;
            println!(
                "{}: fresh on={:.2}s off={:.2}s speedup={:.1}x (recorded {:.2}s/{:.2}s)",
                spec.name,
                fresh.wall_secs_ff_on,
                fresh.wall_secs_ff_off,
                fresh.speedup,
                recorded.wall_secs_ff_on,
                recorded.wall_secs_ff_off,
            );
            if fresh.speedup < SPEEDUP_FLOOR {
                return Err(format!(
                    "{file}: fresh speedup for '{}' is {:.1}x, below the {SPEEDUP_FLOOR}x floor",
                    spec.name, fresh.speedup
                ));
            }
            if snapshot.runner_class != current_class {
                println!(
                    "  wall-clock gate skipped: snapshot is from runner class '{}', this is '{}'",
                    snapshot.runner_class, current_class
                );
                continue;
            }
            let limit = 1.0 + REGRESSION_TOLERANCE;
            if fresh.wall_secs_ff_on > recorded.wall_secs_ff_on * limit + NOISE_FLOOR_SECS {
                return Err(format!(
                    "{file}: '{}' fast-forward wall regressed {:.2}s -> {:.2}s (>{:.0}%)",
                    spec.name,
                    recorded.wall_secs_ff_on,
                    fresh.wall_secs_ff_on,
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
            if fresh.wall_secs_ff_off > recorded.wall_secs_ff_off * limit + NOISE_FLOOR_SECS {
                return Err(format!(
                    "{file}: '{}' event-fidelity wall regressed {:.2}s -> {:.2}s (>{:.0}%)",
                    spec.name,
                    recorded.wall_secs_ff_off,
                    fresh.wall_secs_ff_off,
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut profile = String::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--profile" => {
                profile = it
                    .next()
                    .ok_or_else(|| "--profile needs a value".to_string())?
                    .clone();
                if !matches!(profile.as_str(), "ci" | "full" | "all") {
                    return Err(format!("--profile expects ci|full|all, got '{profile}'"));
                }
            }
            other => {
                return Err(format!(
                    "unknown flag '{other}' (usage: perf_snapshot [--check] [--profile ci|full|all])"
                ));
            }
        }
    }
    if check {
        check_snapshots(if profile.is_empty() { "ci" } else { &profile })
    } else {
        if !profile.is_empty() {
            return Err("--profile only applies to --check; writing measures everything".into());
        }
        write_snapshots()
    }
}

fn main() {
    if let Err(message) = run() {
        eprintln!("perf_snapshot: {message}");
        std::process::exit(1);
    }
}
