//! The perf-snapshot format: a checked-in JSON record of wall-clock
//! timings pinning the simulator's performance trajectory.
//!
//! The workspace's dependency policy has no JSON crate, so the writer
//! and the reader are hand-rolled for exactly this document shape — one
//! flat object with a list of flat entry objects, no escapes, no
//! nesting beyond that. A snapshot that fails [`Snapshot::validate`]
//! (wrong schema, non-finite numbers, an entry whose fast-forward never
//! fired) is rejected loudly by the `perf_snapshot --check` CI gate.
//!
//! Wall-clock numbers are only comparable on the same machine class, so
//! every snapshot carries a `runner_class` tag (the `PERF_RUNNER_CLASS`
//! environment variable at generation time); the regression gate
//! compares a fresh run against a recorded entry only when the classes
//! match, and otherwise falls back to schema + speedup-floor checks.

/// Schema tag every snapshot must carry.
pub const SCHEMA: &str = "pipefill-perf-snapshot/v1";

/// The speedup floor `--check` enforces on every entry that measured
/// both modes: fast-forward must pay for itself by at least this factor.
pub const SPEEDUP_FLOOR: f64 = 10.0;

/// Allowed wall-clock regression before `--check` fails, as a fraction
/// of the recorded time (same runner class only).
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// Absolute slack added on top of [`REGRESSION_TOLERANCE`]: a fraction
/// of a sub-100ms measurement is timer noise, not a regression signal.
pub const NOISE_FLOOR_SECS: f64 = 0.1;

/// One checked-in perf-snapshot document.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Must equal [`SCHEMA`].
    pub schema: String,
    /// Machine class the wall-clock numbers were measured on.
    pub runner_class: String,
    /// The measurements.
    pub entries: Vec<Entry>,
}

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Stable name the regression gate matches entries by.
    pub name: String,
    /// Which profile produced it (`ci` runs in the gate, `full` is the
    /// headline generated at snapshot-refresh time).
    pub profile: String,
    /// Concurrent main jobs simulated.
    pub jobs: u64,
    /// Total GPUs the simulated fleet represents.
    pub gpus: u64,
    /// Simulated span in seconds.
    pub simulated_secs: f64,
    /// Iterations the fast-forward skipped in the `on` run (must be
    /// positive — a snapshot whose skip never fired measures nothing).
    pub iterations_fast_forwarded: u64,
    /// Wall seconds with fast-forward on.
    pub wall_secs_ff_on: f64,
    /// Wall seconds with fast-forward off; 0 when the event-fidelity
    /// baseline was not measured for this entry.
    pub wall_secs_ff_off: f64,
    /// `wall_secs_ff_off / wall_secs_ff_on`; 0 when off was unmeasured.
    pub speedup: f64,
}

impl Snapshot {
    /// Renders the document; `parse(to_json(s)) == s`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        out.push_str(&format!("  \"runner_class\": \"{}\",\n", self.runner_class));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", e.name));
            out.push_str(&format!("      \"profile\": \"{}\",\n", e.profile));
            out.push_str(&format!("      \"jobs\": {},\n", e.jobs));
            out.push_str(&format!("      \"gpus\": {},\n", e.gpus));
            out.push_str(&format!(
                "      \"simulated_secs\": {:?},\n",
                e.simulated_secs
            ));
            out.push_str(&format!(
                "      \"iterations_fast_forwarded\": {},\n",
                e.iterations_fast_forwarded
            ));
            out.push_str(&format!(
                "      \"wall_secs_ff_on\": {:?},\n",
                e.wall_secs_ff_on
            ));
            out.push_str(&format!(
                "      \"wall_secs_ff_off\": {:?},\n",
                e.wall_secs_ff_off
            ));
            out.push_str(&format!("      \"speedup\": {:?}\n", e.speedup));
            out.push_str(if i + 1 == self.entries.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a snapshot document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON (within the subset the
    /// writer emits), missing or mistyped fields, and unknown keys.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let value = json::parse(text)?;
        let obj = value.as_object("document")?;
        let mut snapshot = Snapshot {
            schema: String::new(),
            runner_class: String::new(),
            entries: Vec::new(),
        };
        for (key, v) in obj {
            match key.as_str() {
                "schema" => snapshot.schema = v.as_string("schema")?,
                "runner_class" => snapshot.runner_class = v.as_string("runner_class")?,
                "entries" => {
                    for (i, item) in v.as_array("entries")?.iter().enumerate() {
                        snapshot.entries.push(parse_entry(item, i)?);
                    }
                }
                other => return Err(format!("unknown snapshot key '{other}'")),
            }
        }
        if snapshot.schema.is_empty() {
            return Err("snapshot is missing 'schema'".into());
        }
        Ok(snapshot)
    }

    /// Structural sanity: schema tag, finite positive timings, fired
    /// fast-forward, unique names, and the speedup identity.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending entry and field.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!(
                "schema mismatch: expected '{SCHEMA}', got '{}'",
                self.schema
            ));
        }
        if self.runner_class.is_empty() {
            return Err("runner_class must be non-empty".into());
        }
        if self.entries.is_empty() {
            return Err("a snapshot needs at least one entry".into());
        }
        let mut names: Vec<&str> = Vec::new();
        for e in &self.entries {
            let ctx = |field: &str| format!("entry '{}': {field}", e.name);
            if e.name.is_empty() {
                return Err("an entry has an empty name".into());
            }
            if names.contains(&e.name.as_str()) {
                return Err(format!("duplicate entry name '{}'", e.name));
            }
            names.push(&e.name);
            if !matches!(e.profile.as_str(), "ci" | "full") {
                return Err(ctx(&format!("unknown profile '{}'", e.profile)));
            }
            if e.jobs == 0 || e.gpus == 0 {
                return Err(ctx("jobs and gpus must be positive"));
            }
            if !(e.simulated_secs > 0.0 && e.simulated_secs.is_finite()) {
                return Err(ctx("simulated_secs must be finite and positive"));
            }
            if e.iterations_fast_forwarded == 0 {
                return Err(ctx("fast-forward never fired; the entry measures nothing"));
            }
            if !(e.wall_secs_ff_on > 0.0 && e.wall_secs_ff_on.is_finite()) {
                return Err(ctx("wall_secs_ff_on must be finite and positive"));
            }
            if !(e.wall_secs_ff_off >= 0.0 && e.wall_secs_ff_off.is_finite()) {
                return Err(ctx("wall_secs_ff_off must be finite and non-negative"));
            }
            if !(e.speedup >= 0.0 && e.speedup.is_finite()) {
                return Err(ctx("speedup must be finite and non-negative"));
            }
            if (e.wall_secs_ff_off > 0.0) != (e.speedup > 0.0) {
                return Err(ctx("speedup and wall_secs_ff_off must be set together"));
            }
        }
        Ok(())
    }
}

fn parse_entry(value: &json::Value, index: usize) -> Result<Entry, String> {
    let obj = value.as_object(&format!("entries[{index}]"))?;
    let mut e = Entry {
        name: String::new(),
        profile: String::new(),
        jobs: 0,
        gpus: 0,
        simulated_secs: 0.0,
        iterations_fast_forwarded: 0,
        wall_secs_ff_on: 0.0,
        wall_secs_ff_off: 0.0,
        speedup: 0.0,
    };
    for (key, v) in obj {
        match key.as_str() {
            "name" => e.name = v.as_string(key)?,
            "profile" => e.profile = v.as_string(key)?,
            "jobs" => e.jobs = v.as_u64(key)?,
            "gpus" => e.gpus = v.as_u64(key)?,
            "simulated_secs" => e.simulated_secs = v.as_f64(key)?,
            "iterations_fast_forwarded" => e.iterations_fast_forwarded = v.as_u64(key)?,
            "wall_secs_ff_on" => e.wall_secs_ff_on = v.as_f64(key)?,
            "wall_secs_ff_off" => e.wall_secs_ff_off = v.as_f64(key)?,
            "speedup" => e.speedup = v.as_f64(key)?,
            other => return Err(format!("entries[{index}]: unknown key '{other}'")),
        }
    }
    if e.name.is_empty() {
        return Err(format!("entries[{index}] is missing 'name'"));
    }
    Ok(e)
}

/// The minimal JSON reader backing [`Snapshot::parse`]: objects, arrays,
/// escape-free strings, numbers. Exactly the subset the writer emits —
/// a snapshot hand-edited beyond it fails loudly rather than silently.
mod json {
    /// A parsed JSON value (the supported subset).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Escape-free string.
        String(String),
        /// Any JSON number.
        Number(f64),
        /// `{...}` with string keys, insertion order kept.
        Object(Vec<(String, Value)>),
        /// `[...]`.
        Array(Vec<Value>),
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Object(pairs) => Ok(pairs),
                other => Err(format!("{what}: expected an object, got {other:?}")),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Array(items) => Ok(items),
                other => Err(format!("{what}: expected an array, got {other:?}")),
            }
        }

        pub fn as_string(&self, what: &str) -> Result<String, String> {
            match self {
                Value::String(s) => Ok(s.clone()),
                other => Err(format!("{what}: expected a string, got {other:?}")),
            }
        }

        pub fn as_f64(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Number(n) => Ok(*n),
                other => Err(format!("{what}: expected a number, got {other:?}")),
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            let n = self.as_f64(what)?;
            if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                return Err(format!("{what}: expected a non-negative integer, got {n}"));
            }
            Ok(n as u64)
        }
    }

    /// Parses one document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
            _ => Err(format!("unexpected content at byte {pos}")),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            pairs.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a string at byte {pos}"));
        }
        let start = *pos + 1;
        let mut end = start;
        while let Some(&c) = bytes.get(end) {
            match c {
                b'"' => {
                    *pos = end + 1;
                    return String::from_utf8(bytes[start..end].to_vec())
                        .map_err(|_| "invalid UTF-8 in string".to_string());
                }
                b'\\' => return Err(format!("escape sequences unsupported (byte {end})")),
                _ => end += 1,
            }
        }
        Err(format!("unterminated string starting at byte {start}"))
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        let mut end = *pos;
        while let Some(&c) = bytes.get(end) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                end += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&bytes[start..end]).expect("ascii number bytes");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("malformed number '{text}' at byte {start}"))?;
        *pos = end;
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            schema: SCHEMA.to_string(),
            runner_class: "test-runner".to_string(),
            entries: vec![
                Entry {
                    name: "fleet_headline".into(),
                    profile: "full".into(),
                    jobs: 1000,
                    gpus: 112_000,
                    simulated_secs: 604_800.0,
                    iterations_fast_forwarded: 274_000_000,
                    wall_secs_ff_on: 5.25,
                    wall_secs_ff_off: 320.5,
                    speedup: 61.0476,
                },
                Entry {
                    name: "fleet_speedup".into(),
                    profile: "ci".into(),
                    jobs: 64,
                    gpus: 7168,
                    simulated_secs: 14_400.0,
                    iterations_fast_forwarded: 400_000,
                    wall_secs_ff_on: 0.02,
                    wall_secs_ff_off: 0.51,
                    speedup: 25.5,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let snap = sample();
        let text = snap.to_json();
        assert_eq!(Snapshot::parse(&text).unwrap(), snap);
        snap.validate().unwrap();
    }

    #[test]
    fn validate_rejects_degenerate_snapshots() {
        let mut s = sample();
        s.schema = "perf/v0".into();
        assert!(s.validate().unwrap_err().contains("schema mismatch"));

        let mut s = sample();
        s.runner_class.clear();
        assert!(s.validate().unwrap_err().contains("runner_class"));

        let mut s = sample();
        s.entries.clear();
        assert!(s.validate().unwrap_err().contains("at least one entry"));

        let mut s = sample();
        s.entries[1].name = s.entries[0].name.clone();
        assert!(s.validate().unwrap_err().contains("duplicate entry"));

        let mut s = sample();
        s.entries[0].iterations_fast_forwarded = 0;
        assert!(s.validate().unwrap_err().contains("never fired"));

        let mut s = sample();
        s.entries[0].wall_secs_ff_on = 0.0;
        assert!(s.validate().unwrap_err().contains("wall_secs_ff_on"));

        let mut s = sample();
        s.entries[0].speedup = f64::NAN;
        assert!(s.validate().unwrap_err().contains("speedup"));

        // Off and speedup must agree on whether the baseline ran.
        let mut s = sample();
        s.entries[0].wall_secs_ff_off = 0.0;
        assert!(s.validate().unwrap_err().contains("set together"));

        let mut s = sample();
        s.entries[0].profile = "nightly".into();
        assert!(s.validate().unwrap_err().contains("unknown profile"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Snapshot::parse("").is_err());
        assert!(Snapshot::parse("{").is_err());
        assert!(Snapshot::parse("{\"schema\": \"x\"} trailing").is_err());
        assert!(Snapshot::parse("{\"bogus\": 1}").is_err());
        assert!(Snapshot::parse("{\"schema\": \"x\", \"entries\": [{\"warp\": 1}]}").is_err());
        assert!(Snapshot::parse("{\"schema\": \"x\", \"entries\": [{\"jobs\": -3}]}").is_err());
        assert!(Snapshot::parse("{\"schema\": \"x\", \"entries\": [{\"jobs\": 1.5}]}").is_err());
        // Escapes are outside the supported subset.
        assert!(Snapshot::parse("{\"schema\": \"a\\\"b\"}").is_err());
        // An entries list of non-objects is mistyped.
        assert!(Snapshot::parse("{\"entries\": [3]}").is_err());
    }
}
