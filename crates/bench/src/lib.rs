//! # pipefill-bench
//!
//! Criterion benchmark targets, one per table/figure of the paper's
//! evaluation. Each bench first *regenerates* its artifact — printing the
//! same rows/series the paper reports and writing CSV under the workspace
//! `target/experiments/` — and then measures the driver's core kernel so
//! regressions in the reproduction pipeline are caught.
//!
//! Run everything with:
//!
//! ```sh
//! cargo bench --workspace
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

pub mod snapshot;

/// Path of an experiment CSV inside the shared workspace target
/// directory (benches run with the package directory as cwd).
pub fn experiment_csv(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../target/experiments");
    p.push(name);
    p.to_string_lossy().into_owned()
}

/// Regenerates one registered experiment at full scale: prints the
/// table and writes `target/experiments/<name>.csv`. Returns the table
/// so benches can derive summary lines from its columns.
///
/// # Panics
///
/// Panics on unknown experiment names or CSV I/O failures (benches want
/// loud failures).
pub fn regenerate(name: &str) -> pipefill_scenario::Table {
    let exp = pipefill_scenario::find(name).expect("registered experiment");
    let table = exp.run(&exp.grid(pipefill_scenario::Scale::Full));
    table.print();
    if let Some(summary) = exp.summary(&table) {
        println!("{summary}");
    }
    table
        .save(&experiment_csv(&format!("{name}.csv")))
        .expect("csv");
    table
}

/// A short Criterion configuration suitable for simulation-scale
/// workloads: 10 samples, bounded measurement time.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_paths_land_in_workspace_target() {
        let p = experiment_csv("x.csv");
        assert!(p.contains("target"));
        assert!(p.ends_with("x.csv"));
    }
}
