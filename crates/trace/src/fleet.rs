//! The fleet workload generator: job mixes for multi-job, cluster-scale
//! simulations.
//!
//! Where the rest of this crate generates *fill-job* workloads, this
//! module generates *main-job* populations: N concurrent
//! pipeline-parallel training jobs with heterogeneous pipeline depths,
//! microbatch counts (and therefore iteration periods), device
//! generations and fill appetites. The output is a pure description —
//! [`FleetJobPlan`] carries no simulator types — which the core crate
//! lowers onto concrete `MainJobSpec`s; that keeps this crate free of a
//! pipeline-engine dependency, mirroring how [`TraceJob`](crate::TraceJob)
//! defers GPU-hours → samples conversion downstream.
//!
//! Presets scale from a single rack to the paper's Fig. 9/10 projection
//! regime: up to 64 jobs on 8K GPUs ([`FleetWorkloadConfig::production_8k`]).

use pipefill_sim_core::rng::DeterministicRng;
use serde::{Deserialize, Serialize};

/// GPU generation a fleet job runs on (lowered to a concrete
/// `DeviceSpec` by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceGeneration {
    /// V100 16 GB — the paper's baseline.
    V100,
    /// A100 40 GB.
    A100,
    /// H100 80 GB.
    H100,
}

impl DeviceGeneration {
    /// All generations, oldest first.
    pub const ALL: [DeviceGeneration; 3] = [
        DeviceGeneration::V100,
        DeviceGeneration::A100,
        DeviceGeneration::H100,
    ];
}

impl std::fmt::Display for DeviceGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceGeneration::V100 => write!(f, "V100"),
            DeviceGeneration::A100 => write!(f, "A100"),
            DeviceGeneration::H100 => write!(f, "H100"),
        }
    }
}

/// One main job of a fleet: the shape of a pipeline-parallel training
/// job plus its fill-layer knobs. `gpus = tensor_parallel ×
/// pipeline_stages × data_parallel` is the job's cluster footprint; the
/// simulator models one representative stage per pipeline stage, exactly
/// as the single-job backends do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJobPlan {
    /// Index within the fleet.
    pub id: usize,
    /// Total GPUs this job occupies.
    pub gpus: usize,
    /// Tensor-parallel degree.
    pub tensor_parallel: usize,
    /// Pipeline depth.
    pub pipeline_stages: usize,
    /// Data-parallel degree.
    pub data_parallel: usize,
    /// Microbatches per pipeline replica (sets the bubble ratio and,
    /// with the device generation, the iteration period).
    pub microbatches: usize,
    /// GPU generation of every device in this job (homogeneous within a
    /// job; heterogeneous across the fleet).
    pub device_generation: DeviceGeneration,
    /// Workload RNG seed for this job's fill backlog.
    pub seed: u64,
    /// Fill fraction (0.0 = this job declines filling entirely).
    pub fill_fraction: f64,
    /// Main-job iterations to simulate.
    pub iterations: usize,
    /// Whether this job's stages accept fill work evicted from other
    /// jobs (per-job admission at the global fill queue).
    pub admits_foreign: bool,
}

/// Fleet workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetWorkloadConfig {
    /// Concurrent main jobs.
    pub jobs: usize,
    /// Total GPU budget split evenly across jobs (each job's realized
    /// footprint rounds down to a whole number of pipeline replicas).
    pub target_gpus: usize,
    /// RNG seed; the same seed reproduces the same fleet exactly.
    pub seed: u64,
    /// Main-job iterations each job simulates.
    pub iterations: usize,
}

impl FleetWorkloadConfig {
    /// A fleet of `jobs` main jobs over `target_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero or the per-job GPU budget is below the
    /// smallest pipeline this generator emits (8 GPUs).
    pub fn new(jobs: usize, target_gpus: usize, seed: u64) -> Self {
        assert!(jobs > 0, "a fleet needs at least one main job");
        assert!(
            target_gpus / jobs >= 8,
            "per-job GPU budget {} is below the smallest pipeline (8 GPUs)",
            target_gpus / jobs
        );
        FleetWorkloadConfig {
            jobs,
            target_gpus,
            seed,
            // Long enough that backlog fill jobs (~0.02 GPU-hours) finish
            // and recycle through the queue many times per run.
            iterations: 150,
        }
    }

    /// The paper's projection regime: 64 concurrent jobs on 8K GPUs.
    pub fn production_8k(seed: u64) -> Self {
        FleetWorkloadConfig::new(64, 8192, seed)
    }

    /// A rack-scale fleet: 4 jobs on 512 GPUs.
    pub fn rack_scale(seed: u64) -> Self {
        FleetWorkloadConfig::new(4, 512, seed)
    }

    /// Draws the fleet. Deterministic per seed; jobs are emitted in id
    /// order.
    pub fn generate(&self) -> Vec<FleetJobPlan> {
        let mut rng = DeterministicRng::seed_from(self.seed);
        let budget = self.target_gpus / self.jobs;
        (0..self.jobs)
            .map(|id| {
                // Pipeline shape: depth × tensor width, capped by budget.
                let shapes: &[(usize, usize)] = &[(1, 8), (1, 16), (2, 8), (2, 16)];
                let feasible: Vec<(usize, usize)> = shapes
                    .iter()
                    .copied()
                    .filter(|&(tp, pp)| tp * pp <= budget)
                    .collect();
                let (tensor_parallel, pipeline_stages) =
                    feasible[rng.uniform_usize(0, feasible.len())];
                let data_parallel = (budget / (tensor_parallel * pipeline_stages)).max(1);
                let microbatches = [4usize, 8, 16][rng.uniform_usize(0, 3)];
                let device_generation = {
                    let r = rng.uniform(0.0, 1.0);
                    if r < 0.5 {
                        DeviceGeneration::V100
                    } else if r < 0.8 {
                        DeviceGeneration::A100
                    } else {
                        DeviceGeneration::H100
                    }
                };
                // Most jobs fill at the paper's 68% default; a few run
                // conservatively, and a few opt out of filling entirely.
                let fill_fraction = {
                    let r = rng.uniform(0.0, 1.0);
                    if r < 0.80 {
                        0.68
                    } else if r < 0.95 {
                        0.50
                    } else {
                        0.0
                    }
                };
                let admits_foreign = rng.bernoulli(0.8);
                FleetJobPlan {
                    id,
                    gpus: tensor_parallel * pipeline_stages * data_parallel,
                    tensor_parallel,
                    pipeline_stages,
                    data_parallel,
                    microbatches,
                    device_generation,
                    seed: self.seed ^ ((id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    fill_fraction,
                    iterations: self.iterations,
                    admits_foreign,
                }
            })
            .collect()
    }
}

/// Total GPU footprint of a fleet.
pub fn fleet_total_gpus(plans: &[FleetJobPlan]) -> usize {
    plans.iter().map(|p| p.gpus).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let a = FleetWorkloadConfig::production_8k(7).generate();
        let b = FleetWorkloadConfig::production_8k(7).generate();
        let c = FleetWorkloadConfig::production_8k(8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn production_preset_hits_the_paper_scale() {
        let plans = FleetWorkloadConfig::production_8k(1).generate();
        assert_eq!(plans.len(), 64);
        let total = fleet_total_gpus(&plans);
        // Rounding to whole replicas can shave a little off the target.
        assert!(
            total > 7000 && total <= 8192,
            "fleet footprint {total} GPUs"
        );
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.id, i);
            assert_eq!(
                p.gpus,
                p.tensor_parallel * p.pipeline_stages * p.data_parallel
            );
            assert!(p.gpus <= 8192 / 64);
            assert!((0.0..=1.0).contains(&p.fill_fraction));
            assert!(p.iterations > 0);
        }
    }

    #[test]
    fn fleet_is_heterogeneous_at_scale() {
        // BTreeSet, not HashSet: uniqueness checks on ordered sets keep
        // the whole validation order-deterministic (and detlint-clean
        // should a future assertion ever observe iteration order).
        let plans = FleetWorkloadConfig::production_8k(3).generate();
        let depths: std::collections::BTreeSet<usize> =
            plans.iter().map(|p| p.pipeline_stages).collect();
        let microbatches: std::collections::BTreeSet<usize> =
            plans.iter().map(|p| p.microbatches).collect();
        let gens: std::collections::BTreeSet<DeviceGeneration> =
            plans.iter().map(|p| p.device_generation).collect();
        assert!(depths.len() > 1, "all jobs have the same depth");
        assert!(microbatches.len() > 1, "all jobs have the same period");
        assert!(gens.len() > 1, "all jobs run the same GPU generation");
        assert!(plans.iter().any(|p| p.admits_foreign));
        // Per-job seeds are distinct, so workload streams never collide.
        let seeds: std::collections::BTreeSet<u64> = plans.iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), plans.len());
    }

    #[test]
    fn small_budgets_shrink_the_shape_menu() {
        let plans = FleetWorkloadConfig::new(4, 32, 5).generate();
        for p in &plans {
            assert!(p.gpus <= 8, "job exceeded its budget: {p:?}");
            assert_eq!(p.pipeline_stages, 8);
            assert_eq!(p.tensor_parallel, 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one main job")]
    fn empty_fleet_rejected() {
        let _ = FleetWorkloadConfig::new(0, 1024, 1);
    }

    #[test]
    #[should_panic(expected = "below the smallest pipeline")]
    fn starved_budget_rejected() {
        let _ = FleetWorkloadConfig::new(64, 64, 1);
    }
}
