//! Trace persistence: save generated traces to CSV and load them back —
//! the seam where a real cluster trace (e.g. the Alibaba PAI trace the
//! paper uses, which is not redistributable here) can be substituted for
//! the synthetic generator.

use std::fmt::Write as _;
use std::path::Path;

use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_sim_core::SimTime;

use crate::generator::TraceJob;

/// CSV header written and expected by this module.
pub const TRACE_CSV_HEADER: &str = "id,arrival_secs,model,kind,gpu_hours,deadline_secs";

/// Serializes a trace to CSV text.
pub fn trace_to_csv(jobs: &[TraceJob]) -> String {
    let mut out = String::with_capacity(64 * (jobs.len() + 1));
    out.push_str(TRACE_CSV_HEADER);
    out.push('\n');
    for j in jobs {
        let deadline = j
            .deadline
            .map(|d| d.as_secs_f64().to_string())
            .unwrap_or_default();
        // Writes into a String are infallible; drop the Ok(()) rather
        // than carry a dead panic path.
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            j.id,
            j.arrival.as_secs_f64(),
            j.model.name(),
            match j.kind {
                JobKind::Training => "training",
                JobKind::BatchInference => "batch-inference",
            },
            j.gpu_hours,
            deadline
        );
    }
    out
}

/// Writes a trace to a CSV file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_trace<P: AsRef<Path>>(jobs: &[TraceJob], path: P) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, trace_to_csv(jobs))
}

/// Parses a trace from CSV text.
///
/// # Errors
///
/// Returns a line-numbered message on malformed headers, fields, counts,
/// or unknown model/kind names.
pub fn trace_from_csv(text: &str) -> Result<Vec<TraceJob>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == TRACE_CSV_HEADER => {}
        other => {
            return Err(format!(
                "bad header: expected '{TRACE_CSV_HEADER}', got {other:?}"
            ))
        }
    }
    let mut jobs = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let n = lineno + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(format!("line {n}: expected 6 fields, got {}", fields.len()));
        }
        let id: u64 = fields[0]
            .parse()
            .map_err(|_| format!("line {n}: bad id '{}'", fields[0]))?;
        let arrival: f64 = fields[1]
            .parse()
            .map_err(|_| format!("line {n}: bad arrival '{}'", fields[1]))?;
        let model = parse_model(fields[2])
            .ok_or_else(|| format!("line {n}: unknown model '{}'", fields[2]))?;
        let kind = match fields[3] {
            "training" => JobKind::Training,
            "batch-inference" => JobKind::BatchInference,
            other => return Err(format!("line {n}: unknown kind '{other}'")),
        };
        let gpu_hours: f64 = fields[4]
            .parse()
            .map_err(|_| format!("line {n}: bad gpu_hours '{}'", fields[4]))?;
        if gpu_hours <= 0.0 || gpu_hours.is_nan() {
            return Err(format!("line {n}: gpu_hours must be positive"));
        }
        let deadline = if fields[5].is_empty() {
            None
        } else {
            let secs: f64 = fields[5]
                .parse()
                .map_err(|_| format!("line {n}: bad deadline '{}'", fields[5]))?;
            Some(SimTime::from_secs_f64(secs))
        };
        jobs.push(TraceJob {
            id,
            arrival: SimTime::from_secs_f64(arrival),
            model,
            kind,
            gpu_hours,
            deadline,
        });
    }
    Ok(jobs)
}

/// Reads a trace from a CSV file.
///
/// # Errors
///
/// Propagates I/O errors and parse errors as strings.
pub fn load_trace<P: AsRef<Path>>(path: P) -> Result<Vec<TraceJob>, String> {
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    trace_from_csv(&text)
}

fn parse_model(name: &str) -> Option<ModelId> {
    ModelId::ALL.into_iter().find(|m| m.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    #[test]
    fn round_trips_a_generated_trace() {
        let (jobs, _) = TraceGenerator::new(TraceConfig::physical(55)).generate();
        assert!(!jobs.is_empty());
        let csv = trace_to_csv(&jobs);
        let parsed = trace_from_csv(&csv).unwrap();
        assert_eq!(jobs, parsed);
    }

    #[test]
    fn file_round_trip() {
        let (jobs, _) = TraceGenerator::new(TraceConfig::physical(56)).generate();
        let dir = std::env::temp_dir().join(format!("pipefill-trace-{}", std::process::id()));
        let path = dir.join("trace.csv");
        save_trace(&jobs, &path).unwrap();
        let parsed = load_trace(&path).unwrap();
        assert_eq!(jobs, parsed);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(trace_from_csv("nonsense\n").is_err());
        let hdr = format!("{TRACE_CSV_HEADER}\n");
        assert!(
            trace_from_csv(&format!("{hdr}1,2,3\n")).is_err(),
            "field count"
        );
        assert!(
            trace_from_csv(&format!("{hdr}x,0.0,Bert-base,training,0.5,\n")).is_err(),
            "bad id"
        );
        assert!(
            trace_from_csv(&format!("{hdr}1,0.0,NoSuchModel,training,0.5,\n")).is_err(),
            "bad model"
        );
        assert!(
            trace_from_csv(&format!("{hdr}1,0.0,Bert-base,sometimes,0.5,\n")).is_err(),
            "bad kind"
        );
        assert!(
            trace_from_csv(&format!("{hdr}1,0.0,Bert-base,training,-1,\n")).is_err(),
            "negative size"
        );
    }

    #[test]
    fn empty_deadline_means_none() {
        let hdr = format!("{TRACE_CSV_HEADER}\n");
        let jobs = trace_from_csv(&format!("{hdr}1,5.5,Bert-base,training,0.25,\n")).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].deadline, None);
        assert_eq!(jobs[0].arrival, SimTime::from_secs_f64(5.5));
        let jobs = trace_from_csv(&format!("{hdr}1,5.5,Bert-base,training,0.25,99.5\n")).unwrap();
        assert_eq!(jobs[0].deadline, Some(SimTime::from_secs_f64(99.5)));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let (jobs, _) = TraceGenerator::new(TraceConfig::physical(57)).generate();
        let csv = trace_to_csv(&jobs).replace('\n', "\n\n");
        let parsed = trace_from_csv(&csv).unwrap();
        assert_eq!(jobs.len(), parsed.len());
    }
}
