//! # pipefill-trace
//!
//! Synthetic fill-job workload traces, reproducing the paper's two-step
//! construction (§5.3):
//!
//! 1. **Model distribution** — the paper samples fill-job models to match
//!    the HuggingFace Model Hub population (models <3B parameters, 10.4%
//!    CNNs), mapped onto the five representative models of Table 1.
//!    [`ModelMix`] holds those sampling probabilities.
//! 2. **Job arrivals** — the paper replays the Alibaba PAI GPU-cluster
//!    trace: per-job arrival time, GPU quantity × service time collapsed
//!    to GPU-hours, and a quality-of-service tag. Latency-sensitive jobs
//!    are filtered out (bubbles cannot serve latency-bound work), then
//!    jobs above a GPU-hours cap are dropped — 9 GPU-minutes for the
//!    physical cluster (keeping 55% of jobs) and 1 GPU-hour for the
//!    simulator (keeping 81.6%). The Alibaba trace itself is not
//!    redistributable, so [`TraceGenerator`] draws from a
//!    Poisson-arrival / lognormal-size process whose parameters are fitted
//!    to those published retention percentages (see `DESIGN.md`).
//!
//! The output is exactly the tuple stream the paper's trace provides:
//! arrival, model, job kind (training vs batch inference), and job size
//! in GPU-hours; conversion from GPU-hours to a sample count (dividing by
//! the model's max isolated throughput, §5.3) happens downstream where
//! the device profile is known.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fleet;
mod generator;
mod io;
mod mix;

pub use fleet::{fleet_total_gpus, DeviceGeneration, FleetJobPlan, FleetWorkloadConfig};
pub use generator::{TraceConfig, TraceGenerator, TraceJob, TraceStats};
pub use io::{load_trace, save_trace, trace_from_csv, trace_to_csv, TRACE_CSV_HEADER};
pub use mix::ModelMix;
