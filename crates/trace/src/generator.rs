//! The Alibaba-style arrival/size generator and the paper's filtering
//! pipeline.

use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_sim_core::rng::DeterministicRng;
use pipefill_sim_core::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::mix::ModelMix;

/// One fill job emitted by the trace (before GPU-hours → samples
/// conversion, which needs a device profile).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    /// Sequential id.
    pub id: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// Model to run.
    pub model: ModelId,
    /// Training or batch inference.
    pub kind: JobKind,
    /// Size in GPU-hours (GPU quantity × service time, §5.3).
    pub gpu_hours: f64,
    /// Optional deadline (a slack multiple of the job's exclusive
    /// duration past its arrival), present on a configurable fraction of
    /// jobs.
    pub deadline: Option<SimTime>,
}

/// Retention statistics of the filtering pipeline, for validating against
/// the paper's published percentages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TraceStats {
    /// Jobs drawn before any filtering.
    pub raw: usize,
    /// Jobs surviving the latency-sensitive QoS filter.
    pub after_qos: usize,
    /// Jobs surviving the GPU-hours cap (the final trace).
    pub kept: usize,
}

impl TraceStats {
    /// Fraction of QoS-surviving jobs kept by the size cap — the paper
    /// reports 55% at 9 GPU-minutes and 81.6% at 1 GPU-hour.
    pub fn size_retention(&self) -> f64 {
        if self.after_qos == 0 {
            0.0
        } else {
            self.kept as f64 / self.after_qos as f64
        }
    }
}

/// Trace-generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed (same seed ⇒ identical trace).
    pub seed: u64,
    /// Mean job inter-arrival time of the *kept* stream. Load sweeps
    /// (Fig. 9) scale this.
    pub mean_interarrival: SimDuration,
    /// Trace horizon: jobs arrive in `[0, horizon)`.
    pub horizon: SimDuration,
    /// GPU-hours cap: 0.15 (9 GPU-minutes) for physical-cluster-scale
    /// runs, 1.0 for simulator runs (§5.3).
    pub max_gpu_hours: f64,
    /// Model distribution.
    pub mix: ModelMix,
    /// Fraction of raw jobs tagged latency-sensitive and filtered out
    /// (the PAI trace is dominated by short latency-bound inference; we
    /// default to 0.45).
    pub latency_sensitive_fraction: f64,
    /// Fraction of kept jobs that carry a deadline.
    pub deadline_fraction: f64,
    /// Deadline slack: deadline = arrival + slack × (GPU-hours as
    /// wall-clock on one exclusive GPU).
    pub deadline_slack: f64,
    /// Lognormal μ of raw GPU-hours (natural-log scale).
    pub size_mu: f64,
    /// Lognormal σ of raw GPU-hours.
    pub size_sigma: f64,
}

impl TraceConfig {
    /// Simulator-scale defaults (§5.3): 1 GPU-hour cap. The lognormal
    /// parameters are fitted so the cap retains ≈81.6% of jobs and the
    /// 9-GPU-minute cap retains ≈55% (see crate docs).
    pub fn simulator(seed: u64) -> Self {
        TraceConfig {
            seed,
            mean_interarrival: SimDuration::from_secs(60),
            horizon: SimDuration::from_secs(24 * 3600),
            max_gpu_hours: 1.0,
            mix: ModelMix::paper_mix(),
            latency_sensitive_fraction: 0.45,
            deadline_fraction: 0.2,
            deadline_slack: 8.0,
            size_mu: -2.205,
            size_sigma: 2.449,
        }
    }

    /// Physical-cluster-scale defaults (§5.3): 9 GPU-minute cap.
    pub fn physical(seed: u64) -> Self {
        TraceConfig {
            max_gpu_hours: 0.15,
            mean_interarrival: SimDuration::from_secs(30),
            horizon: SimDuration::from_secs(4 * 3600),
            ..TraceConfig::simulator(seed)
        }
    }

    /// Scales the arrival rate by `load` (>1 ⇒ more jobs per unit time;
    /// the Fig. 9 load axis).
    ///
    /// # Panics
    ///
    /// Panics if `load` is not positive.
    pub fn with_load(mut self, load: f64) -> Self {
        assert!(load > 0.0 && load.is_finite(), "load must be positive");
        self.mean_interarrival = self.mean_interarrival.mul_f64(1.0 / load);
        self
    }

    /// Replaces the model mix.
    pub fn with_mix(mut self, mix: ModelMix) -> Self {
        self.mix = mix;
        self
    }
}

/// Generates filtered fill-job traces.
#[derive(Debug)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator.
    pub fn new(config: TraceConfig) -> Self {
        TraceGenerator { config }
    }

    /// Draws the trace and the filtering statistics.
    pub fn generate(&self) -> (Vec<TraceJob>, TraceStats) {
        let cfg = &self.config;
        let mut rng = DeterministicRng::seed_from(cfg.seed);
        let mut stats = TraceStats::default();
        let mut jobs = Vec::new();
        let mut clock = SimTime::ZERO;
        let horizon = SimTime::ZERO + cfg.horizon;
        let rate = 1.0 / cfg.mean_interarrival.as_secs_f64();
        let mut id = 0u64;

        loop {
            clock += SimDuration::from_secs_f64(rng.exponential(rate));
            if clock >= horizon {
                break;
            }
            stats.raw += 1;
            // QoS filter: latency-sensitive jobs cannot run in bubbles.
            if rng.bernoulli(cfg.latency_sensitive_fraction) {
                continue;
            }
            stats.after_qos += 1;
            // Size filter.
            let gpu_hours = rng.lognormal(cfg.size_mu, cfg.size_sigma);
            if gpu_hours > cfg.max_gpu_hours {
                continue;
            }
            stats.kept += 1;
            let model = cfg.mix.sample_model(&mut rng);
            let kind = cfg.mix.sample_kind(model, &mut rng);
            let deadline = if rng.bernoulli(cfg.deadline_fraction) {
                let exclusive = SimDuration::from_secs_f64(gpu_hours * 3600.0);
                Some(clock + exclusive.mul_f64(cfg.deadline_slack))
            } else {
                None
            };
            jobs.push(TraceJob {
                id,
                arrival: clock,
                model,
                kind,
                gpu_hours,
                deadline,
            });
            id += 1;
        }
        (jobs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let (a, _) = TraceGenerator::new(TraceConfig::simulator(42)).generate();
        let (b, _) = TraceGenerator::new(TraceConfig::simulator(42)).generate();
        let (c, _) = TraceGenerator::new(TraceConfig::simulator(43)).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let cfg = TraceConfig::simulator(7);
        let horizon = SimTime::ZERO + cfg.horizon;
        let (jobs, _) = TraceGenerator::new(cfg).generate();
        assert!(jobs.len() > 100, "got only {} jobs", jobs.len());
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(jobs.iter().all(|j| j.arrival < horizon));
    }

    #[test]
    fn size_cap_retention_matches_paper() {
        // §5.3: ≤1 GPU-hour keeps 81.6% of jobs; ≤9 GPU-minutes keeps 55%.
        let (_, sim_stats) = TraceGenerator::new(TraceConfig::simulator(1)).generate();
        let sim_kept = sim_stats.size_retention();
        assert!(
            (sim_kept - 0.816).abs() < 0.03,
            "1 GPU-hour cap keeps {sim_kept}"
        );
        let mut phys_cfg = TraceConfig::physical(1);
        phys_cfg.horizon = SimDuration::from_secs(24 * 3600);
        let (_, phys_stats) = TraceGenerator::new(phys_cfg).generate();
        let phys_kept = phys_stats.size_retention();
        assert!(
            (phys_kept - 0.55).abs() < 0.03,
            "9 GPU-minute cap keeps {phys_kept}"
        );
    }

    #[test]
    fn all_jobs_respect_size_cap() {
        let cfg = TraceConfig::physical(3);
        let cap = cfg.max_gpu_hours;
        let (jobs, _) = TraceGenerator::new(cfg).generate();
        assert!(jobs.iter().all(|j| j.gpu_hours <= cap));
        assert!(jobs.iter().all(|j| j.gpu_hours > 0.0));
    }

    #[test]
    fn load_scaling_changes_job_count_proportionally() {
        let base = TraceGenerator::new(TraceConfig::simulator(5))
            .generate()
            .0
            .len();
        let double = TraceGenerator::new(TraceConfig::simulator(5).with_load(2.0))
            .generate()
            .0
            .len();
        let ratio = double as f64 / base as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn deadline_fraction_is_respected() {
        let cfg = TraceConfig::simulator(9);
        let expect = cfg.deadline_fraction;
        let (jobs, _) = TraceGenerator::new(cfg).generate();
        let with = jobs.iter().filter(|j| j.deadline.is_some()).count();
        let frac = with as f64 / jobs.len() as f64;
        assert!((frac - expect).abs() < 0.04, "deadline fraction {frac}");
        for j in &jobs {
            if let Some(d) = j.deadline {
                assert!(d > j.arrival, "deadline before arrival");
            }
        }
    }

    #[test]
    fn kind_rule_enforced_in_trace() {
        let (jobs, _) = TraceGenerator::new(TraceConfig::simulator(10)).generate();
        for j in &jobs {
            if !j.model.trainable_as_fill_job() {
                assert_eq!(j.kind, JobKind::BatchInference, "{:?}", j.model);
            }
        }
        // Training jobs do exist on small models.
        assert!(jobs.iter().any(|j| j.kind == JobKind::Training));
    }

    #[test]
    fn single_model_mix_produces_only_that_model() {
        let cfg = TraceConfig::simulator(11).with_mix(ModelMix::single(ModelId::BertBase));
        let (jobs, _) = TraceGenerator::new(cfg).generate();
        assert!(jobs.iter().all(|j| j.model == ModelId::BertBase));
    }
}
