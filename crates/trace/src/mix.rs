//! The fill-job model distribution.

use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_sim_core::rng::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Sampling weights over the Table-1 fill-job models.
///
/// Defaults follow §5.3: the HuggingFace population under 3B parameters
/// is 10.4% CNNs (all mapped to EfficientNet, the only CNN in Table 1);
/// the transformer remainder is split with the small-model skew of the
/// hub (most downloads are base-size encoders). Jobs on models under
/// ~700M parameters are training or batch inference with equal
/// probability; larger models are always batch inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMix {
    weights: Vec<(ModelId, f64)>,
}

impl Default for ModelMix {
    fn default() -> Self {
        ModelMix::paper_mix()
    }
}

impl ModelMix {
    /// The §5.3 distribution over Table 1.
    pub fn paper_mix() -> Self {
        ModelMix {
            weights: vec![
                (ModelId::EfficientNet, 0.104), // the 10.4% CNN share
                (ModelId::BertBase, 0.400),
                (ModelId::BertLarge, 0.226),
                (ModelId::SwinLarge, 0.150),
                (ModelId::XlmRobertaXl, 0.120),
            ],
        }
    }

    /// A single-model mix (Fig. 4c's "BERT inference only" workload and
    /// Fig. 6's endpoint mixes).
    pub fn single(model: ModelId) -> Self {
        ModelMix {
            weights: vec![(model, 1.0)],
        }
    }

    /// A two-model blend: `fraction` of jobs from `a`, the rest from `b`
    /// (Fig. 6 sweeps XLM↔EfficientNet).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn blend(a: ModelId, b: ModelId, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "blend fraction must be in [0, 1], got {fraction}"
        );
        ModelMix {
            weights: vec![(a, fraction), (b, 1.0 - fraction)],
        }
    }

    /// The `(model, weight)` pairs.
    pub fn weights(&self) -> &[(ModelId, f64)] {
        &self.weights
    }

    /// Samples a model.
    pub fn sample_model(&self, rng: &mut DeterministicRng) -> ModelId {
        let w: Vec<f64> = self.weights.iter().map(|&(_, w)| w).collect();
        self.weights[rng.weighted_index(&w)].0
    }

    /// Samples a job kind for `model` per the §5.3 rule: sub-700M models
    /// are training or batch inference with equal probability, larger
    /// models always batch inference.
    pub fn sample_kind(&self, model: ModelId, rng: &mut DeterministicRng) -> JobKind {
        if model.trainable_as_fill_job() && rng.bernoulli(0.5) {
            JobKind::Training
        } else {
            JobKind::BatchInference
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_sums_to_one() {
        let total: f64 = ModelMix::paper_mix()
            .weights()
            .iter()
            .map(|&(_, w)| w)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cnn_share_matches_hub_statistics() {
        let mix = ModelMix::paper_mix();
        let mut rng = DeterministicRng::seed_from(11);
        let n = 50_000;
        let cnn = (0..n)
            .filter(|_| mix.sample_model(&mut rng) == ModelId::EfficientNet)
            .count();
        let frac = cnn as f64 / n as f64;
        assert!((frac - 0.104).abs() < 0.01, "CNN share {frac}");
    }

    #[test]
    fn large_models_never_train() {
        let mix = ModelMix::paper_mix();
        let mut rng = DeterministicRng::seed_from(12);
        for _ in 0..1000 {
            assert_eq!(
                mix.sample_kind(ModelId::XlmRobertaXl, &mut rng),
                JobKind::BatchInference
            );
            assert_eq!(
                mix.sample_kind(ModelId::SwinLarge, &mut rng),
                JobKind::BatchInference
            );
        }
    }

    #[test]
    fn small_models_split_train_inference_evenly() {
        let mix = ModelMix::paper_mix();
        let mut rng = DeterministicRng::seed_from(13);
        let n = 20_000;
        let train = (0..n)
            .filter(|_| mix.sample_kind(ModelId::BertBase, &mut rng) == JobKind::Training)
            .count();
        let frac = train as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "training share {frac}");
    }

    #[test]
    fn blend_endpoints_are_pure() {
        let mut rng = DeterministicRng::seed_from(14);
        let all_a = ModelMix::blend(ModelId::XlmRobertaXl, ModelId::EfficientNet, 1.0);
        let all_b = ModelMix::blend(ModelId::XlmRobertaXl, ModelId::EfficientNet, 0.0);
        for _ in 0..100 {
            assert_eq!(all_a.sample_model(&mut rng), ModelId::XlmRobertaXl);
            assert_eq!(all_b.sample_model(&mut rng), ModelId::EfficientNet);
        }
    }

    #[test]
    #[should_panic(expected = "blend fraction")]
    fn bad_blend_fraction_rejected() {
        let _ = ModelMix::blend(ModelId::BertBase, ModelId::BertLarge, 1.5);
    }
}
