//! Property tests for the trace generator: filters, determinism and
//! distribution invariants for arbitrary configurations.

use proptest::prelude::*;

use pipefill_model_zoo::JobKind;
use pipefill_sim_core::{SimDuration, SimTime};
use pipefill_trace::{ModelMix, TraceConfig, TraceGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any seed and cap: arrivals sorted within the horizon, sizes
    /// within the cap, §5.3's job-kind rule enforced, and the generator
    /// is a pure function of its config.
    #[test]
    fn trace_invariants(seed in 0u64..500, cap_centi in 5u64..200, load_pct in 20u64..300) {
        let mut cfg = TraceConfig::simulator(seed).with_load(load_pct as f64 / 100.0);
        cfg.max_gpu_hours = cap_centi as f64 / 100.0;
        cfg.horizon = SimDuration::from_secs(4 * 3600);
        let horizon = SimTime::ZERO + cfg.horizon;

        let (jobs, stats) = TraceGenerator::new(cfg.clone()).generate();
        let (jobs2, _) = TraceGenerator::new(cfg.clone()).generate();
        prop_assert_eq!(&jobs, &jobs2, "generator not deterministic");

        prop_assert!(stats.kept <= stats.after_qos);
        prop_assert!(stats.after_qos <= stats.raw);
        prop_assert_eq!(jobs.len(), stats.kept);

        for w in jobs.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
            prop_assert!(w[0].id < w[1].id);
        }
        for j in &jobs {
            prop_assert!(j.arrival < horizon);
            prop_assert!(j.gpu_hours > 0.0 && j.gpu_hours <= cfg.max_gpu_hours);
            if !j.model.trainable_as_fill_job() {
                prop_assert_eq!(j.kind, JobKind::BatchInference);
            }
            if let Some(d) = j.deadline {
                prop_assert!(d > j.arrival);
            }
        }
    }

    /// A larger size cap never retains a smaller fraction of jobs.
    #[test]
    fn retention_is_monotone_in_cap(seed in 0u64..200) {
        let run = |cap: f64| {
            let mut cfg = TraceConfig::simulator(seed);
            cfg.max_gpu_hours = cap;
            TraceGenerator::new(cfg).generate().1.size_retention()
        };
        let small = run(0.15);
        let big = run(1.0);
        prop_assert!(big >= small, "retention fell with a larger cap: {small} -> {big}");
    }

    /// Blended mixes only emit their two models, in roughly the blend
    /// proportions.
    #[test]
    fn blend_proportions(seed in 0u64..200, pct in 10u64..90) {
        use pipefill_model_zoo::ModelId;
        let frac = pct as f64 / 100.0;
        let cfg = TraceConfig::simulator(seed)
            .with_load(4.0)
            .with_mix(ModelMix::blend(ModelId::XlmRobertaXl, ModelId::EfficientNet, frac));
        let (jobs, _) = TraceGenerator::new(cfg).generate();
        prop_assume!(jobs.len() >= 200);
        let xlm = jobs.iter().filter(|j| j.model == ModelId::XlmRobertaXl).count();
        let got = xlm as f64 / jobs.len() as f64;
        prop_assert!((got - frac).abs() < 0.12, "blend {frac} realized as {got}");
        prop_assert!(jobs.iter().all(|j| matches!(
            j.model,
            ModelId::XlmRobertaXl | ModelId::EfficientNet
        )));
    }
}
