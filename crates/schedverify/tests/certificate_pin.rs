//! The checked-in artifacts stay live: the pinned certificate grid at
//! the repo root must be byte-identical to what the verifier produces
//! today, and the example stream files under `examples/streams/` must
//! keep meaning what their comments claim (the wedge is rejected as a
//! cycle, the hand-written 1F1B certifies). The CI `schedule-certify`
//! job re-proves the same facts through the CLI binary; this test keeps
//! them enforced by a plain `cargo test` too.

use std::path::PathBuf;

use pipefill_pipeline::EngineConfig;
use pipefill_schedverify::certificate::{certify_grid, GRID_T_BWD, GRID_T_FWD};
use pipefill_schedverify::{verify, StreamSet, VerifyConfig};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn the_pinned_report_matches_the_regenerated_grid() {
    let report = certify_grid();
    assert!(report.all_certified);
    assert_eq!(
        read("schedcert-report.json"),
        report.json,
        "schedcert-report.json drifted from the verifier; regenerate with \
         `pipefill-cli certify-schedules --mode write` and review the diff"
    );
}

#[test]
fn the_deadlock_canary_is_rejected_by_verifier_and_engine() {
    let set = StreamSet::parse(&read("examples/streams/deadlock.toml")).expect("canary parses");
    let verdict = verify(&set, &VerifyConfig::new(GRID_T_FWD, GRID_T_BWD));
    assert!(!verdict.certified(), "the canary must stay a deadlock");
    assert!(
        verdict
            .findings
            .iter()
            .any(|f| f.message.contains("dependency cycle")),
        "{:?}",
        verdict.findings
    );
    // The file's comment claims the engine agrees; keep that true.
    let cfg = EngineConfig::uniform(
        pipefill_pipeline::ScheduleKind::OneFOneB,
        set.stages(),
        set.microbatches,
        GRID_T_FWD,
        GRID_T_BWD,
    );
    assert!(cfg.execute_streams(&set.streams).is_err());
}

#[test]
fn the_handwritten_example_certifies() {
    let set = StreamSet::parse(&read("examples/streams/hand-1f1b.toml")).expect("example parses");
    let verdict = verify(&set, &VerifyConfig::new(GRID_T_FWD, GRID_T_BWD));
    assert!(verdict.certified(), "{:?}", verdict.findings);
}
