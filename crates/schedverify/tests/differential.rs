//! Differential testing: the static verdict versus the engine oracle.
//!
//! The soundness contract is one-directional: **whenever schedcheck
//! certifies a stream set, the engine must execute it to completion**
//! (no false negatives). The harness takes every built-in schedule,
//! applies every single-instruction mutation — drop, duplicate, swap
//! with the next instruction, move to front, move to end — at every
//! position of every device, and checks the contract on each mutant
//! against [`EngineConfig::execute_streams`], the engine's own
//! completion oracle.
//!
//! The verifier is allowed to be *stricter* than the engine (a dropped
//! ZB-H1 `W` half executes fine but is still an incomplete iteration,
//! and schedcheck rightly rejects it); the counts printed per schedule
//! pin how often that happens so a regression in either direction shows
//! up as a changed census, not silence.

use pipefill_pipeline::{EngineConfig, PipelineInstruction, ScheduleKind};
use pipefill_schedverify::{verify, StreamSet, VerifyConfig};
use pipefill_sim_core::SimDuration;

const KINDS: [ScheduleKind; 4] = [
    ScheduleKind::GPipe,
    ScheduleKind::OneFOneB,
    ScheduleKind::Interleaved { chunks: 2 },
    ScheduleKind::ZbH1,
];

fn ms(x: u64) -> SimDuration {
    SimDuration::from_millis(x)
}

/// Every single-instruction mutant of `streams`, with a label.
fn mutants(streams: &[Vec<PipelineInstruction>]) -> Vec<(String, Vec<Vec<PipelineInstruction>>)> {
    let mut out = Vec::new();
    for (s, stream) in streams.iter().enumerate() {
        for i in 0..stream.len() {
            let mut drop = streams.to_vec();
            drop[s].remove(i);
            out.push((format!("dev{s}: drop [{i}]"), drop));

            let mut dup = streams.to_vec();
            let instr = dup[s][i];
            dup[s].insert(i + 1, instr);
            out.push((format!("dev{s}: duplicate [{i}]"), dup));

            if i + 1 < stream.len() {
                let mut swap = streams.to_vec();
                swap[s].swap(i, i + 1);
                out.push((format!("dev{s}: swap [{i}]<->[{}]", i + 1), swap));
            }

            if i > 0 {
                let mut front = streams.to_vec();
                let instr = front[s].remove(i);
                front[s].insert(0, instr);
                out.push((format!("dev{s}: move [{i}] to front"), front));
            }

            if i + 1 < stream.len() {
                let mut back = streams.to_vec();
                let instr = back[s].remove(i);
                back[s].push(instr);
                out.push((format!("dev{s}: move [{i}] to end"), back));
            }
        }
    }
    out
}

/// The invariant, per mutant: certified implies engine-safe.
#[test]
fn certified_mutants_always_execute() {
    for kind in KINDS {
        for (p, m) in [(2, 4), (4, 8)] {
            let cfg = EngineConfig::uniform(kind, p, m, ms(10), ms(20));
            let vcfg = VerifyConfig::new(ms(10), ms(20));
            let base = kind.all_stage_instructions(p, m);

            // The unmutated streams certify and execute.
            let set = StreamSet {
                streams: base.clone(),
                microbatches: m,
                chunks: kind.chunk_count(),
            };
            assert!(
                verify(&set, &vcfg).certified(),
                "{kind} p={p} m={m}: baseline must certify"
            );
            assert!(cfg.execute_streams(&base).is_ok());

            let mut censused = [0usize; 4]; // [both-ok, both-reject, strict, FALSE NEGATIVE]
            let all = mutants(&base);
            for (label, mutant) in &all {
                let set = StreamSet {
                    streams: mutant.clone(),
                    microbatches: m,
                    chunks: kind.chunk_count(),
                };
                let certified = verify(&set, &vcfg).certified();
                let engine_ok = cfg.execute_streams(mutant).is_ok();
                let bucket = match (certified, engine_ok) {
                    (true, true) => 0,
                    (false, false) => 1,
                    (false, true) => 2, // verifier stricter: allowed
                    (true, false) => 3, // FALSE NEGATIVE: forbidden
                };
                censused[bucket] += 1;
                assert!(
                    !certified || engine_ok,
                    "{kind} p={p} m={m}: FALSE NEGATIVE — certified mutant \
                     deadlocks the engine: {label}"
                );
            }
            // Census sanity: the corpus genuinely exercises both sides.
            assert_eq!(censused.iter().sum::<usize>(), all.len());
            assert!(
                censused[1] > 0,
                "{kind} p={p} m={m}: no mutant was rejected by both — corpus too weak"
            );
            assert!(
                censused[2] > 0,
                "{kind} p={p} m={m}: verifier never out-rejected the engine — \
                 expected e.g. dropped weight halves or duplicated compute \
                 that executes but is incomplete"
            );
        }
    }
}

/// Dedicated regression for the canonical wedge: the mutation that
/// reorders device 1's warmup is caught by both the verifier (as a
/// cycle) and the engine (as a deadlock).
#[test]
fn the_canonical_wedge_is_caught_by_both() {
    let (p, m) = (2, 2);
    let cfg = EngineConfig::uniform(ScheduleKind::OneFOneB, p, m, ms(10), ms(20));
    let streams = vec![
        vec![
            PipelineInstruction::Forward { microbatch: 0 },
            PipelineInstruction::Backward { microbatch: 0 },
            PipelineInstruction::Forward { microbatch: 1 },
            PipelineInstruction::Backward { microbatch: 1 },
        ],
        vec![
            PipelineInstruction::Forward { microbatch: 1 },
            PipelineInstruction::Forward { microbatch: 0 },
            PipelineInstruction::Backward { microbatch: 0 },
            PipelineInstruction::Backward { microbatch: 1 },
        ],
    ];
    assert!(cfg.execute_streams(&streams).is_err());
    let set = StreamSet {
        streams,
        microbatches: m,
        chunks: 1,
    };
    let verdict = verify(&set, &VerifyConfig::new(ms(10), ms(20)));
    assert!(!verdict.certified());
    assert!(
        verdict.findings[0].message.contains("dependency cycle"),
        "{:?}",
        verdict.findings
    );
}
