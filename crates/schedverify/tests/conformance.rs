//! Conformance: the static analyses pinned against the engine and the
//! published closed forms across randomized shapes and timings.
//!
//! These are the properties the certificates rest on: the longest-path
//! bubble fraction *is* the engine's `bubble_ratio` (bit-for-bit, not
//! approximately), the static memory peaks *are* the engine's published
//! activation envelope, and a claimed built-in schedule always
//! certifies — i.e. the closed-form regime gating in the verifier never
//! misfires on a valid stream.

use proptest::prelude::*;

use pipefill_pipeline::{activation_envelope, EngineConfig, ScheduleKind};
use pipefill_schedverify::{activation_peaks, verify, StreamSet, VerifyConfig};
use pipefill_sim_core::SimDuration;

fn any_kind() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::GPipe),
        Just(ScheduleKind::OneFOneB),
        Just(ScheduleKind::Interleaved { chunks: 2 }),
        Just(ScheduleKind::Interleaved { chunks: 3 }),
        Just(ScheduleKind::ZbH1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A valid built-in stream with its schedule claimed always
    /// certifies — across shapes (including m < p), timings (including
    /// backwards that don't split evenly) and comm latencies. Any regime
    /// misgating in the closed-form comparison would surface here as a
    /// spurious bubble finding.
    #[test]
    fn builtins_certify_for_arbitrary_shapes(
        kind in any_kind(),
        p in 1usize..9,
        m in 1usize..17,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
        comm_us in 0u64..1_000,
    ) {
        let set = StreamSet::from_schedule(kind, p, m);
        let mut cfg = VerifyConfig::new(
            SimDuration::from_millis(tf_ms),
            SimDuration::from_millis(tb_ms),
        )
        .with_schedule(kind);
        cfg.comm = SimDuration::from_micros(comm_us);
        let verdict = verify(&set, &cfg);
        prop_assert!(
            verdict.certified(),
            "{kind} p={p} m={m} tf={tf_ms}ms tb={tb_ms}ms comm={comm_us}us: {:?}",
            verdict.findings
        );
    }

    /// The static bubble fraction and period equal the engine's,
    /// bit-for-bit / integer-exactly, for every schedule, shape and
    /// timing — the verifier's longest-path recurrence is the engine's
    /// list scheduler, proven on the same inputs.
    #[test]
    fn static_fraction_is_engine_fraction_bit_for_bit(
        kind in any_kind(),
        p in 1usize..9,
        m in 1usize..17,
        tf_ms in 1u64..30,
        tb_ms in 1u64..60,
        comm_us in 0u64..1_000,
    ) {
        let tf = SimDuration::from_millis(tf_ms);
        let tb = SimDuration::from_millis(tb_ms);
        let mut engine = EngineConfig::uniform(kind, p, m, tf, tb);
        engine.comm = SimDuration::from_micros(comm_us);
        let tl = engine.run();

        let set = StreamSet::from_schedule(kind, p, m);
        let mut cfg = VerifyConfig::new(tf, tb);
        cfg.comm = SimDuration::from_micros(comm_us);
        let verdict = verify(&set, &cfg);
        let stats = verdict.stats.expect("valid streams analyze");
        prop_assert_eq!(stats.period, tl.period);
        prop_assert_eq!(
            stats.bubble_fraction_static.to_bits(),
            tl.bubble_ratio().to_bits(),
            "{} p={} m={}: {} vs {}",
            kind, p, m, stats.bubble_fraction_static, tl.bubble_ratio()
        );
    }

    /// The static per-device memory peaks equal the engine's published
    /// activation envelope for every built-in schedule and shape.
    #[test]
    fn static_peaks_equal_published_envelope(
        kind in any_kind(),
        p in 1usize..9,
        m in 1usize..17,
    ) {
        let set = StreamSet::from_schedule(kind, p, m);
        prop_assert_eq!(activation_peaks(&set), activation_envelope(kind, p, m));
    }

    /// Randomized single mutations preserve the no-false-negative
    /// contract (the exhaustive corpus lives in `differential.rs`; this
    /// covers shapes it does not).
    #[test]
    fn random_mutants_never_produce_false_negatives(
        kind in any_kind(),
        p in 1usize..6,
        m in 1usize..9,
        device in 0usize..6,
        position in 0usize..64,
        mutation in 0usize..4,
    ) {
        let tf = SimDuration::from_millis(10);
        let tb = SimDuration::from_millis(20);
        let mut streams = kind.all_stage_instructions(p, m);
        let s = device % p;
        let len = streams[s].len();
        let i = position % len;
        match mutation {
            0 => { streams[s].remove(i); }
            1 => { let instr = streams[s][i]; streams[s].insert(i + 1, instr); }
            2 if i + 1 < len => { streams[s].swap(i, i + 1); }
            _ => { let instr = streams[s].remove(i); streams[s].insert(0, instr); }
        }
        let engine_ok = EngineConfig::uniform(kind, p, m, tf, tb)
            .execute_streams(&streams)
            .is_ok();
        let set = StreamSet { streams, microbatches: m, chunks: kind.chunk_count() };
        let certified = verify(&set, &VerifyConfig::new(tf, tb)).certified();
        prop_assert!(
            !certified || engine_ok,
            "{kind} p={p} m={m} dev{s}[{i}] mutation {mutation}: false negative"
        );
    }
}

/// The closed forms themselves, spot-checked at the calibration point
/// the certificates are generated at (r = 2): GPipe/1F1B at
/// (p-1)/(m+p-1), ZB-H1 at (p-1)/(3m+p-1), interleaved bounded below by
/// (p-1)/(vm+p-1).
#[test]
fn closed_forms_at_the_calibration_point() {
    let tf = SimDuration::from_millis(10);
    let tb = SimDuration::from_millis(20);
    for (kind, p, m, expected) in [
        (ScheduleKind::GPipe, 4, 8, 3.0f64 / 11.0),
        (ScheduleKind::OneFOneB, 4, 8, 3.0 / 11.0),
        (ScheduleKind::ZbH1, 4, 8, 3.0 / 27.0),
    ] {
        let set = StreamSet::from_schedule(kind, p, m);
        let verdict = verify(&set, &VerifyConfig::new(tf, tb).with_schedule(kind));
        let stats = verdict.stats.expect("certifies");
        assert_eq!(
            stats.bubble_fraction_static.to_bits(),
            expected.to_bits(),
            "{kind}"
        );
    }
    let set = StreamSet::from_schedule(ScheduleKind::Interleaved { chunks: 2 }, 4, 8);
    let verdict = verify(
        &set,
        &VerifyConfig::new(tf, tb).with_schedule(ScheduleKind::Interleaved { chunks: 2 }),
    );
    let stats = verdict.stats.expect("certifies");
    let ideal = 3.0 / 19.0;
    assert!(stats.bubble_fraction_static >= ideal);
}
