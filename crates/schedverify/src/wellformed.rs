//! Completeness and well-formedness: every microbatch's compute appears
//! exactly once per stage (per chunk), in a legal per-microbatch order.
//!
//! This is the verifier's first gate. The later analyses (dependency
//! graph, memory envelope, critical path) assume each `(chunk,
//! microbatch)` key has exactly one producer per device; checking that
//! here keeps their diagnostics sharp instead of cascading.

use std::collections::BTreeMap;

use pipefill_pipeline::PipelineInstruction;

use crate::stream::{token, StreamSet};
use crate::{Finding, Property};

/// Which position list of a [`Tally`] an instruction lands in.
type TallySlot = fn(&mut Tally) -> &mut Vec<usize>;

/// Per-(chunk, microbatch) tally on one device.
#[derive(Default)]
struct Tally {
    /// Positions of forward instructions.
    fwd: Vec<usize>,
    /// Positions of full backwards (`B` / chunked `B`).
    bwd_full: Vec<usize>,
    /// Positions of ZB-H1 `B` halves.
    bwd_input: Vec<usize>,
    /// Positions of ZB-H1 `W` halves.
    bwd_weight: Vec<usize>,
}

/// Checks stream-set well-formedness, returning one finding per defect.
pub fn check(set: &StreamSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    let m = set.microbatches;
    let chunks = set.chunks;

    for (s, stream) in set.streams.iter().enumerate() {
        let mut tallies: BTreeMap<(usize, usize), Tally> = BTreeMap::new();
        let mut shape_ok = true;
        for (pos, &instr) in stream.iter().enumerate() {
            // Range checks on the instruction's own indices.
            if let Some(mb) = instr.microbatch() {
                if mb >= m {
                    findings.push(Finding::on_device(
                        Property::Wellformed,
                        s,
                        format!(
                            "position {pos} ({}) names microbatch {mb}, \
                             but the iteration has {m}",
                            token(instr)
                        ),
                    ));
                    shape_ok = false;
                    continue;
                }
            }
            let (key, slot): (Option<(usize, usize)>, TallySlot) = match instr {
                PipelineInstruction::Forward { microbatch } => {
                    (Some((0, microbatch)), |t| &mut t.fwd)
                }
                PipelineInstruction::Backward { microbatch } => {
                    (Some((0, microbatch)), |t| &mut t.bwd_full)
                }
                PipelineInstruction::ForwardChunk { chunk, microbatch } => {
                    (Some((chunk, microbatch)), |t| &mut t.fwd)
                }
                PipelineInstruction::BackwardChunk { chunk, microbatch } => {
                    (Some((chunk, microbatch)), |t| &mut t.bwd_full)
                }
                PipelineInstruction::BackwardInput { microbatch } => {
                    (Some((0, microbatch)), |t| &mut t.bwd_input)
                }
                PipelineInstruction::BackwardWeight { microbatch } => {
                    (Some((0, microbatch)), |t| &mut t.bwd_weight)
                }
                _ => (None, |t| &mut t.fwd),
            };
            let Some((chunk, mb)) = key else { continue };
            if chunk >= chunks {
                findings.push(Finding::on_device(
                    Property::Wellformed,
                    s,
                    format!(
                        "position {pos} ({}) names chunk {chunk}, \
                         but each device hosts {chunks}",
                        token(instr)
                    ),
                ));
                shape_ok = false;
                continue;
            }
            // In a chunked stream every compute must be chunk-addressed —
            // the engine keys virtual stages off the chunk index, so an
            // unchunked F/B would silently alias chunk 0.
            if chunks > 1
                && matches!(
                    instr,
                    PipelineInstruction::Forward { .. }
                        | PipelineInstruction::Backward { .. }
                        | PipelineInstruction::BackwardInput { .. }
                        | PipelineInstruction::BackwardWeight { .. }
                )
            {
                findings.push(Finding::on_device(
                    Property::Wellformed,
                    s,
                    format!(
                        "position {pos} ({}) is unchunked compute in a \
                         {chunks}-chunk stream (write F<c>.<m>/B<c>.<m>)",
                        token(instr)
                    ),
                ));
                shape_ok = false;
                continue;
            }
            slot(tallies.entry((chunk, mb)).or_default()).push(pos);
        }
        if !shape_ok {
            // Counting against a malformed shape would only add noise.
            continue;
        }

        for chunk in 0..chunks {
            for mb in 0..m {
                let t = tallies.entry((chunk, mb)).or_default();
                let at = |chunk: usize, mb: usize| -> String {
                    if chunks > 1 {
                        format!("chunk {chunk} microbatch {mb}")
                    } else {
                        format!("microbatch {mb}")
                    }
                };
                if t.fwd.len() != 1 {
                    findings.push(Finding::on_device(
                        Property::Wellformed,
                        s,
                        format!(
                            "{} has {} forward instructions, expected exactly 1",
                            at(chunk, mb),
                            t.fwd.len()
                        ),
                    ));
                }
                let full = t.bwd_full.len();
                let (bi, bw) = (t.bwd_input.len(), t.bwd_weight.len());
                let legal_full = full == 1 && bi == 0 && bw == 0;
                let legal_split = full == 0 && bi == 1 && bw == 1;
                if !legal_full && !legal_split {
                    findings.push(Finding::on_device(
                        Property::Wellformed,
                        s,
                        format!(
                            "{} has {full} full backward(s), {bi} BI and {bw} BW; \
                             expected exactly one B, or one BI + one BW",
                            at(chunk, mb)
                        ),
                    ));
                }
                // Order checks only once the counts are unambiguous.
                if t.fwd.len() == 1 && (legal_full || legal_split) {
                    let f_pos = t.fwd[0];
                    let b_pos = if legal_full {
                        t.bwd_full[0]
                    } else {
                        t.bwd_input[0]
                    };
                    if b_pos < f_pos {
                        findings.push(Finding::on_device(
                            Property::Wellformed,
                            s,
                            format!(
                                "{}: backward at position {b_pos} precedes \
                                 its forward at position {f_pos}",
                                at(chunk, mb)
                            ),
                        ));
                    }
                    if legal_split && t.bwd_weight[0] < t.bwd_input[0] {
                        findings.push(Finding::on_device(
                            Property::Wellformed,
                            s,
                            format!(
                                "{}: BW at position {} precedes its BI at position {}",
                                at(chunk, mb),
                                t.bwd_weight[0],
                                t.bwd_input[0]
                            ),
                        ));
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::ScheduleKind;

    #[test]
    fn builtins_are_wellformed() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
            ScheduleKind::ZbH1,
        ] {
            let set = StreamSet::from_schedule(kind, 4, 8);
            assert_eq!(check(&set), Vec::new(), "{kind}");
        }
    }

    #[test]
    fn each_defect_class_is_named() {
        let cases: [(&str, &str); 6] = [
            // Dropped backward.
            ("device_0 = \"F0 F1 B0\"", "0 full backward(s)"),
            // Duplicated forward.
            ("device_0 = \"F0 F0 F1 B0 B1\"", "2 forward instructions"),
            // Backward before its forward.
            ("device_0 = \"B0 F0 F1 B1\"", "precedes its forward"),
            // Microbatch out of range.
            ("device_0 = \"F0 F5 B0 B5\"", "names microbatch 5"),
            // Mixed split and full backward.
            (
                "device_0 = \"F0 F1 B0 BI1 BW1 B1\"",
                "expected exactly one B",
            ),
            // W before B.
            ("device_0 = \"F0 F1 BW0 BI0 BI1 BW1\"", "precedes its BI"),
        ];
        for (line, needle) in cases {
            let set = StreamSet::parse(&format!("stages = 1\nmicrobatches = 2\n{line}\n"))
                .expect("parses");
            let findings = check(&set);
            assert!(
                findings.iter().any(|f| f.message.contains(needle)),
                "{line}: {findings:?} should mention '{needle}'"
            );
        }
    }

    #[test]
    fn chunked_streams_reject_unchunked_compute_and_bad_chunks() {
        let set = StreamSet::parse(
            "stages = 1\nmicrobatches = 1\nchunks = 2\ndevice_0 = \"F0 F0.0 F1.0 B1.0 B0.0\"\n",
        )
        .expect("parses");
        let findings = check(&set);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("unchunked compute")));

        let set = StreamSet::parse(
            "stages = 1\nmicrobatches = 1\nchunks = 2\ndevice_0 = \"F0.0 F3.0 B3.0 B0.0\"\n",
        )
        .expect("parses");
        let findings = check(&set);
        assert!(findings.iter().any(|f| f.message.contains("names chunk 3")));
    }

    #[test]
    fn markers_and_sync_are_ignored() {
        let set = StreamSet::parse(
            "stages = 1\nmicrobatches = 1\n\
             device_0 = \"bubble:fwd-bwd F0 B0 sync opt bubble:fill-drain\"\n",
        )
        .expect("parses");
        assert_eq!(check(&set), Vec::new());
    }
}
