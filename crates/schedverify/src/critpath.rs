//! Bubble lower bound via longest paths through the weighted dependency
//! DAG.
//!
//! Each instruction occurrence's earliest start time satisfies
//!
//! ```text
//! start(n) = max(end(program-order predecessor),
//!                end(dependency producer) [+ comm if cross-device])
//! ```
//!
//! which over an acyclic graph is exactly a longest-path computation —
//! and *identical* to the recurrence the engine's in-order list
//! scheduler evaluates (`start = free[s].max(dep)`). Evaluating it here
//! over the same unrolled iterations, durations
//! ([`EngineConfig::instruction_duration`]) and dependency keys
//! ([`pipefill_pipeline::deps`]) therefore reproduces the engine's
//! steady-state period and per-stage busy time as integers, making the
//! derived bubble fraction equal [`EngineTimeline::bubble_ratio`]
//! bit-for-bit — proven statically, from the stream text alone.
//!
//! [`EngineTimeline::bubble_ratio`]: pipefill_pipeline::EngineTimeline::bubble_ratio

use std::collections::BTreeMap;

use pipefill_pipeline::deps::{self, DepKey};
use pipefill_pipeline::{EngineConfig, PipelineInstruction};
use pipefill_sim_core::{SimDuration, SimTime};

use crate::stream::{token, StreamSet};
use crate::{Finding, Property};

/// Iterations unrolled before reading off the steady state — the same
/// horizon the engine simulates (its `SIM_ITERATIONS`/`STEADY_ITER`).
const ITERATIONS: usize = 4;
const STEADY_ITER: usize = 2;

/// The steady-state quantities the longest-path analysis proves.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPath {
    /// Iteration period: the steady-state distance between consecutive
    /// iteration starts on stage 0.
    pub period: SimDuration,
    /// Per-stage busy time within one steady-state period.
    pub busy: Vec<SimDuration>,
    /// Fraction of all device time spent idle — computed with the same
    /// integer sums and single division as the engine's `bubble_ratio`.
    pub bubble_fraction: f64,
}

/// Runs the longest-path analysis over `ITERATIONS` unrolled copies of
/// the stream set.
///
/// # Errors
///
/// A finding when no steady state exists to bound: the unrolled graph
/// wedges (unreachable after [`crate::graph::check`] passes — kept as a
/// defensive invariant), an iteration has no busy instruction on some
/// stage, or consecutive iterations disagree on the period.
pub fn analyze(set: &StreamSet, engine: &EngineConfig) -> Result<CritPath, Finding> {
    let p = set.stages();
    let chunks = set.chunks;

    // Earliest-start evaluation, iteration-tagged exactly like the
    // engine: key availability is per (iteration, DepKey).
    let mut done: BTreeMap<(usize, DepKey), SimTime> = BTreeMap::new();
    let mut next = vec![0usize; p];
    let mut free = vec![SimTime::ZERO; p];
    // Per stage: (iteration, start, end) per occurrence, program order.
    let mut records: Vec<Vec<(usize, SimTime, SimTime)>> = vec![Vec::new(); p];
    let total: usize = set.instruction_count() * ITERATIONS;
    let at = |stream: &[PipelineInstruction], flat: usize| -> (usize, PipelineInstruction) {
        (flat / stream.len(), stream[flat % stream.len()])
    };

    loop {
        let mut progressed = false;
        for s in 0..p {
            let stream = &set.streams[s];
            while next[s] < stream.len() * ITERATIONS {
                let (iter, instr) = at(stream, next[s]);
                let dep = match deps::consumed(instr, s, p, chunks) {
                    None => SimTime::ZERO,
                    Some(edge) => match done.get(&(iter, edge.key)) {
                        Some(&t) if edge.crosses_device => t + engine.comm,
                        Some(&t) => t,
                        None => break,
                    },
                };
                let start = free[s].max(dep);
                let end = start + engine.instruction_duration(instr, s);
                if let Some(key) = deps::produced(instr, s, p) {
                    done.insert((iter, key), end);
                }
                records[s].push((iter, start, end));
                free[s] = end;
                next[s] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let evaluated: usize = next.iter().sum();
    if evaluated < total {
        let s = (0..p)
            .find(|&s| next[s] < set.streams[s].len() * ITERATIONS)
            .expect("some stage is short");
        let (_, instr) = at(&set.streams[s], next[s]);
        return Err(Finding::on_device(
            Property::Deadlock,
            s,
            format!(
                "longest-path evaluation wedged at position {} ({})",
                next[s] % set.streams[s].len(),
                token(instr)
            ),
        ));
    }

    // Steady state: iteration k starts (per stage) at its first busy
    // instruction; the stage-0 deltas must agree across iterations.
    let iter_start = |s: usize, k: usize| -> Result<SimTime, Finding> {
        records[s]
            .iter()
            .find(|&&(iter, start, end)| iter == k && end > start)
            .map(|&(_, start, _)| start)
            .ok_or_else(|| {
                Finding::on_device(
                    Property::Bubble,
                    s,
                    format!(
                        "iteration {k} has no busy instruction, so there is \
                         no steady-state period to bound"
                    ),
                )
            })
    };
    let t0 = iter_start(0, STEADY_ITER)?;
    let period = iter_start(0, STEADY_ITER + 1)? - t0;
    let prev_period = t0 - iter_start(0, STEADY_ITER - 1)?;
    if period != prev_period {
        return Err(Finding::on_device(
            Property::Bubble,
            0,
            format!(
                "not periodic by iteration {STEADY_ITER}: consecutive \
                 iteration starts are {prev_period} then {period} apart"
            ),
        ));
    }

    let mut busy = Vec::with_capacity(p);
    let mut total_bubble = SimDuration::ZERO;
    for (s, stage_records) in records.iter().enumerate() {
        let window = iter_start(s, STEADY_ITER + 1)? - iter_start(s, STEADY_ITER)?;
        let stage_busy: SimDuration = stage_records
            .iter()
            .filter(|&&(iter, start, end)| iter == STEADY_ITER && end > start)
            .map(|&(_, start, end)| end - start)
            .sum();
        total_bubble += window - stage_busy;
        busy.push(stage_busy);
    }
    let bubble_fraction = total_bubble.ratio(period * p as u64);
    Ok(CritPath {
        period,
        busy,
        bubble_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::ScheduleKind;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn reproduces_the_engine_exactly_for_builtins() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
            ScheduleKind::ZbH1,
        ] {
            for (p, m) in [(2, 4), (4, 8), (8, 16)] {
                let cfg = EngineConfig::uniform(kind, p, m, ms(10), ms(20));
                let set = StreamSet::from_schedule(kind, p, m);
                let crit = analyze(&set, &cfg).unwrap_or_else(|f| panic!("{kind}: {f:?}"));
                let tl = cfg.run();
                assert_eq!(crit.period, tl.period, "{kind} p={p} m={m}");
                // Bit-for-bit: same integer dividend and divisor, same
                // single f64 division.
                assert_eq!(
                    crit.bubble_fraction.to_bits(),
                    tl.bubble_ratio().to_bits(),
                    "{kind} p={p} m={m}: {} vs {}",
                    crit.bubble_fraction,
                    tl.bubble_ratio()
                );
                for (s, st) in tl.stages.iter().enumerate() {
                    assert_eq!(crit.busy[s], st.busy, "{kind} p={p} m={m} stage {s}");
                }
            }
        }
    }

    #[test]
    fn comm_latency_flows_through_cross_device_edges() {
        let mut cfg = EngineConfig::uniform(ScheduleKind::OneFOneB, 4, 8, ms(10), ms(20));
        cfg.comm = SimDuration::from_micros(500);
        let set = StreamSet::from_schedule(ScheduleKind::OneFOneB, 4, 8);
        let crit = analyze(&set, &cfg).expect("analyzes");
        let tl = cfg.run();
        assert_eq!(crit.period, tl.period);
        assert_eq!(crit.bubble_fraction.to_bits(), tl.bubble_ratio().to_bits());
    }

    #[test]
    fn single_device_pipeline_has_no_bubbles() {
        let cfg = EngineConfig::uniform(ScheduleKind::GPipe, 1, 4, ms(10), ms(20));
        let set = StreamSet::from_schedule(ScheduleKind::GPipe, 1, 4);
        let crit = analyze(&set, &cfg).expect("analyzes");
        assert_eq!(crit.bubble_fraction, 0.0);
        assert_eq!(crit.busy[0], crit.period);
    }

    #[test]
    fn all_idle_streams_are_rejected_not_divided_by_zero() {
        let set = StreamSet::parse(
            "stages = 1\nmicrobatches = 1\ndevice_0 = \"sync opt bubble:fill-drain\"\n",
        )
        .expect("parses");
        let cfg = EngineConfig::uniform(ScheduleKind::OneFOneB, 1, 1, ms(10), ms(20));
        let finding = analyze(&set, &cfg).expect_err("no busy instruction");
        assert!(finding.message.contains("no busy instruction"));
    }
}
