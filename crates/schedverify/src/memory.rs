//! Static memory envelope: peak live activations per device.
//!
//! A forward pins one chunk's worth of activation memory until the
//! matching backward consumes it — the full `B` for plain schedules, the
//! `BI` half for ZB-H1 (the deferred `W` half reads weight gradients,
//! not activations). Scanning each stream's prefix sums therefore yields
//! the exact peak number of live activations the engine would hold, in
//! whole-microbatch units (`peak chunks / chunks`, rounded up), without
//! executing anything.
//!
//! [`pipefill_pipeline::activation_envelope`] publishes the same
//! quantity for the built-in generators from closed forms; the
//! conformance tests pin the two against each other.

use pipefill_pipeline::PipelineInstruction;

use crate::stream::StreamSet;
use crate::{Finding, Property};

/// Peak live activations per device, in whole-microbatch units.
pub fn activation_peaks(set: &StreamSet) -> Vec<u64> {
    set.streams
        .iter()
        .map(|stream| {
            let mut resident = 0u64; // live activation chunks
            let mut peak = 0u64;
            for &instr in stream {
                match instr {
                    PipelineInstruction::Forward { .. }
                    | PipelineInstruction::ForwardChunk { .. } => {
                        resident += 1;
                        peak = peak.max(resident);
                    }
                    PipelineInstruction::Backward { .. }
                    | PipelineInstruction::BackwardChunk { .. }
                    | PipelineInstruction::BackwardInput { .. } => {
                        resident = resident.saturating_sub(1);
                    }
                    _ => {}
                }
            }
            peak.div_ceil(set.chunks as u64)
        })
        .collect()
}

/// Checks the envelope against an optional per-device limit.
pub fn check(set: &StreamSet, limit: Option<u64>) -> (Vec<u64>, Vec<Finding>) {
    let peaks = activation_peaks(set);
    let mut findings = Vec::new();
    if let Some(limit) = limit {
        for (s, &peak) in peaks.iter().enumerate() {
            if peak > limit {
                findings.push(Finding::on_device(
                    Property::Memory,
                    s,
                    format!(
                        "peak of {peak} live microbatch activations exceeds \
                         the limit of {limit}"
                    ),
                ));
            }
        }
    }
    (peaks, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::{activation_envelope, ScheduleKind};

    #[test]
    fn static_peaks_match_the_published_envelope() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
            ScheduleKind::Interleaved { chunks: 3 },
            ScheduleKind::ZbH1,
        ] {
            for (p, m) in [(1, 1), (2, 4), (4, 8), (4, 2), (8, 16)] {
                let set = StreamSet::from_schedule(kind, p, m);
                assert_eq!(
                    activation_peaks(&set),
                    activation_envelope(kind, p, m),
                    "{kind} p={p} m={m}"
                );
            }
        }
    }

    #[test]
    fn limits_trip_per_device() {
        // GPipe holds all m activations on every device; 1F1B caps at
        // min(m, p - s).
        let gpipe = StreamSet::from_schedule(ScheduleKind::GPipe, 4, 8);
        let (peaks, findings) = check(&gpipe, Some(4));
        assert_eq!(peaks, vec![8, 8, 8, 8]);
        assert_eq!(findings.len(), 4);
        assert!(findings[0].message.contains("peak of 8"));

        let ofob = StreamSet::from_schedule(ScheduleKind::OneFOneB, 4, 8);
        let (peaks, findings) = check(&ofob, Some(4));
        assert_eq!(peaks, vec![4, 3, 2, 1]);
        assert!(findings.is_empty());

        let (_, findings) = check(&ofob, None);
        assert!(findings.is_empty());
    }
}
