//! # pipefill-schedverify — "schedcheck"
//!
//! A static verifier for pipeline-parallel instruction streams. Given one
//! iteration's per-device streams — from the built-in generators or an
//! external stream file — it proves, without running the engine:
//!
//! 1. **Well-formedness** ([`wellformed`]): every microbatch's forward
//!    and backward (or ZB-H1 `B`+`W` pair) appears exactly once per
//!    stage and chunk, in a legal per-microbatch order.
//! 2. **Deadlock-freedom** ([`graph`]): the cross-device dependency
//!    graph — intra-device program order plus the inter-stage
//!    activation/gradient edges the engine keys execution on — is
//!    acyclic, with the offending cycle spelled out when it is not.
//! 3. **Memory-envelope compliance** ([`memory`]): the static peak of
//!    live activations per device, checked against a limit and equal to
//!    the engine's published [`pipefill_pipeline::activation_envelope`].
//! 4. **Bubble optimality** ([`critpath`]): the steady-state bubble
//!    fraction via longest paths through the weighted dependency DAG —
//!    bit-for-bit the engine's `bubble_ratio` — compared against the
//!    paper's closed forms where they apply.
//!
//! Verdicts render as deterministic JSON certificates ([`certificate`])
//! that CI regenerates and byte-compares, so "the built-in schedules are
//! deadlock-free and bubble-optimal" is a pinned artifact, not a hope.
//!
//! The deliberate redundancy is the point: the dependency *keying* is
//! shared with the engine (`pipefill_pipeline::deps`, so the two cannot
//! drift), but the analyses re-derive everything else independently and
//! the conformance suite pins the results against the engine's — an
//! executable proof that the static story and the dynamic story agree.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod certificate;
pub mod critpath;
pub mod graph;
pub mod memory;
pub mod stream;
pub mod wellformed;

use pipefill_pipeline::{bubble_fraction_for, EngineConfig, ScheduleKind};
use pipefill_sim_core::SimDuration;

pub use critpath::CritPath;
pub use graph::GraphStats;
pub use memory::activation_peaks;
pub use stream::StreamSet;

/// Which property a finding falsifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Property {
    /// Completeness / per-microbatch ordering (property 1).
    Wellformed,
    /// Deadlock-freedom (property 2).
    Deadlock,
    /// Memory-envelope compliance (property 3).
    Memory,
    /// Bubble optimality / steady-state analysis (property 4).
    Bubble,
}

impl Property {
    /// Stable lower-case name used in certificates and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            Property::Wellformed => "wellformed",
            Property::Deadlock => "deadlock",
            Property::Memory => "memory",
            Property::Bubble => "bubble",
        }
    }
}

impl std::fmt::Display for Property {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One defect: a property the stream set fails, with a human-readable
/// explanation. No findings means certified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The property falsified.
    pub property: Property,
    /// The device the defect was observed on, when attributable.
    pub device: Option<usize>,
    /// What went wrong, in stream-file vocabulary.
    pub message: String,
}

impl Finding {
    /// A finding attributed to one device.
    pub fn on_device(property: Property, device: usize, message: String) -> Finding {
        Finding {
            property,
            device: Some(device),
            message,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.device {
            Some(d) => write!(f, "[{}] dev{d}: {}", self.property, self.message),
            None => write!(f, "[{}] {}", self.property, self.message),
        }
    }
}

/// How a verification run weighs and bounds the streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Per-stage forward time for one microbatch (uniform stages).
    pub t_fwd: SimDuration,
    /// Per-stage backward time for one microbatch (uniform stages).
    pub t_bwd: SimDuration,
    /// Inter-stage hand-off latency.
    pub comm: SimDuration,
    /// Per-device cap on live microbatch activations, if any.
    pub memory_limit: Option<u64>,
    /// The schedule the streams claim to implement; enables the
    /// closed-form bubble comparison.
    pub schedule: Option<ScheduleKind>,
}

impl VerifyConfig {
    /// Uniform-stage config with no memory limit and no claimed schedule.
    pub fn new(t_fwd: SimDuration, t_bwd: SimDuration) -> VerifyConfig {
        VerifyConfig {
            t_fwd,
            t_bwd,
            comm: SimDuration::ZERO,
            memory_limit: None,
            schedule: None,
        }
    }

    /// Claims the streams implement `schedule`, enabling the closed-form
    /// bubble comparison.
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> VerifyConfig {
        self.schedule = Some(schedule);
        self
    }

    /// Caps live microbatch activations per device.
    pub fn with_memory_limit(mut self, limit: u64) -> VerifyConfig {
        self.memory_limit = Some(limit);
        self
    }

    /// The engine configuration whose durations and comm latency weight
    /// the dependency DAG. The schedule slot only matters for its chunk
    /// count (which drives chunked-compute durations), so it is forced
    /// consistent with the stream set's.
    pub fn engine_config(&self, set: &StreamSet) -> EngineConfig {
        let repr = match self.schedule {
            Some(k) if k.chunk_count() == set.chunks => k,
            _ if set.chunks > 1 => ScheduleKind::Interleaved { chunks: set.chunks },
            _ => ScheduleKind::OneFOneB,
        };
        let mut cfg =
            EngineConfig::uniform(repr, set.stages(), set.microbatches, self.t_fwd, self.t_bwd);
        cfg.comm = self.comm;
        cfg
    }
}

/// How the static bubble fraction relates to the paper's closed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// The closed form is the realized fraction; equality is checked
    /// bit-for-bit.
    Exact,
    /// The closed form is an ideal lower bound (interleaved schedules:
    /// the generator's fill/drain overlap is imperfect, §2); the static
    /// fraction must be at least it.
    LowerBound,
    /// The closed form makes no claim for this shape (e.g. `m < p`) or
    /// these timings; nothing is checked.
    OutOfRegime,
}

impl Relation {
    /// Stable kebab-case name used in certificates.
    pub fn as_str(self) -> &'static str {
        match self {
            Relation::Exact => "exact",
            Relation::LowerBound => "lower-bound",
            Relation::OutOfRegime => "out-of-regime",
        }
    }
}

/// The closed-form comparison attached to a verdict when the schedule is
/// known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedForm {
    /// The paper's formula evaluated for this shape (`bubble_fraction_for`).
    pub expected: f64,
    /// What the formula claims about the realized fraction.
    pub relation: Relation,
    /// Whether the claim holds for the static fraction.
    pub holds: bool,
}

/// Everything a certified run proves, reported in certificates.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Pipeline stages.
    pub stages: usize,
    /// Microbatches per iteration.
    pub microbatches: usize,
    /// Model chunks per device.
    pub chunks: usize,
    /// Instruction occurrences across all devices (one iteration).
    pub instructions: usize,
    /// Inter-stage dependency edges in the verified graph.
    pub dependency_edges: usize,
    /// Peak live microbatch activations per device.
    pub memory_peaks: Vec<u64>,
    /// Proven steady-state iteration period.
    pub period: SimDuration,
    /// Static bubble fraction (engine `bubble_ratio`, bit-for-bit).
    pub bubble_fraction_static: f64,
    /// Closed-form comparison, when a schedule was claimed.
    pub closed_form: Option<ClosedForm>,
}

/// The verifier's output: findings (empty iff certified) plus the proven
/// quantities (absent when the streams are too broken to analyze).
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Every defect found, in analysis order.
    pub findings: Vec<Finding>,
    /// Proven quantities; `None` when well-formedness or deadlock
    /// analysis already failed.
    pub stats: Option<Stats>,
}

impl Verdict {
    /// True iff every property holds.
    pub fn certified(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Verifies a stream set: well-formedness, deadlock-freedom, memory
/// envelope, bubble bound. See the crate docs for the property list.
pub fn verify(set: &StreamSet, cfg: &VerifyConfig) -> Verdict {
    let findings = wellformed::check(set);
    if !findings.is_empty() {
        return Verdict {
            findings,
            stats: None,
        };
    }
    let graph = match graph::check(set) {
        Ok(g) => g,
        Err(findings) => {
            return Verdict {
                findings,
                stats: None,
            }
        }
    };
    let (memory_peaks, mut findings) = memory::check(set, cfg.memory_limit);
    let engine = cfg.engine_config(set);
    let crit = match critpath::analyze(set, &engine) {
        Ok(c) => c,
        Err(f) => {
            findings.push(f);
            return Verdict {
                findings,
                stats: None,
            };
        }
    };

    let closed_form = cfg
        .schedule
        .map(|kind| closed_form_check(kind, set, cfg, crit.bubble_fraction));
    if let Some(cf) = closed_form {
        if !cf.holds {
            findings.push(Finding {
                property: Property::Bubble,
                device: None,
                message: format!(
                    "static bubble fraction {} violates the closed form {} ({})",
                    crit.bubble_fraction,
                    cf.expected,
                    cf.relation.as_str()
                ),
            });
        }
    }

    Verdict {
        stats: Some(Stats {
            stages: set.stages(),
            microbatches: set.microbatches,
            chunks: set.chunks,
            instructions: set.instruction_count(),
            dependency_edges: graph.dependency_edges,
            memory_peaks,
            period: crit.period,
            bubble_fraction_static: crit.bubble_fraction,
            closed_form,
        }),
        findings,
    }
}

/// Relates the static fraction to `bubble_fraction_for`.
///
/// Regimes: the formulas assume `m >= p` (below that the pipeline never
/// fills and the drain structure changes); ZB-H1's additionally bakes in
/// the `B = W = t_bwd/2` split, so it is only exact when `t_bwd` splits
/// evenly; interleaved formulas are ideal lower bounds by construction.
fn closed_form_check(
    kind: ScheduleKind,
    set: &StreamSet,
    cfg: &VerifyConfig,
    static_fraction: f64,
) -> ClosedForm {
    let (p, m) = (set.stages(), set.microbatches);
    let r = if cfg.t_fwd.is_zero() {
        f64::NAN
    } else {
        cfg.t_bwd.as_nanos() as f64 / cfg.t_fwd.as_nanos() as f64
    };
    let expected = bubble_fraction_for(kind, p, m, r);
    let relation = if m < p || cfg.t_fwd.is_zero() || !cfg.comm.is_zero() {
        Relation::OutOfRegime
    } else {
        match kind {
            ScheduleKind::GPipe | ScheduleKind::OneFOneB => Relation::Exact,
            ScheduleKind::Interleaved { chunks: 1 } => Relation::Exact,
            ScheduleKind::Interleaved { .. } => Relation::LowerBound,
            ScheduleKind::ZbH1 => {
                if cfg.t_bwd.as_nanos().is_multiple_of(2) {
                    Relation::Exact
                } else {
                    Relation::OutOfRegime
                }
            }
        }
    };
    let holds = match relation {
        Relation::Exact => static_fraction.to_bits() == expected.to_bits(),
        Relation::LowerBound => static_fraction >= expected,
        Relation::OutOfRegime => true,
    };
    ClosedForm {
        expected,
        relation,
        holds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn cfg() -> VerifyConfig {
        VerifyConfig::new(ms(10), ms(20))
    }

    #[test]
    fn builtins_certify_with_exact_or_bounding_closed_forms() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
            ScheduleKind::ZbH1,
        ] {
            let set = StreamSet::from_schedule(kind, 4, 8);
            let verdict = verify(&set, &cfg().with_schedule(kind));
            assert!(verdict.certified(), "{kind}: {:?}", verdict.findings);
            let stats = verdict.stats.expect("certified runs carry stats");
            let cf = stats.closed_form.expect("schedule was claimed");
            assert!(cf.holds, "{kind}");
            match kind {
                ScheduleKind::Interleaved { .. } => {
                    assert_eq!(cf.relation, Relation::LowerBound, "{kind}");
                    assert!(stats.bubble_fraction_static >= cf.expected, "{kind}");
                }
                _ => {
                    assert_eq!(cf.relation, Relation::Exact, "{kind}");
                    assert_eq!(
                        stats.bubble_fraction_static.to_bits(),
                        cf.expected.to_bits(),
                        "{kind}"
                    );
                }
            }
        }
    }

    #[test]
    fn deadlocked_stream_is_rejected_with_a_cycle() {
        let set = StreamSet::parse(
            "stages = 2\nmicrobatches = 2\n\
             device_0 = \"F0 B0 F1 B1\"\n\
             device_1 = \"F1 F0 B0 B1\"\n",
        )
        .expect("parses");
        let verdict = verify(&set, &cfg());
        assert!(!verdict.certified());
        assert!(verdict.stats.is_none());
        assert_eq!(verdict.findings[0].property, Property::Deadlock);
    }

    #[test]
    fn memory_limit_rejects_gpipe_but_not_1f1b() {
        let gpipe = StreamSet::from_schedule(ScheduleKind::GPipe, 4, 8);
        let verdict = verify(&gpipe, &cfg().with_memory_limit(4));
        assert!(!verdict.certified());
        assert!(verdict
            .findings
            .iter()
            .all(|f| f.property == Property::Memory));
        // Memory findings don't block the rest of the analysis.
        assert!(verdict.stats.is_some());

        let ofob = StreamSet::from_schedule(ScheduleKind::OneFOneB, 4, 8);
        assert!(verify(&ofob, &cfg().with_memory_limit(4)).certified());
    }

    #[test]
    fn small_m_is_out_of_regime_not_a_failure() {
        let set = StreamSet::from_schedule(ScheduleKind::ZbH1, 4, 2);
        let verdict = verify(&set, &cfg().with_schedule(ScheduleKind::ZbH1));
        assert!(verdict.certified(), "{:?}", verdict.findings);
        let cf = verdict.stats.expect("stats").closed_form.expect("claimed");
        assert_eq!(cf.relation, Relation::OutOfRegime);
    }
}
