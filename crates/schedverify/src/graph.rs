//! Deadlock-freedom: acyclicity of the cross-device dependency graph.
//!
//! Nodes are instruction occurrences; edges are (a) intra-device program
//! order — the engine executes each stream strictly in order — and
//! (b) inter-stage activation/gradient hand-offs, keyed exactly as the
//! engine keys its end-time maps via [`pipefill_pipeline::deps`]. A
//! stream set deadlocks under in-order execution **iff** this graph has
//! a cycle or an instruction waits on a key nothing publishes; proving
//! the graph acyclic therefore proves the engine completes, without
//! running it.

use std::collections::BTreeMap;

use pipefill_pipeline::deps::{self, DepKey};

use crate::stream::{token, StreamSet};
use crate::{Finding, Property};

/// Size of the verified graph, reported in certificates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Instruction occurrences.
    pub nodes: usize,
    /// Inter-stage dependency edges (program-order edges excluded — they
    /// are implied by the stream layout).
    pub dependency_edges: usize,
}

/// Location of a node: `(device, position)`.
type Loc = (usize, usize);

/// Proves the dependency graph acyclic, or reports why it is not.
///
/// # Errors
///
/// One finding per unsatisfiable dependency (a consumed key nothing
/// publishes), or a single finding spelling out an offending cycle.
pub fn check(set: &StreamSet) -> Result<GraphStats, Vec<Finding>> {
    let p = set.stages();
    let chunks = set.chunks;

    // Node ids: device-major, position-minor.
    let offsets: Vec<usize> = set
        .streams
        .iter()
        .scan(0usize, |acc, s| {
            let o = *acc;
            *acc += s.len();
            Some(o)
        })
        .collect();
    let nodes: usize = set.instruction_count();
    let loc = |id: usize| -> Loc {
        let s = offsets.iter().rposition(|&o| o <= id).unwrap_or(0);
        (s, id - offsets[s])
    };

    // Producer index: each key's publishing node. Well-formedness has
    // already pinned producers to one occurrence per key.
    let mut producer: BTreeMap<DepKey, usize> = BTreeMap::new();
    for (s, stream) in set.streams.iter().enumerate() {
        for (i, &instr) in stream.iter().enumerate() {
            if let Some(key) = deps::produced(instr, s, p) {
                producer.entry(key).or_insert(offsets[s] + i);
            }
        }
    }

    // Predecessor lists: program order plus the dependency edge.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let mut findings = Vec::new();
    let mut dependency_edges = 0usize;
    for (s, stream) in set.streams.iter().enumerate() {
        for (i, &instr) in stream.iter().enumerate() {
            let id = offsets[s] + i;
            if i > 0 {
                preds[id].push(id - 1);
            }
            let Some(edge) = deps::consumed(instr, s, p, chunks) else {
                continue;
            };
            match producer.get(&edge.key) {
                Some(&src) => {
                    preds[id].push(src);
                    dependency_edges += 1;
                }
                None => findings.push(Finding::on_device(
                    Property::Deadlock,
                    s,
                    format!(
                        "position {i} ({}) waits on {} which no instruction publishes",
                        token(instr),
                        render_key(edge.key)
                    ),
                )),
            }
        }
    }
    if !findings.is_empty() {
        return Err(findings);
    }

    // Kahn's algorithm; whatever it cannot pop is a cycle (every stuck
    // node retains a stuck predecessor).
    let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    for (id, ps) in preds.iter().enumerate() {
        for &src in ps {
            succs[src].push(id);
        }
    }
    let mut ready: Vec<usize> = (0..nodes).filter(|&id| indegree[id] == 0).collect();
    let mut popped = 0usize;
    let mut done = vec![false; nodes];
    while let Some(id) = ready.pop() {
        done[id] = true;
        popped += 1;
        for &next in &succs[id] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                ready.push(next);
            }
        }
    }
    if popped == nodes {
        return Ok(GraphStats {
            nodes,
            dependency_edges,
        });
    }

    // Extract one concrete cycle: from any stuck node, repeatedly step to
    // a stuck predecessor until a node repeats.
    let start = done
        .iter()
        .position(|&d| !d)
        .expect("popped < nodes implies a stuck node");
    let mut path = vec![start];
    let cycle = loop {
        let cur = *path.last().expect("path starts non-empty");
        let back = preds[cur]
            .iter()
            .copied()
            .find(|&q| !done[q])
            .expect("stuck nodes retain a stuck predecessor");
        if let Some(at) = path.iter().position(|&q| q == back) {
            let mut cycle = path.split_off(at);
            // Walking predecessors built the path in reverse dependency
            // order; reverse so the report reads "runs before".
            cycle.reverse();
            break cycle;
        }
        path.push(back);
    };
    let rendered: Vec<String> = cycle
        .iter()
        .map(|&id| {
            let (s, i) = loc(id);
            format!("dev{s}[{i}] {}", token(set.streams[s][i]))
        })
        .collect();
    let (s0, _) = loc(cycle[0]);
    Err(vec![Finding::on_device(
        Property::Deadlock,
        s0,
        format!(
            "dependency cycle among {} instructions: {} -> back to start",
            cycle.len(),
            rendered.join(" -> ")
        ),
    )])
}

fn render_key(key: DepKey) -> String {
    match key {
        DepKey::Fwd { vs, microbatch } => {
            format!("the activation of microbatch {microbatch} from virtual stage {vs}")
        }
        DepKey::Bwd { vs, microbatch } => {
            format!("the gradient of microbatch {microbatch} from virtual stage {vs}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::ScheduleKind;

    #[test]
    fn builtins_are_acyclic() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
            ScheduleKind::ZbH1,
        ] {
            let set = StreamSet::from_schedule(kind, 4, 8);
            let stats = check(&set).unwrap_or_else(|f| panic!("{kind}: {f:?}"));
            assert_eq!(stats.nodes, set.instruction_count());
            assert!(stats.dependency_edges > 0, "{kind}");
        }
    }

    #[test]
    fn classic_wedge_is_reported_as_a_cycle() {
        // dev0 wants B0 before emitting F1, but dev1 wants F1 before it
        // will run the F0/B0 pair dev0's B0 is waiting on: dev0[1] B0 →
        // (program order) dev0[2] F1 → dev1[0] F1 → dev1[2] B0 →
        // dev0[1] B0 again.
        let set = StreamSet::parse(
            "stages = 2\nmicrobatches = 2\n\
             device_0 = \"F0 B0 F1 B1\"\n\
             device_1 = \"F1 F0 B0 B1\"\n",
        )
        .expect("parses");
        let findings = check(&set).expect_err("wedged");
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("dependency cycle"),
            "{findings:?}"
        );
        assert!(findings[0].message.contains("dev0[1] B0"), "{findings:?}");
    }

    #[test]
    fn unsatisfiable_keys_are_reported_per_instruction() {
        // Stage 0 never forwards microbatch 0, so stage 1's F0 waits on
        // an activation nothing publishes — starvation, not a cycle.
        let set = StreamSet::parse(
            "stages = 2\nmicrobatches = 1\n\
             device_0 = \"B0\"\n\
             device_1 = \"F0 B0\"\n",
        )
        .expect("parses");
        let findings = check(&set).expect_err("starved");
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("no instruction publishes")),
            "{findings:?}"
        );
    }
}
