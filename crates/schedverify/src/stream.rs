//! Instruction-stream sets: the verifier's input format.
//!
//! A [`StreamSet`] is one iteration's per-device instruction streams plus
//! the two shape parameters the streams are keyed against (microbatch
//! count and chunks per device). Sets come from two places: the built-in
//! schedule generators ([`StreamSet::from_schedule`]) and external stream
//! files ([`StreamSet::parse`]) written in the same TOML subset the
//! scenario layer uses — `key = value` lines, `#` comments, quoted
//! instruction strings:
//!
//! ```text
//! # 1F1B on two devices, two microbatches
//! stages = 2
//! microbatches = 2
//! device_0 = "F0 F1 B0 B1 sync opt"
//! device_1 = "F0 B0 F1 B1 sync opt"
//! ```
//!
//! Instruction mnemonics: `F<m>` / `B<m>` (full forward/backward of
//! microbatch `m`), `BI<m>` / `BW<m>` (ZB-H1's split backward halves),
//! `F<c>.<m>` / `B<c>.<m>` (chunked compute of model chunk `c`,
//! interleaved schedules), `sync`, `opt`, and
//! `bubble:fwd-bwd|non-contiguous|fill-drain` markers.

use pipefill_pipeline::{BubbleKind, PipelineInstruction, ScheduleKind};

/// One iteration's per-device instruction streams, plus the shape they
/// are keyed against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSet {
    /// Per-device streams, indexed by stage; `streams.len()` is `p`.
    pub streams: Vec<Vec<PipelineInstruction>>,
    /// Microbatches per iteration (`m`).
    pub microbatches: usize,
    /// Model chunks per device (`v`); 1 for unchunked schedules.
    pub chunks: usize,
}

impl StreamSet {
    /// Number of pipeline stages (devices).
    pub fn stages(&self) -> usize {
        self.streams.len()
    }

    /// Total instruction count across all devices.
    pub fn instruction_count(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// The built-in generator's streams for `kind` on a `p`-stage
    /// pipeline with `m` microbatches.
    pub fn from_schedule(kind: ScheduleKind, p: usize, m: usize) -> StreamSet {
        StreamSet {
            streams: kind.all_stage_instructions(p, m),
            microbatches: m,
            chunks: kind.chunk_count(),
        }
    }

    /// Parses a stream file (format in the module docs).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending line, key, or token.
    pub fn parse(text: &str) -> Result<StreamSet, String> {
        let mut stages: Option<usize> = None;
        let mut microbatches: Option<usize> = None;
        let mut chunks: usize = 1;
        let mut devices: Vec<(usize, Vec<PipelineInstruction>)> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("line {}: expected 'key = value', got '{line}'", lineno + 1)
            })?;
            let key = key.trim();
            let value = value.trim().trim_matches('"').trim();
            match key {
                "stages" => stages = Some(parse_count(key, value)?),
                "microbatches" => microbatches = Some(parse_count(key, value)?),
                "chunks" => chunks = parse_count(key, value)?,
                _ => {
                    let idx: usize = key
                        .strip_prefix("device_")
                        .and_then(|d| d.parse().ok())
                        .ok_or_else(|| {
                            format!(
                                "line {}: unknown key '{key}' \
                                 (stages|microbatches|chunks|device_<i>)",
                                lineno + 1
                            )
                        })?;
                    if devices.iter().any(|(i, _)| *i == idx) {
                        return Err(format!("line {}: duplicate device_{idx}", lineno + 1));
                    }
                    let mut stream = Vec::new();
                    for tok in value.split_whitespace() {
                        stream.push(
                            parse_token(tok)
                                .map_err(|e| format!("line {}: device_{idx}: {e}", lineno + 1))?,
                        );
                    }
                    devices.push((idx, stream));
                }
            }
        }

        let p = stages.ok_or("missing 'stages'")?;
        let m = microbatches.ok_or("missing 'microbatches'")?;
        if p == 0 || m == 0 || chunks == 0 {
            return Err("stages, microbatches and chunks must all be >= 1".into());
        }
        let mut streams = vec![None; p];
        for (idx, stream) in devices {
            let slot = streams
                .get_mut(idx)
                .ok_or_else(|| format!("device_{idx} out of range for {p} stages"))?;
            *slot = Some(stream);
        }
        let streams: Vec<Vec<PipelineInstruction>> = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.ok_or(format!("missing device_{i}")))
            .collect::<Result<_, _>>()?;
        Ok(StreamSet {
            streams,
            microbatches: m,
            chunks,
        })
    }

    /// Renders the set back to the stream-file format; `parse` of the
    /// output reproduces the set exactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("stages = {}\n", self.stages()));
        out.push_str(&format!("microbatches = {}\n", self.microbatches));
        out.push_str(&format!("chunks = {}\n", self.chunks));
        for (s, stream) in self.streams.iter().enumerate() {
            let tokens: Vec<String> = stream.iter().map(|&i| token(i)).collect();
            out.push_str(&format!("device_{s} = \"{}\"\n", tokens.join(" ")));
        }
        out
    }
}

fn parse_count(key: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("'{key}' must be a non-negative integer, got '{value}'"))
}

/// The mnemonic for one instruction (inverse of token parsing); also used
/// by findings so diagnostics read like stream files.
pub fn token(instr: PipelineInstruction) -> String {
    match instr {
        PipelineInstruction::Forward { microbatch } => format!("F{microbatch}"),
        PipelineInstruction::Backward { microbatch } => format!("B{microbatch}"),
        PipelineInstruction::ForwardChunk { chunk, microbatch } => format!("F{chunk}.{microbatch}"),
        PipelineInstruction::BackwardChunk { chunk, microbatch } => {
            format!("B{chunk}.{microbatch}")
        }
        PipelineInstruction::BackwardInput { microbatch } => format!("BI{microbatch}"),
        PipelineInstruction::BackwardWeight { microbatch } => format!("BW{microbatch}"),
        PipelineInstruction::GradSync => "sync".into(),
        PipelineInstruction::OptimizerStep => "opt".into(),
        PipelineInstruction::Bubble { kind } => match kind {
            BubbleKind::FwdBwd => "bubble:fwd-bwd".into(),
            BubbleKind::NonContiguous => "bubble:non-contiguous".into(),
            BubbleKind::FillDrain => "bubble:fill-drain".into(),
        },
    }
}

fn parse_token(tok: &str) -> Result<PipelineInstruction, String> {
    match tok {
        "sync" => return Ok(PipelineInstruction::GradSync),
        "opt" => return Ok(PipelineInstruction::OptimizerStep),
        "bubble:fwd-bwd" => {
            return Ok(PipelineInstruction::Bubble {
                kind: BubbleKind::FwdBwd,
            })
        }
        "bubble:non-contiguous" => {
            return Ok(PipelineInstruction::Bubble {
                kind: BubbleKind::NonContiguous,
            })
        }
        "bubble:fill-drain" => {
            return Ok(PipelineInstruction::Bubble {
                kind: BubbleKind::FillDrain,
            })
        }
        _ => {}
    }
    let bad = || {
        format!(
            "unknown instruction '{tok}' \
             (F<m>|B<m>|BI<m>|BW<m>|F<c>.<m>|B<c>.<m>|sync|opt|bubble:<kind>)"
        )
    };
    let num = |s: &str| -> Result<usize, String> { s.parse().map_err(|_| bad()) };
    if let Some(rest) = tok.strip_prefix("BI") {
        return Ok(PipelineInstruction::BackwardInput {
            microbatch: num(rest)?,
        });
    }
    if let Some(rest) = tok.strip_prefix("BW") {
        return Ok(PipelineInstruction::BackwardWeight {
            microbatch: num(rest)?,
        });
    }
    if let Some(rest) = tok.strip_prefix('F') {
        return match rest.split_once('.') {
            Some((c, m)) => Ok(PipelineInstruction::ForwardChunk {
                chunk: num(c)?,
                microbatch: num(m)?,
            }),
            None => Ok(PipelineInstruction::Forward {
                microbatch: num(rest)?,
            }),
        };
    }
    if let Some(rest) = tok.strip_prefix('B') {
        return match rest.split_once('.') {
            Some((c, m)) => Ok(PipelineInstruction::BackwardChunk {
                chunk: num(c)?,
                microbatch: num(m)?,
            }),
            None => Ok(PipelineInstruction::Backward {
                microbatch: num(rest)?,
            }),
        };
    }
    Err(bad())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips_every_builtin() {
        for kind in [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Interleaved { chunks: 2 },
            ScheduleKind::ZbH1,
        ] {
            let set = StreamSet::from_schedule(kind, 4, 8);
            let reparsed = StreamSet::parse(&set.render()).expect("round trip");
            assert_eq!(set, reparsed, "{kind}");
        }
    }

    #[test]
    fn parse_reads_the_documented_format() {
        let set = StreamSet::parse(
            "# comment\n\
             stages = 2\n\
             microbatches = 2\n\
             device_0 = \"F0 F1 B0 B1 sync opt\"  # trailing comment\n\
             device_1 = \"F0 B0 F1 B1\"\n",
        )
        .expect("parses");
        assert_eq!(set.stages(), 2);
        assert_eq!(set.chunks, 1);
        assert_eq!(
            set.streams[0][0],
            PipelineInstruction::Forward { microbatch: 0 }
        );
        assert_eq!(set.streams[0][4], PipelineInstruction::GradSync);
        assert_eq!(set.instruction_count(), 10);
    }

    #[test]
    fn parse_diagnoses_malformed_input() {
        for (text, needle) in [
            ("microbatches = 2\ndevice_0 = \"F0\"", "missing 'stages'"),
            ("stages = 1\ndevice_0 = \"F0\"", "missing 'microbatches'"),
            ("stages = 1\nmicrobatches = 1", "missing device_0"),
            (
                "stages = 1\nmicrobatches = 1\nbogus = 3\ndevice_0 = \"F0 B0\"",
                "unknown key 'bogus'",
            ),
            (
                "stages = 1\nmicrobatches = 1\ndevice_0 = \"F0 Q3\"",
                "unknown instruction 'Q3'",
            ),
            (
                "stages = 1\nmicrobatches = 1\ndevice_0 = \"F0\"\ndevice_0 = \"F0\"",
                "duplicate device_0",
            ),
            (
                "stages = 1\nmicrobatches = 1\ndevice_4 = \"F0\"",
                "device_4 out of range",
            ),
            (
                "stages = 0\nmicrobatches = 1\ndevice_0 = \"F0\"",
                "must all be >= 1",
            ),
        ] {
            let err = StreamSet::parse(text).expect_err(text);
            assert!(err.contains(needle), "'{err}' should mention '{needle}'");
        }
    }

    #[test]
    fn tokens_cover_every_variant() {
        for (tok, instr) in [
            ("F3", PipelineInstruction::Forward { microbatch: 3 }),
            ("B3", PipelineInstruction::Backward { microbatch: 3 }),
            (
                "F1.2",
                PipelineInstruction::ForwardChunk {
                    chunk: 1,
                    microbatch: 2,
                },
            ),
            (
                "B1.2",
                PipelineInstruction::BackwardChunk {
                    chunk: 1,
                    microbatch: 2,
                },
            ),
            ("BI4", PipelineInstruction::BackwardInput { microbatch: 4 }),
            ("BW4", PipelineInstruction::BackwardWeight { microbatch: 4 }),
            ("sync", PipelineInstruction::GradSync),
            ("opt", PipelineInstruction::OptimizerStep),
            (
                "bubble:fwd-bwd",
                PipelineInstruction::Bubble {
                    kind: BubbleKind::FwdBwd,
                },
            ),
        ] {
            assert_eq!(parse_token(tok).expect(tok), instr);
            assert_eq!(token(instr), tok);
        }
        assert!(parse_token("BIx").is_err());
        assert!(parse_token("F1.").is_err());
        assert!(parse_token("").is_err());
    }
}
