//! Deterministic JSON certificates.
//!
//! Same contract as detlint's report module: pure function of the
//! verdicts, keys in a fixed order, stable float formatting (Rust's
//! shortest-roundtrip `Display`), `\n` line endings, trailing newline —
//! so CI can regenerate the certificate grid and `cmp` it byte-for-byte
//! against the checked-in copy. Serialization is hand-rolled; the schema
//! is versioned by [`SCHEMA`].

use pipefill_pipeline::ScheduleKind;
use pipefill_sim_core::SimDuration;

use crate::stream::StreamSet;
use crate::{verify, Verdict, VerifyConfig};

/// Certificate schema version; bump on any shape change.
pub const SCHEMA: u32 = 1;

/// Uniform per-stage forward time the grid is weighted with.
pub const GRID_T_FWD: SimDuration = SimDuration::from_millis(10);
/// Uniform per-stage backward time the grid is weighted with (the r = 2
/// calibration every closed form in the paper is quoted at).
pub const GRID_T_BWD: SimDuration = SimDuration::from_millis(20);

/// The certified grid: every built-in schedule family across pipeline
/// shapes from toy to paper-scale, all within the closed forms' `m >= p`
/// regime.
pub fn grid() -> Vec<(ScheduleKind, usize, usize)> {
    let shapes = [(2, 4), (2, 8), (4, 8), (4, 16), (8, 16)];
    let kinds = [
        ScheduleKind::GPipe,
        ScheduleKind::OneFOneB,
        ScheduleKind::ZbH1,
        ScheduleKind::Interleaved { chunks: 2 },
        ScheduleKind::Interleaved { chunks: 4 },
    ];
    let mut grid = Vec::with_capacity(kinds.len() * shapes.len());
    for kind in kinds {
        for (p, m) in shapes {
            grid.push((kind, p, m));
        }
    }
    grid
}

/// A rendered certificate grid plus whether every entry certified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridReport {
    /// The full JSON document.
    pub json: String,
    /// True iff every grid entry certified.
    pub all_certified: bool,
}

/// Verifies the whole [`grid`] and renders the certificate document.
pub fn certify_grid() -> GridReport {
    let mut entries = Vec::new();
    let mut certified = 0usize;
    for (kind, p, m) in grid() {
        let set = StreamSet::from_schedule(kind, p, m);
        let cfg = VerifyConfig::new(GRID_T_FWD, GRID_T_BWD).with_schedule(kind);
        let verdict = verify(&set, &cfg);
        if verdict.certified() {
            certified += 1;
        }
        entries.push(format!(
            "    {{\n{}\n    }}",
            render_fields(&format!("{kind}"), &set, &verdict, "      ").join(",\n")
        ));
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {SCHEMA},\n"));
    out.push_str("  \"tool\": \"schedcheck\",\n");
    out.push_str(&format!("  \"t_fwd_nanos\": {},\n", GRID_T_FWD.as_nanos()));
    out.push_str(&format!("  \"t_bwd_nanos\": {},\n", GRID_T_BWD.as_nanos()));
    out.push_str(&format!("  \"entries\": {},\n", entries.len()));
    out.push_str(&format!("  \"certified\": {certified},\n"));
    out.push_str("  \"grid\": [\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    GridReport {
        all_certified: certified == entries.len(),
        json: out,
    }
}

/// Renders one verdict as a standalone JSON document (the CLI's
/// `verify-schedule --format json` output).
pub fn verdict_json(target: &str, set: &StreamSet, verdict: &Verdict) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {SCHEMA},\n"));
    out.push_str("  \"tool\": \"schedcheck\",\n");
    out.push_str(&render_fields(target, set, verdict, "  ").join(",\n"));
    out.push_str("\n}\n");
    out
}

/// Renders a verdict's fields as `"key": value` lines at `pad`
/// indentation, in schema order.
fn render_fields(target: &str, set: &StreamSet, verdict: &Verdict, pad: &str) -> Vec<String> {
    let field = |k: &str, v: String| format!("{pad}\"{k}\": {v}");
    let mut fields = vec![
        field("target", json_str(target)),
        field("stages", set.stages().to_string()),
        field("microbatches", set.microbatches.to_string()),
        field("chunks", set.chunks.to_string()),
        field("certified", verdict.certified().to_string()),
    ];
    if let Some(stats) = &verdict.stats {
        fields.push(field("instructions", stats.instructions.to_string()));
        fields.push(field(
            "dependency_edges",
            stats.dependency_edges.to_string(),
        ));
        let peaks: Vec<String> = stats.memory_peaks.iter().map(u64::to_string).collect();
        fields.push(field("memory_peaks", format!("[{}]", peaks.join(", "))));
        fields.push(field("period_nanos", stats.period.as_nanos().to_string()));
        fields.push(field(
            "bubble_fraction_static",
            json_f64(stats.bubble_fraction_static),
        ));
        if let Some(cf) = stats.closed_form {
            fields.push(field("bubble_fraction_closed_form", json_f64(cf.expected)));
            fields.push(field(
                "closed_form_relation",
                json_str(cf.relation.as_str()),
            ));
            fields.push(field("closed_form_holds", cf.holds.to_string()));
        }
    }
    if verdict.findings.is_empty() {
        fields.push(field("findings", "[]".to_string()));
    } else {
        let rendered: Vec<String> = verdict
            .findings
            .iter()
            .map(|f| {
                let device = match f.device {
                    Some(d) => d.to_string(),
                    None => "null".to_string(),
                };
                format!(
                    "{pad}  {{\"property\": {}, \"device\": {device}, \"message\": {}}}",
                    json_str(f.property.as_str()),
                    json_str(&f.message)
                )
            })
            .collect();
        fields.push(format!(
            "{pad}\"findings\": [\n{}\n{pad}]",
            rendered.join(",\n")
        ));
    }
    fields
}

/// Floats in certificates: Rust's shortest round-trip `Display`, which is
/// deterministic across platforms; integral values gain a `.0` so the
/// JSON stays a float.
fn json_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_certifies_end_to_end() {
        let report = certify_grid();
        assert!(report.all_certified, "{}", report.json);
        assert!(report.json.starts_with("{\n  \"schema\": 1,\n"));
        assert!(report.json.ends_with("]\n}\n"));
        assert_eq!(report.json.matches("\"certified\": true").count(), 25);
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(certify_grid(), certify_grid());
    }

    #[test]
    fn verdict_json_is_valid_shape_for_failures_too() {
        let set = StreamSet::parse(
            "stages = 2\nmicrobatches = 2\n\
             device_0 = \"F0 B0 F1 B1\"\n\
             device_1 = \"F1 F0 B0 B1\"\n",
        )
        .expect("parses");
        let verdict = verify(&set, &VerifyConfig::new(GRID_T_FWD, GRID_T_BWD));
        let json = verdict_json("wedge.toml", &set, &verdict);
        assert!(json.contains("\"certified\": false"));
        assert!(json.contains("\"property\": \"deadlock\""));
        assert!(json.ends_with("\n}\n"));
    }

    #[test]
    fn float_formatting_keeps_numbers_json_floats() {
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
