//! The layer IR: one node of a model's computational graph.

use pipefill_device::Bytes;
use serde::{Deserialize, Serialize};

use crate::FP16_BYTES;

/// Architectural role of a layer. Downstream code mostly treats layers
/// uniformly through their cost numbers; the kind is kept for reporting
/// and for technique applicability rules (e.g. activation checkpointing
/// boundaries fall on block layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Token/patch embedding lookup.
    Embedding,
    /// A full transformer block (attention + MLP).
    TransformerBlock,
    /// A windowed-attention transformer block (Swin); the paper notes its
    /// "specialized attention operator is not well-optimized" (§6.2).
    WindowAttentionBlock,
    /// Convolutional stage (possibly several fused convs).
    ConvStage,
    /// Language-model or classification head.
    Head,
}

impl LayerKind {
    /// True for layers that form checkpointing boundaries (whole blocks
    /// whose interior activations can be recomputed).
    pub fn is_block(self) -> bool {
        matches!(
            self,
            LayerKind::TransformerBlock | LayerKind::WindowAttentionBlock | LayerKind::ConvStage
        )
    }
}

/// One node of a model's (linearized) computational graph.
///
/// All quantities are *per sample* where batch-dependent; the executor
/// scales them by its chosen batch size. Forward FLOPs are stored;
/// backward FLOPs follow the standard 2× rule (one matmul each for
/// activation gradients and weight gradients versus one in forward).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name, e.g. `"block12"`.
    pub name: String,
    /// Architectural role.
    pub kind: LayerKind,
    /// Trainable parameters in this layer.
    pub params: u64,
    /// Forward-pass floating-point operations per sample.
    pub fwd_flops_per_sample: f64,
    /// Activation bytes this layer produces per sample (fp16), which must
    /// be kept for the backward pass when training without checkpointing.
    pub activation_bytes_per_sample: Bytes,
    /// Boundary (output) activation bytes per sample — what must still be
    /// stored when the layer's interior is recomputed under activation
    /// checkpointing.
    pub boundary_bytes_per_sample: Bytes,
}

impl Layer {
    /// Forward FLOPs at a given batch size.
    pub fn fwd_flops(&self, batch: usize) -> f64 {
        self.fwd_flops_per_sample * batch as f64
    }

    /// Backward FLOPs at a given batch size (2× forward).
    pub fn bwd_flops(&self, batch: usize) -> f64 {
        2.0 * self.fwd_flops(batch)
    }

    /// Full activation footprint at a batch size.
    pub fn activation_bytes(&self, batch: usize) -> Bytes {
        self.activation_bytes_per_sample * batch as u64
    }

    /// Boundary activation footprint at a batch size.
    pub fn boundary_bytes(&self, batch: usize) -> Bytes {
        self.boundary_bytes_per_sample * batch as u64
    }

    /// Parameter bytes in fp16.
    pub fn param_bytes(&self) -> Bytes {
        Bytes::new(self.params * FP16_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Layer {
        Layer {
            name: "block0".into(),
            kind: LayerKind::TransformerBlock,
            params: 1_000_000,
            fwd_flops_per_sample: 2.0e9,
            activation_bytes_per_sample: Bytes::from_mib(8),
            boundary_bytes_per_sample: Bytes::from_mib(1),
        }
    }

    #[test]
    fn flops_scale_with_batch() {
        let l = layer();
        assert_eq!(l.fwd_flops(4), 8.0e9);
        assert_eq!(l.bwd_flops(4), 16.0e9);
    }

    #[test]
    fn memory_scales_with_batch() {
        let l = layer();
        assert_eq!(l.activation_bytes(4), Bytes::from_mib(32));
        assert_eq!(l.boundary_bytes(4), Bytes::from_mib(4));
        assert_eq!(l.param_bytes(), Bytes::new(2_000_000));
    }

    #[test]
    fn block_kinds_are_checkpointable() {
        assert!(LayerKind::TransformerBlock.is_block());
        assert!(LayerKind::WindowAttentionBlock.is_block());
        assert!(LayerKind::ConvStage.is_block());
        assert!(!LayerKind::Embedding.is_block());
        assert!(!LayerKind::Head.is_block());
    }
}
