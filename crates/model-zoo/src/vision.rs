//! Builders for the vision fill jobs of Table 1: Swin-large (hierarchical
//! windowed-attention transformer) and EfficientNet (CNN).
//!
//! §6.2 of the paper singles both out as poor bubble citizens: Swin's
//! "memory-overhead of the larger layers limit the batch size … and the
//! specialized attention operator is not well-optimized", while
//! EfficientNet "has particularly large activation sizes" so "the batch
//! sizes that fit in the bubble free-memory are not large enough to reach
//! high GPU utilization". Those two properties — activation-heavy layers
//! and low-saturation efficiency curves — are encoded directly here.

use pipefill_device::Bytes;

use crate::graph::{EfficiencyCurve, ModelFamily, ModelGraph};
use crate::layer::{Layer, LayerKind};

/// Swin kernels: the shifted-window attention operator achieves a low
/// fraction of peak even at saturation ("not well-optimized in our
/// implementation", §6.2).
pub const SWIN_EFFICIENCY: EfficiencyCurve = EfficiencyCurve {
    max: 0.20,
    half_batch: 12.0,
};

/// EfficientNet kernels: depthwise-separable convolutions utilize tensor
/// cores poorly and need large batches that bubble memory cannot hold.
pub const EFFICIENTNET_EFFICIENCY: EfficiencyCurve = EfficiencyCurve {
    max: 0.22,
    half_batch: 24.0,
};

/// Swin-large per Table 1 (779M parameters, CV, medium).
///
/// A four-stage hierarchical windowed transformer at 224×224 with patch
/// size 4 and window 7; stage widths are doubled relative to the public
/// 197M Swin-L checkpoint so the total matches the paper's reported 779M.
pub fn swin_large() -> ModelGraph {
    let img = 224usize;
    let patch = 4usize;
    let window_tokens = 49f64; // 7×7 windows
    let dims = [384usize, 768, 1536, 3072];
    let depths = [2usize, 2, 18, 2];

    let mut layers = Vec::new();
    let side0 = img / patch; // 56
    let embed_params = (patch * patch * 3 * dims[0]) as u64;
    let tokens0 = (side0 * side0) as f64;
    layers.push(Layer {
        name: "patch-embed".to_owned(),
        kind: LayerKind::Embedding,
        params: embed_params,
        fwd_flops_per_sample: 2.0 * embed_params as f64 * tokens0,
        activation_bytes_per_sample: Bytes::new((2.0 * tokens0 * dims[0] as f64) as u64),
        boundary_bytes_per_sample: Bytes::new((2.0 * tokens0 * dims[0] as f64) as u64),
    });

    for (stage, (&d, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        let side = side0 >> stage; // 56, 28, 14, 7
        let tokens = (side * side) as f64;
        let df = d as f64;
        let block_params = 12 * (d as u64) * (d as u64);
        // Dense GEMMs plus windowed attention (each token attends within
        // its 49-token window).
        let block_flops = 2.0 * block_params as f64 * tokens + 4.0 * tokens * window_tokens * df;
        let block_act = Bytes::new((34.0 * tokens * df + 4.0 * tokens * window_tokens) as u64);
        let boundary = Bytes::new((2.0 * tokens * df) as u64);
        for b in 0..depth {
            layers.push(Layer {
                name: format!("stage{stage}-block{b}"),
                kind: LayerKind::WindowAttentionBlock,
                params: block_params,
                fwd_flops_per_sample: block_flops,
                activation_bytes_per_sample: block_act,
                boundary_bytes_per_sample: boundary,
            });
        }
        // Patch merging between stages: linear 4d -> 2d.
        if stage + 1 < dims.len() {
            let merge_params = (8 * d * d) as u64;
            let out_tokens = tokens / 4.0;
            layers.push(Layer {
                name: format!("merge{stage}"),
                kind: LayerKind::Head, // a plain projection; not checkpointable
                params: merge_params,
                fwd_flops_per_sample: 2.0 * merge_params as f64 * out_tokens,
                activation_bytes_per_sample: Bytes::new((2.0 * out_tokens * 2.0 * df) as u64),
                boundary_bytes_per_sample: Bytes::new((2.0 * out_tokens * 2.0 * df) as u64),
            });
        }
    }

    let classes = 1000u64;
    let head_params = dims[3] as u64 * classes;
    layers.push(Layer {
        name: "head".to_owned(),
        kind: LayerKind::Head,
        params: head_params,
        fwd_flops_per_sample: 2.0 * head_params as f64,
        activation_bytes_per_sample: Bytes::new(2 * classes),
        boundary_bytes_per_sample: Bytes::new(2 * classes),
    });

    ModelGraph {
        name: "Swin-large".to_owned(),
        family: ModelFamily::HierarchicalTransformer,
        layers,
        seq_len: None,
        efficiency: SWIN_EFFICIENCY,
    }
}

/// EfficientNet per Table 1 (117M parameters, CV, small) at 600×600
/// input (B7-scale resolution).
///
/// Modeled as a stem plus six convolutional stages. The `3×` factor on
/// activation bytes accounts for the pre-activation, normalization and
/// swish intermediates a training step must retain — this is what makes
/// the model activation-bound in 4.5 GB bubbles despite its small
/// parameter count.
pub fn efficientnet_117m() -> ModelGraph {
    // (spatial, c_in, c_out, repeats) — repeats chosen so the total lands
    // on Table 1's 117M.
    let stages: [(usize, usize, usize, usize); 5] = [
        (150, 64, 128, 3),
        (75, 128, 256, 4),
        (38, 256, 512, 6),
        (19, 512, 1024, 5),
        (10, 1024, 2048, 2),
    ];
    const K: u64 = 3; // kernel size
    const ACT_MULT: f64 = 3.0;

    let mut layers = Vec::new();
    // Stem: 3 -> 64 at 300×300.
    let stem_params = K * K * 3 * 64;
    let stem_spatial = 300f64;
    layers.push(Layer {
        name: "stem".to_owned(),
        kind: LayerKind::ConvStage,
        params: stem_params,
        fwd_flops_per_sample: 2.0 * stem_params as f64 * stem_spatial * stem_spatial,
        activation_bytes_per_sample: Bytes::new(
            (64.0 * stem_spatial * stem_spatial * 2.0 * ACT_MULT) as u64,
        ),
        boundary_bytes_per_sample: Bytes::new((64.0 * stem_spatial * stem_spatial * 2.0) as u64),
    });

    for (stage, &(spatial, c_in, c_out, repeats)) in stages.iter().enumerate() {
        for r in 0..repeats {
            let cin = if r == 0 { c_in } else { c_out };
            let params = K * K * cin as u64 * c_out as u64;
            let sp = spatial as f64;
            layers.push(Layer {
                name: format!("conv{stage}-{r}"),
                kind: LayerKind::ConvStage,
                params,
                fwd_flops_per_sample: 2.0 * params as f64 * sp * sp,
                activation_bytes_per_sample: Bytes::new(
                    (c_out as f64 * sp * sp * 2.0 * ACT_MULT) as u64,
                ),
                boundary_bytes_per_sample: Bytes::new((c_out as f64 * sp * sp * 2.0) as u64),
            });
        }
    }

    let classes = 1000u64;
    let head_params = 2048 * classes;
    layers.push(Layer {
        name: "head".to_owned(),
        kind: LayerKind::Head,
        params: head_params,
        fwd_flops_per_sample: 2.0 * head_params as f64,
        activation_bytes_per_sample: Bytes::new(2 * classes),
        boundary_bytes_per_sample: Bytes::new(2 * classes),
    });

    ModelGraph {
        name: "EfficientNet".to_owned(),
        family: ModelFamily::Cnn,
        layers,
        seq_len: None,
        efficiency: EFFICIENTNET_EFFICIENCY,
    }
}

/// ViT kernels: plain transformer blocks on 196 patch tokens; needs
/// moderate batches to saturate.
pub const VIT_EFFICIENCY: EfficiencyCurve = EfficiencyCurve {
    max: 0.38,
    half_batch: 24.0,
};

/// ResNet kernels: classic dense convolutions, better tensor-core
/// utilization than EfficientNet's depthwise blocks.
pub const RESNET_EFFICIENCY: EfficiencyCurve = EfficiencyCurve {
    max: 0.30,
    half_batch: 20.0,
};

/// ViT-Large/16 at 224×224 (extension beyond Table 1): h=1024, L=24,
/// 196 patch tokens + class token → ≈305M parameters. Built on the
/// transformer machinery since a ViT block is a standard block.
pub fn vit_large() -> ModelGraph {
    let mut graph = crate::transformer::TransformerConfig {
        name: "ViT-Large".to_owned(),
        hidden: 1024,
        num_layers: 24,
        vocab: 1000, // classification head over ImageNet classes
        seq_len: 197,
        tied_head: false,
        efficiency: VIT_EFFICIENCY,
    }
    .build();
    graph.family = ModelFamily::Transformer;
    graph
}

/// ResNet-50-like CNN at 224×224 (extension beyond Table 1): bottleneck
/// stages approximated by 1×1-cost convolutions, ≈24M parameters and
/// ≈6 GFLOPs per sample.
pub fn resnet50() -> ModelGraph {
    // (spatial, c_in, c_out, repeats), 1×1-equivalent kernels.
    let stages: [(usize, usize, usize, usize); 5] = [
        (56, 64, 256, 3),
        (28, 256, 512, 4),
        (14, 512, 1024, 6),
        (7, 1024, 2048, 3),
        (7, 2048, 2048, 1),
    ];
    const ACT_MULT: f64 = 3.0;
    let mut layers = Vec::new();
    let stem_params = 49u64 * 3 * 64; // 7×7 stem
    let stem_spatial = 112f64;
    layers.push(Layer {
        name: "stem".to_owned(),
        kind: LayerKind::ConvStage,
        params: stem_params,
        fwd_flops_per_sample: 2.0 * stem_params as f64 * stem_spatial * stem_spatial,
        activation_bytes_per_sample: Bytes::new(
            (64.0 * stem_spatial * stem_spatial * 2.0 * ACT_MULT) as u64,
        ),
        boundary_bytes_per_sample: Bytes::new((64.0 * stem_spatial * stem_spatial * 2.0) as u64),
    });
    for (stage, &(spatial, c_in, c_out, repeats)) in stages.iter().enumerate() {
        for r in 0..repeats {
            let cin = if r == 0 { c_in } else { c_out };
            let params = cin as u64 * c_out as u64; // 1×1-equivalent bottleneck cost
            let sp = spatial as f64;
            layers.push(Layer {
                name: format!("res{stage}-{r}"),
                kind: LayerKind::ConvStage,
                params,
                fwd_flops_per_sample: 2.0 * params as f64 * sp * sp,
                activation_bytes_per_sample: Bytes::new(
                    (c_out as f64 * sp * sp * 2.0 * ACT_MULT) as u64,
                ),
                boundary_bytes_per_sample: Bytes::new((c_out as f64 * sp * sp * 2.0) as u64),
            });
        }
    }
    let head_params = 2048u64 * 1000;
    layers.push(Layer {
        name: "head".to_owned(),
        kind: LayerKind::Head,
        params: head_params,
        fwd_flops_per_sample: 2.0 * head_params as f64,
        activation_bytes_per_sample: Bytes::new(2000),
        boundary_bytes_per_sample: Bytes::new(2000),
    });
    ModelGraph {
        name: "ResNet-50".to_owned(),
        family: ModelFamily::Cnn,
        layers,
        seq_len: None,
        efficiency: RESNET_EFFICIENCY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swin_matches_table1_params() {
        let p = swin_large().total_params() as f64 / 1e6;
        assert!((p - 779.0).abs() < 40.0, "Swin got {p}M, Table 1 says 779M");
    }

    #[test]
    fn efficientnet_matches_table1_params() {
        let p = efficientnet_117m().total_params() as f64 / 1e6;
        assert!(
            (p - 117.0).abs() < 8.0,
            "EffNet got {p}M, Table 1 says 117M"
        );
    }

    #[test]
    fn efficientnet_is_activation_heavy() {
        // §6.2: small parameter count but "particularly large activation
        // sizes" — activations for even a batch of 8 dwarf the weights.
        let m = efficientnet_117m();
        let act = m.activation_bytes(8);
        let params = m.param_bytes();
        assert!(
            act.as_f64() > 4.0 * params.as_f64(),
            "act={act} params={params}"
        );
    }

    #[test]
    fn swin_large_layers_dominate_memory() {
        // The big stage-3/4 blocks limit the feasible batch size.
        let m = swin_large();
        let max_layer = m.max_layer_activation(1);
        assert!(max_layer > Bytes::from_mib(3), "max layer act {max_layer}");
    }

    #[test]
    fn vision_models_have_low_saturation_efficiency() {
        let swin = swin_large();
        let eff = efficientnet_117m();
        // Even at batch 64 both stay under 25% of peak — the §6.2
        // "perform particularly poorly" pair.
        assert!(swin.efficiency.at(64) < 0.25);
        assert!(eff.efficiency.at(64) < 0.25);
    }

    #[test]
    fn stage_structure_is_hierarchical() {
        let m = swin_large();
        // 1 embed + (2+2+18+2) blocks + 3 merges + 1 head = 29 layers.
        assert_eq!(m.layers.len(), 29);
        assert_eq!(m.family, ModelFamily::HierarchicalTransformer);
        assert_eq!(efficientnet_117m().family, ModelFamily::Cnn);
    }

    #[test]
    fn vit_large_parameter_count() {
        let p = vit_large().total_params() as f64 / 1e6;
        assert!((p - 305.0).abs() < 15.0, "ViT-L got {p}M");
    }

    #[test]
    fn resnet50_parameter_count_and_flops() {
        let m = resnet50();
        let p = m.total_params() as f64 / 1e6;
        assert!((18.0..32.0).contains(&p), "ResNet-50 got {p}M");
        let gflops = m.fwd_flops(1) / 1e9;
        assert!(
            (3.0..10.0).contains(&gflops),
            "ResNet-50 got {gflops} GFLOPs/sample"
        );
        assert_eq!(m.family, ModelFamily::Cnn);
    }

    #[test]
    fn resnet_beats_efficientnet_efficiency() {
        // Dense convolutions utilize tensor cores better than depthwise
        // blocks at any batch size.
        for b in [4usize, 16, 64] {
            assert!(resnet50().efficiency.at(b) > efficientnet_117m().efficiency.at(b));
        }
    }
}
