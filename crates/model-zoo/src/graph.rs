//! The model graph: an ordered sequence of layers plus the model-level
//! efficiency curve, with all the memory/FLOPs accounting the engine,
//! executor and scheduler consume.

use pipefill_device::{Bytes, DeviceSpec};
use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::{ADAM_STATE_BYTES_PER_PARAM, FP16_BYTES, GRAD_BYTES_PER_PARAM};

/// Broad architecture family, which determines how a model behaves under
/// bubble constraints (§6.2's fill-job characterization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Dense decoder/encoder transformer.
    Transformer,
    /// Hierarchical windowed-attention transformer (Swin).
    HierarchicalTransformer,
    /// Convolutional network (EfficientNet) — "particularly large
    /// activation sizes" relative to its parameter count (§6.2).
    Cnn,
}

/// How efficiently a model converts peak device FLOPS into useful work as
/// a function of batch size: a saturating curve
/// `eff(b) = max · b / (b + half_batch)`.
///
/// This captures the paper's two key observations (§6.2): inference jobs
/// reach higher utilization than training because low memory needs allow
/// bigger batches, and models like EfficientNet/Swin stay inefficient
/// because the batch sizes that fit in bubble free-memory are too small to
/// saturate the device (plus poorly-optimized specialized operators,
/// folded into `max`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyCurve {
    /// Asymptotic fraction of peak FLOPS at infinite batch, in `(0, 1]`.
    pub max: f64,
    /// Batch size at which half of `max` is reached.
    pub half_batch: f64,
}

impl EfficiencyCurve {
    /// Creates a curve.
    ///
    /// # Panics
    ///
    /// Panics if `max` is outside `(0, 1]` or `half_batch` is negative.
    pub fn new(max: f64, half_batch: f64) -> Self {
        assert!(
            max > 0.0 && max <= 1.0,
            "efficiency max must be in (0, 1], got {max}"
        );
        assert!(
            half_batch >= 0.0 && half_batch.is_finite(),
            "half_batch must be non-negative, got {half_batch}"
        );
        EfficiencyCurve { max, half_batch }
    }

    /// Achieved fraction of peak FLOPS at a batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn at(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch size must be positive");
        let b = batch as f64;
        self.max * b / (b + self.half_batch)
    }
}

/// A model: named, ordered layers plus family and efficiency metadata.
///
/// # Example
///
/// ```
/// use pipefill_model_zoo::gpt_40b;
///
/// let llm = gpt_40b();
/// assert!((llm.total_params() as f64 / 1e9 - 40.0).abs() < 2.0);
/// // Forward+backward ≈ 6·P FLOPs per token for a large transformer.
/// let per_token = llm.train_step_flops(1) / 2048.0;
/// assert!(per_token > 5.5 * llm.total_params() as f64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    /// Model name as reported in tables, e.g. `"Bert-base"`.
    pub name: String,
    /// Architecture family.
    pub family: ModelFamily,
    /// Ordered layers (the linearization order used by the Executor).
    pub layers: Vec<Layer>,
    /// Tokens per sample for NLP models (`None` for vision models); used
    /// only for reporting throughput in familiar units.
    pub seq_len: Option<usize>,
    /// Device-efficiency curve for this model's kernels.
    pub efficiency: EfficiencyCurve,
}

impl ModelGraph {
    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Forward FLOPs for one batch.
    pub fn fwd_flops(&self, batch: usize) -> f64 {
        self.layers.iter().map(|l| l.fwd_flops(batch)).sum()
    }

    /// Backward FLOPs for one batch (2× forward).
    pub fn bwd_flops(&self, batch: usize) -> f64 {
        2.0 * self.fwd_flops(batch)
    }

    /// FLOPs for one full training step (forward + backward) of one batch.
    pub fn train_step_flops(&self, batch: usize) -> f64 {
        self.fwd_flops(batch) + self.bwd_flops(batch)
    }

    /// Parameter bytes (fp16).
    pub fn param_bytes(&self) -> Bytes {
        Bytes::new(self.total_params() * FP16_BYTES)
    }

    /// Gradient bytes (fp16), present only while training.
    pub fn gradient_bytes(&self) -> Bytes {
        Bytes::new(self.total_params() * GRAD_BYTES_PER_PARAM)
    }

    /// Mixed-precision Adam optimizer-state bytes (fp32 master + two
    /// moments) — the state the PipeFill engine can offload to host
    /// memory to widen bubbles.
    pub fn optimizer_state_bytes(&self) -> Bytes {
        Bytes::new(self.total_params() * ADAM_STATE_BYTES_PER_PARAM)
    }

    /// Sum of all layer activations for one batch — what training must
    /// hold without checkpointing.
    pub fn activation_bytes(&self, batch: usize) -> Bytes {
        self.layers.iter().map(|l| l.activation_bytes(batch)).sum()
    }

    /// Activation bytes under activation checkpointing: boundary
    /// activations of every layer plus the largest single layer's interior
    /// (recomputed one layer at a time).
    pub fn checkpointed_activation_bytes(&self, batch: usize) -> Bytes {
        let boundaries: Bytes = self.layers.iter().map(|l| l.boundary_bytes(batch)).sum();
        boundaries + self.max_layer_activation(batch)
    }

    /// The largest single-layer activation footprint at a batch size —
    /// the inference working set is about two of these (producer +
    /// consumer).
    pub fn max_layer_activation(&self, batch: usize) -> Bytes {
        self.layers
            .iter()
            .map(|l| l.activation_bytes(batch))
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Largest single-layer parameter footprint (fp16) — the resident set
    /// needed when parameters are streamed layer-by-layer from host
    /// memory (ZeRO-Infinity-style execution).
    pub fn max_layer_param_bytes(&self) -> Bytes {
        self.layers
            .iter()
            .map(|l| l.param_bytes())
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Time for a forward pass of one batch on `device` at this model's
    /// batch-dependent efficiency.
    pub fn fwd_time(&self, device: &DeviceSpec, batch: usize) -> SimDuration {
        device.compute_time(self.fwd_flops(batch), self.efficiency.at(batch))
    }

    /// Time for a backward pass of one batch on `device`.
    pub fn bwd_time(&self, device: &DeviceSpec, batch: usize) -> SimDuration {
        device.compute_time(self.bwd_flops(batch), self.efficiency.at(batch))
    }

    /// Achieved TFLOPS on `device` at a batch size (the quantity Fig. 7a
    /// reports per fill-job type).
    pub fn achieved_tflops(&self, device: &DeviceSpec, batch: usize) -> f64 {
        device.peak_tflops * self.efficiency.at(batch)
    }

    /// Returns a copy with every layer's compute and memory scaled by
    /// `factor` (used to emulate width-scaling in sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is non-positive or non-finite.
    pub fn scaled(&self, factor: f64) -> ModelGraph {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive, got {factor}"
        );
        let layers = self
            .layers
            .iter()
            .map(|l| Layer {
                name: l.name.clone(),
                kind: l.kind,
                params: (l.params as f64 * factor).round() as u64,
                fwd_flops_per_sample: l.fwd_flops_per_sample * factor,
                activation_bytes_per_sample: l.activation_bytes_per_sample.mul_f64(factor),
                boundary_bytes_per_sample: l.boundary_bytes_per_sample.mul_f64(factor),
            })
            .collect();
        ModelGraph {
            name: format!("{}@x{factor:.2}", self.name),
            family: self.family,
            layers,
            seq_len: self.seq_len,
            efficiency: self.efficiency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    fn toy_model() -> ModelGraph {
        let block = |i: usize| Layer {
            name: format!("block{i}"),
            kind: LayerKind::TransformerBlock,
            params: 1_000_000,
            fwd_flops_per_sample: 1.0e9,
            activation_bytes_per_sample: Bytes::from_mib(4),
            boundary_bytes_per_sample: Bytes::from_mib(1),
        };
        ModelGraph {
            name: "toy".into(),
            family: ModelFamily::Transformer,
            layers: (0..4).map(block).collect(),
            seq_len: Some(128),
            efficiency: EfficiencyCurve::new(0.5, 2.0),
        }
    }

    #[test]
    fn accounting_sums_layers() {
        let m = toy_model();
        assert_eq!(m.total_params(), 4_000_000);
        assert_eq!(m.fwd_flops(2), 8.0e9);
        assert_eq!(m.bwd_flops(2), 16.0e9);
        assert_eq!(m.train_step_flops(2), 24.0e9);
        assert_eq!(m.param_bytes(), Bytes::new(8_000_000));
        assert_eq!(m.gradient_bytes(), Bytes::new(8_000_000));
        assert_eq!(m.optimizer_state_bytes(), Bytes::new(48_000_000));
        assert_eq!(m.activation_bytes(2), Bytes::from_mib(32));
        assert_eq!(m.max_layer_activation(2), Bytes::from_mib(8));
    }

    #[test]
    fn checkpointing_shrinks_activations() {
        let m = toy_model();
        let full = m.activation_bytes(8);
        let ckpt = m.checkpointed_activation_bytes(8);
        assert!(ckpt < full);
        // boundaries (4 × 1 MiB × 8) + max interior (4 MiB × 8)
        assert_eq!(ckpt, Bytes::from_mib(32 + 32));
    }

    #[test]
    fn efficiency_curve_saturates() {
        let c = EfficiencyCurve::new(0.4, 8.0);
        assert!(c.at(1) < c.at(8));
        assert!(c.at(8) < c.at(64));
        assert!((c.at(8) - 0.2).abs() < 1e-12); // half of max at half_batch
        assert!(c.at(10_000) < 0.4 && c.at(10_000) > 0.39);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _ = EfficiencyCurve::new(0.4, 8.0).at(0);
    }

    #[test]
    fn timing_uses_curve() {
        let m = toy_model();
        let dev = DeviceSpec::v100();
        // At batch 2, eff = 0.5 * 2/4 = 0.25 -> 31.25 TFLOPS.
        let t = m.fwd_time(&dev, 2);
        let expected = 8.0e9 / (125.0e12 * 0.25);
        assert!((t.as_secs_f64() - expected).abs() < 1e-12);
        assert!((m.achieved_tflops(&dev, 2) - 31.25).abs() < 1e-9);
    }

    #[test]
    fn scaled_model_scales_everything_linearly() {
        let m = toy_model();
        let s = m.scaled(2.0);
        assert_eq!(s.total_params(), 2 * m.total_params());
        assert_eq!(s.fwd_flops(1), 2.0 * m.fwd_flops(1));
        assert_eq!(s.activation_bytes(1), Bytes::from_mib(32));
        assert_eq!(s.layers.len(), m.layers.len());
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn scaled_rejects_zero() {
        let _ = toy_model().scaled(0.0);
    }
}
