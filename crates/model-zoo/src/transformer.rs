//! Builders for the dense-transformer models: the GPT-like LLM main jobs
//! and the BERT / XLM-Roberta fill jobs of Table 1.
//!
//! All cost formulas are the standard analytical ones:
//!
//! * parameters per block ≈ `12·h²` (4h² attention + 8h² MLP);
//! * forward FLOPs per block per sample ≈ `2·12·h²·s + 4·s²·h`
//!   (GEMMs count 2 FLOPs per multiply-add; the `4s²h` term is the
//!   attention-score and attention-value matmuls);
//! * activation bytes per block per sample ≈ `34·s·h + 4·s²` in fp16
//!   (the Megatron activation-memory estimate with a modest head count);
//! * block boundary (residual stream) bytes per sample = `2·s·h`.

use pipefill_device::Bytes;

use crate::graph::{EfficiencyCurve, ModelFamily, ModelGraph};
use crate::layer::{Layer, LayerKind};

/// Shape of a dense transformer, from which a [`ModelGraph`] is built.
///
/// # Example
///
/// ```
/// use pipefill_model_zoo::TransformerConfig;
///
/// let tiny = TransformerConfig::decoder("tiny", 256, 4, 1000, 128).build();
/// assert_eq!(tiny.layers.len(), 4 + 2); // embedding + blocks + head
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerConfig {
    /// Model name.
    pub name: String,
    /// Hidden (residual-stream) width `h`.
    pub hidden: usize,
    /// Number of transformer blocks `L`.
    pub num_layers: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length `s` used by this workload.
    pub seq_len: usize,
    /// Whether the output head's projection is tied to the embedding (no
    /// extra parameters, but full GEMM cost).
    pub tied_head: bool,
    /// Device-efficiency curve for this model's kernels.
    pub efficiency: EfficiencyCurve,
}

impl TransformerConfig {
    /// A GPT-style decoder configuration with a tied LM head.
    pub fn decoder(
        name: &str,
        hidden: usize,
        num_layers: usize,
        vocab: usize,
        seq_len: usize,
    ) -> Self {
        TransformerConfig {
            name: name.to_owned(),
            hidden,
            num_layers,
            vocab,
            seq_len,
            tied_head: true,
            efficiency: LLM_EFFICIENCY,
        }
    }

    /// Replaces the efficiency curve.
    pub fn with_efficiency(mut self, efficiency: EfficiencyCurve) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Parameters of one transformer block.
    pub fn block_params(&self) -> u64 {
        12 * (self.hidden as u64) * (self.hidden as u64)
    }

    /// Builds the layer graph: embedding, `L` blocks, head.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn build(&self) -> ModelGraph {
        assert!(
            self.hidden > 0 && self.num_layers > 0 && self.vocab > 0 && self.seq_len > 0,
            "transformer dimensions must be positive: {self:?}"
        );
        let h = self.hidden as f64;
        let s = self.seq_len as f64;
        let mut layers = Vec::with_capacity(self.num_layers + 2);

        let embed_params = (self.vocab * self.hidden) as u64;
        layers.push(Layer {
            name: "embedding".to_owned(),
            kind: LayerKind::Embedding,
            params: embed_params,
            // A lookup: bandwidth-bound, negligible FLOPs.
            fwd_flops_per_sample: 2.0 * s * h,
            activation_bytes_per_sample: Bytes::new((2.0 * s * h) as u64),
            boundary_bytes_per_sample: Bytes::new((2.0 * s * h) as u64),
        });

        let block_flops = 2.0 * 12.0 * h * h * s + 4.0 * s * s * h;
        let block_act = Bytes::new((34.0 * s * h + 4.0 * s * s) as u64);
        let boundary = Bytes::new((2.0 * s * h) as u64);
        for i in 0..self.num_layers {
            layers.push(Layer {
                name: format!("block{i}"),
                kind: LayerKind::TransformerBlock,
                params: self.block_params(),
                fwd_flops_per_sample: block_flops,
                activation_bytes_per_sample: block_act,
                boundary_bytes_per_sample: boundary,
            });
        }

        layers.push(Layer {
            name: "head".to_owned(),
            kind: LayerKind::Head,
            params: if self.tied_head { 0 } else { embed_params },
            fwd_flops_per_sample: 2.0 * s * h * self.vocab as f64,
            activation_bytes_per_sample: Bytes::new((2.0 * s * self.vocab as f64) as u64),
            boundary_bytes_per_sample: Bytes::new((2.0 * s * h) as u64),
        });

        ModelGraph {
            name: self.name.clone(),
            family: ModelFamily::Transformer,
            layers,
            seq_len: Some(self.seq_len),
            efficiency: self.efficiency,
        }
    }
}

/// Efficiency of the dense-LLM training kernels: calibrated so the main
/// job achieves ≈60 TFLOPS on a V100 (48% of peak) at its microbatch size
/// of 2, the utilization the paper reports for the executing main job
/// (§6.2).
pub const LLM_EFFICIENCY: EfficiencyCurve = EfficiencyCurve {
    max: 0.52,
    half_batch: 0.15,
};

/// BERT kernels: well-optimized GEMMs, but the short (128-token)
/// sequences need very large batches to saturate a V100 — which is what
/// makes bubble free-memory valuable (Fig. 10b).
pub const BERT_EFFICIENCY: EfficiencyCurve = EfficiencyCurve {
    max: 0.46,
    half_batch: 48.0,
};

/// XLM-Roberta-XL kernels: the large hidden width saturates the device at
/// modest batch sizes — it "can still submit enough computation work to
/// keep the GPU busy" (§6.2).
pub const XLM_EFFICIENCY: EfficiencyCurve = EfficiencyCurve {
    max: 0.45,
    half_batch: 4.0,
};

/// The paper's main jobs use sequence length 2048 (§5.2).
pub const LLM_SEQ_LEN: usize = 2048;

/// GPT-family vocabulary (GPT-2/3 BPE rounded for tensor-parallel
/// divisibility).
pub const GPT_VOCAB: usize = 50_304;

/// A GPT-like decoder LLM with roughly `hidden²·12·layers` parameters —
/// the generic constructor behind [`gpt_5b`]/[`gpt_40b`].
pub fn gpt_llm(name: &str, hidden: usize, num_layers: usize) -> ModelGraph {
    TransformerConfig::decoder(name, hidden, num_layers, GPT_VOCAB, LLM_SEQ_LEN).build()
}

/// The 5B-parameter main job used in the paper's physical-cluster
/// experiments (§5.2): h=3584, L=32 → ≈5.1B parameters. The depth is a
/// multiple of the 16 pipeline stages so stages carry two blocks each.
pub fn gpt_5b() -> ModelGraph {
    gpt_llm("GPT-5B", 3584, 32)
}

/// The 40B-parameter main job used in the paper's simulator experiments
/// (§5.2): h=8192, L=48 → ≈39B parameters.
pub fn gpt_40b() -> ModelGraph {
    gpt_llm("GPT-40B", 8192, 48)
}

/// The 40B main job scaled to `size_factor` of its original parameter
/// count by scaling width and depth equally (Fig. 10a sweeps 0.5–2.0).
/// Since parameters ∝ depth·width², an equal width/depth factor `g`
/// satisfies `g³ = size_factor`.
///
/// # Panics
///
/// Panics if `size_factor` is not positive and finite.
pub fn gpt_40b_scaled(size_factor: f64) -> ModelGraph {
    assert!(
        size_factor > 0.0 && size_factor.is_finite(),
        "size factor must be positive, got {size_factor}"
    );
    let g = size_factor.cbrt();
    let hidden = ((8192.0 * g / 128.0).round() * 128.0) as usize;
    let num_layers = (48.0 * g).round().max(1.0) as usize;
    gpt_llm(
        &format!("GPT-40B@x{size_factor:.2}"),
        hidden.max(128),
        num_layers,
    )
}

/// A LLaMA-7B-class decoder (extension beyond Table 1): h=4096, L=32,
/// 32K vocabulary with untied embeddings → ≈6.7B parameters. The SwiGLU
/// MLP's parameter count (3·h·11008) is within 1% of the classic 8h², so
/// the standard block formula applies. Useful as an alternative main job
/// for what-if studies.
pub fn llama_7b() -> ModelGraph {
    TransformerConfig {
        name: "LLaMA-7B".to_owned(),
        hidden: 4096,
        num_layers: 32,
        vocab: 32_000,
        seq_len: LLM_SEQ_LEN,
        tied_head: false,
        efficiency: LLM_EFFICIENCY,
    }
    .build()
}

/// BERT vocabulary.
const BERT_VOCAB: usize = 30_522;
/// Fill-job BERT sequence length (typical batch-inference setting).
const BERT_SEQ_LEN: usize = 128;

/// Bert-base (Table 1: 109M, NLP, small): h=768, L=12.
pub fn bert_base() -> ModelGraph {
    TransformerConfig {
        name: "Bert-base".to_owned(),
        hidden: 768,
        num_layers: 12,
        vocab: BERT_VOCAB,
        seq_len: BERT_SEQ_LEN,
        tied_head: true,
        efficiency: BERT_EFFICIENCY,
    }
    .build()
}

/// Bert-large (Table 1: 334M, NLP, medium): h=1024, L=24.
pub fn bert_large() -> ModelGraph {
    TransformerConfig {
        name: "Bert-large".to_owned(),
        hidden: 1024,
        num_layers: 24,
        vocab: BERT_VOCAB,
        seq_len: BERT_SEQ_LEN,
        tied_head: true,
        efficiency: BERT_EFFICIENCY,
    }
    .build()
}

/// XLM-Roberta-XL (Table 1: 2.8B, NLP, large): h=2560 with depth chosen to
/// land on the paper's 2.8B total including the 250K-token multilingual
/// embedding table.
pub fn xlm_roberta_xl() -> ModelGraph {
    TransformerConfig {
        name: "XLM-Roberta-XL".to_owned(),
        hidden: 2560,
        num_layers: 28,
        vocab: 250_002,
        seq_len: 512,
        tied_head: true,
        efficiency: XLM_EFFICIENCY,
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_b(m: &ModelGraph) -> f64 {
        m.total_params() as f64 / 1e9
    }

    #[test]
    fn gpt_5b_parameter_count() {
        let p = params_b(&gpt_5b());
        assert!((p - 5.0).abs() < 0.25, "got {p}B");
    }

    #[test]
    fn gpt_40b_parameter_count() {
        let p = params_b(&gpt_40b());
        assert!((p - 39.5).abs() < 1.5, "got {p}B");
    }

    #[test]
    fn table1_parameter_counts() {
        // Table 1: 117M/109M/334M/779M/2.8B; transformers built here.
        let bb = params_b(&bert_base());
        assert!((bb - 0.109).abs() < 0.005, "Bert-base got {bb}B");
        let bl = params_b(&bert_large());
        assert!((bl - 0.334).abs() < 0.01, "Bert-large got {bl}B");
        let xl = params_b(&xlm_roberta_xl());
        assert!((xl - 2.8).abs() < 0.15, "XLM got {xl}B");
    }

    #[test]
    fn six_p_flops_rule_holds_for_large_models() {
        // fwd+bwd FLOPs per token ≈ 6·P for models where attention is a
        // small correction.
        let m = gpt_40b();
        let per_token = m.train_step_flops(1) / LLM_SEQ_LEN as f64;
        let six_p = 6.0 * m.total_params() as f64;
        let ratio = per_token / six_p;
        assert!(ratio > 0.95 && ratio < 1.25, "ratio={ratio}");
    }

    #[test]
    fn main_job_hits_sixty_tflops_at_microbatch_two() {
        let m = gpt_40b();
        let dev = pipefill_device::DeviceSpec::v100();
        let tflops = m.achieved_tflops(&dev, 2);
        assert!((tflops - 60.0).abs() < 2.0, "got {tflops}");
    }

    #[test]
    fn scaled_llm_tracks_requested_size() {
        for &f in &[0.5, 1.0, 1.5, 2.0] {
            let m = gpt_40b_scaled(f);
            let p = params_b(&m);
            let target = 39.1 * f;
            assert!(
                (p - target).abs() / target < 0.15,
                "factor {f}: got {p}B, want ≈{target}B"
            );
        }
    }

    #[test]
    fn layer_order_is_embedding_blocks_head() {
        let m = bert_base();
        assert_eq!(m.layers.first().unwrap().kind, LayerKind::Embedding);
        assert_eq!(m.layers.last().unwrap().kind, LayerKind::Head);
        assert_eq!(m.layers.len(), 14);
        assert!(m.layers[1..13]
            .iter()
            .all(|l| l.kind == LayerKind::TransformerBlock));
    }

    #[test]
    fn tied_head_has_no_params() {
        let m = gpt_5b();
        assert_eq!(m.layers.last().unwrap().params, 0);
        let untied = TransformerConfig {
            tied_head: false,
            ..TransformerConfig::decoder("untied", 256, 2, 1000, 64)
        }
        .build();
        assert_eq!(untied.layers.last().unwrap().params, 256_000);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = TransformerConfig::decoder("bad", 0, 2, 100, 64).build();
    }
}
