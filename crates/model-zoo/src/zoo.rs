//! The model catalog: identifiers and Table-1 metadata for every model
//! used in the paper's experiments.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::ModelGraph;
use crate::transformer::{bert_base, bert_large, gpt_40b, gpt_5b, llama_7b, xlm_roberta_xl};
use crate::vision::{efficientnet_117m, resnet50, swin_large, vit_large};

/// Size class from Table 1 (S: small, M: medium, L: large), which the
/// trace generator uses when bucketing job sizes: smaller models (<700M)
/// may run as training or batch inference with equal probability, larger
/// ones always as batch inference (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Under ~150M parameters.
    Small,
    /// Hundreds of millions of parameters.
    Medium,
    /// Billions of parameters.
    Large,
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeClass::Small => write!(f, "S"),
            SizeClass::Medium => write!(f, "M"),
            SizeClass::Large => write!(f, "L"),
        }
    }
}

/// Whether a fill job trains its model or runs batch inference (§4.1,
/// "Fill Jobs": PipeFill supports exactly these two, because
/// latency-sensitive jobs cannot tolerate intermittent bubble execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobKind {
    /// Training: forward + backward + optimizer per iteration.
    Training,
    /// Batch (offline) inference: forward only.
    BatchInference,
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobKind::Training => write!(f, "training"),
            JobKind::BatchInference => write!(f, "batch-inference"),
        }
    }
}

/// Task domain from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskDomain {
    /// Computer vision.
    Cv,
    /// Natural-language processing.
    Nlp,
}

impl fmt::Display for TaskDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskDomain::Cv => write!(f, "CV"),
            TaskDomain::Nlp => write!(f, "NLP"),
        }
    }
}

/// Every model in the reproduction: the two main jobs plus the five
/// fill-job models of Table 1.
///
/// # Example
///
/// ```
/// use pipefill_model_zoo::ModelId;
///
/// for id in ModelId::ALL {
///     let graph = id.build();
///     assert!(graph.total_params() > 0);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// 5B-parameter GPT-like LLM (physical-cluster main job).
    Gpt5B,
    /// 40B-parameter GPT-like LLM (simulator main job).
    Gpt40B,
    /// EfficientNet, 117M, CV (Table 1, small).
    EfficientNet,
    /// Bert-base, 109M, NLP (Table 1, small).
    BertBase,
    /// Bert-large, 334M, NLP (Table 1, medium).
    BertLarge,
    /// Swin-large, 779M, CV (Table 1, medium).
    SwinLarge,
    /// XLM-Roberta-XL, 2.8B, NLP (Table 1, large).
    XlmRobertaXl,
    /// LLaMA-7B-class decoder (extension: alternative main job).
    Llama7B,
    /// ViT-Large/16, ≈305M, CV (extension fill job).
    ViTLarge,
    /// ResNet-50, ≈24M, CV (extension fill job).
    ResNet50,
}

impl ModelId {
    /// All models in the catalog.
    pub const ALL: [ModelId; 10] = [
        ModelId::Gpt5B,
        ModelId::Gpt40B,
        ModelId::EfficientNet,
        ModelId::BertBase,
        ModelId::BertLarge,
        ModelId::SwinLarge,
        ModelId::XlmRobertaXl,
        ModelId::Llama7B,
        ModelId::ViTLarge,
        ModelId::ResNet50,
    ];

    /// The five fill-job models of Table 1, in the table's order.
    pub const FILL_JOBS: [ModelId; 5] = [
        ModelId::EfficientNet,
        ModelId::BertBase,
        ModelId::BertLarge,
        ModelId::SwinLarge,
        ModelId::XlmRobertaXl,
    ];

    /// Extension fill-job models beyond Table 1 (both under the paper's
    /// 3B-parameter fill-job ceiling).
    pub const EXTENDED_FILL_JOBS: [ModelId; 2] = [ModelId::ViTLarge, ModelId::ResNet50];

    /// Builds the model's layer graph.
    pub fn build(self) -> ModelGraph {
        match self {
            ModelId::Gpt5B => gpt_5b(),
            ModelId::Gpt40B => gpt_40b(),
            ModelId::EfficientNet => efficientnet_117m(),
            ModelId::BertBase => bert_base(),
            ModelId::BertLarge => bert_large(),
            ModelId::SwinLarge => swin_large(),
            ModelId::XlmRobertaXl => xlm_roberta_xl(),
            ModelId::Llama7B => llama_7b(),
            ModelId::ViTLarge => vit_large(),
            ModelId::ResNet50 => resnet50(),
        }
    }

    /// Table-1 size class (main jobs are classed Large).
    pub fn size_class(self) -> SizeClass {
        match self {
            ModelId::EfficientNet | ModelId::BertBase | ModelId::ResNet50 => SizeClass::Small,
            ModelId::BertLarge | ModelId::SwinLarge | ModelId::ViTLarge => SizeClass::Medium,
            ModelId::XlmRobertaXl | ModelId::Gpt5B | ModelId::Gpt40B | ModelId::Llama7B => {
                SizeClass::Large
            }
        }
    }

    /// Table-1 task domain (the LLM main jobs are NLP).
    pub fn domain(self) -> TaskDomain {
        match self {
            ModelId::EfficientNet | ModelId::SwinLarge | ModelId::ViTLarge | ModelId::ResNet50 => {
                TaskDomain::Cv
            }
            _ => TaskDomain::Nlp,
        }
    }

    /// True for models under 700M parameters, which the trace pipeline
    /// assigns to training or batch inference with equal probability;
    /// larger models are always batch inference (§5.3).
    pub fn trainable_as_fill_job(self) -> bool {
        matches!(
            self,
            ModelId::EfficientNet
                | ModelId::BertBase
                | ModelId::BertLarge
                | ModelId::ViTLarge
                | ModelId::ResNet50
        )
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Gpt5B => "GPT-5B",
            ModelId::Gpt40B => "GPT-40B",
            ModelId::EfficientNet => "EfficientNet",
            ModelId::BertBase => "Bert-base",
            ModelId::BertLarge => "Bert-large",
            ModelId::SwinLarge => "Swin-large",
            ModelId::XlmRobertaXl => "XLM-Roberta-XL",
            ModelId::Llama7B => "LLaMA-7B",
            ModelId::ViTLarge => "ViT-Large",
            ModelId::ResNet50 => "ResNet-50",
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Builds all five Table-1 fill-job models.
pub fn fill_job_models() -> Vec<ModelGraph> {
    ModelId::FILL_JOBS.iter().map(|id| id.build()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_everything() {
        for id in ModelId::ALL {
            let g = id.build();
            assert!(g.total_params() > 1_000_000, "{id} too small");
            assert!(!g.layers.is_empty());
        }
    }

    #[test]
    fn table1_metadata() {
        use ModelId::*;
        assert_eq!(EfficientNet.size_class(), SizeClass::Small);
        assert_eq!(BertBase.size_class(), SizeClass::Small);
        assert_eq!(BertLarge.size_class(), SizeClass::Medium);
        assert_eq!(SwinLarge.size_class(), SizeClass::Medium);
        assert_eq!(XlmRobertaXl.size_class(), SizeClass::Large);
        assert_eq!(EfficientNet.domain(), TaskDomain::Cv);
        assert_eq!(SwinLarge.domain(), TaskDomain::Cv);
        assert_eq!(BertBase.domain(), TaskDomain::Nlp);
        assert_eq!(BertLarge.domain(), TaskDomain::Nlp);
        assert_eq!(XlmRobertaXl.domain(), TaskDomain::Nlp);
    }

    #[test]
    fn only_sub_700m_models_train_as_fill_jobs() {
        assert!(ModelId::EfficientNet.trainable_as_fill_job());
        assert!(ModelId::BertBase.trainable_as_fill_job());
        assert!(ModelId::BertLarge.trainable_as_fill_job());
        assert!(!ModelId::SwinLarge.trainable_as_fill_job()); // 779M > 700M
        assert!(!ModelId::XlmRobertaXl.trainable_as_fill_job());
    }

    #[test]
    fn extension_models_have_consistent_metadata() {
        assert_eq!(ModelId::Llama7B.domain(), TaskDomain::Nlp);
        assert_eq!(ModelId::ViTLarge.domain(), TaskDomain::Cv);
        assert_eq!(ModelId::ResNet50.domain(), TaskDomain::Cv);
        assert!(
            !ModelId::Llama7B.trainable_as_fill_job(),
            "7B exceeds the 3B fill ceiling"
        );
        assert!(ModelId::ViTLarge.trainable_as_fill_job());
        assert!(ModelId::ResNet50.trainable_as_fill_job());
        let p = ModelId::Llama7B.build().total_params() as f64 / 1e9;
        assert!((p - 6.7).abs() < 0.3, "LLaMA-7B got {p}B");
    }

    #[test]
    fn fill_job_list_matches_table_order() {
        let models = fill_job_models();
        assert_eq!(models.len(), 5);
        assert_eq!(models[0].name, "EfficientNet");
        assert_eq!(models[4].name, "XLM-Roberta-XL");
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(ModelId::BertBase.to_string(), "Bert-base");
        assert_eq!(SizeClass::Small.to_string(), "S");
        assert_eq!(TaskDomain::Cv.to_string(), "CV");
    }
}
