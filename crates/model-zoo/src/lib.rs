//! # pipefill-model-zoo
//!
//! DNN model definitions and the analytical cost model for the PipeFill
//! reproduction.
//!
//! The paper's workloads are (a) the *main jobs* — 5B- and 40B-parameter
//! GPT-like LLMs trained with pipeline parallelism — and (b) the *fill
//! jobs* of Table 1: EfficientNet (117M, CV), BERT-base (109M, NLP),
//! BERT-large (334M, NLP), Swin-large (779M, CV) and XLM-Roberta-XL
//! (2.8B, NLP), run as training or batch inference. Since no GPUs or
//! framework profilers are available in this environment, each model is
//! described as a [`ModelGraph`] of [`Layer`]s carrying parameter counts,
//! forward FLOPs per sample, and activation footprints derived from the
//! architecture shapes in the cited papers; execution times then come from
//! the analytical device model in `pipefill-device`.
//!
//! Everything downstream (pipeline engine, fill-job Executor profiles,
//! Scheduler processing-time estimates) consumes only this layer-level
//! description — exactly the role the PyTorch profiles play in the paper's
//! simulator (§5.1).
//!
//! # Example
//!
//! ```
//! use pipefill_model_zoo::ModelId;
//!
//! let bert = ModelId::BertBase.build();
//! let billions = bert.total_params() as f64 / 1e9;
//! assert!((billions - 0.109).abs() < 0.01); // Table 1: 109M parameters
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod graph;
mod layer;
mod transformer;
mod vision;
mod zoo;

pub use graph::{EfficiencyCurve, ModelFamily, ModelGraph};
pub use layer::{Layer, LayerKind};
pub use transformer::{
    bert_base, bert_large, gpt_40b, gpt_40b_scaled, gpt_5b, gpt_llm, llama_7b, xlm_roberta_xl,
    TransformerConfig,
};
pub use vision::{efficientnet_117m, resnet50, swin_large, vit_large};
pub use zoo::{fill_job_models, JobKind, ModelId, SizeClass, TaskDomain};

/// Bytes per parameter/activation element in half precision (the training
/// dtype throughout the paper's experiments).
pub const FP16_BYTES: u64 = 2;

/// Bytes of optimizer state per parameter for mixed-precision Adam: fp32
/// master copy (4) + first moment (4) + second moment (4). This is the
/// state PipeFill's main-job offloading moves to host memory (§4.2).
pub const ADAM_STATE_BYTES_PER_PARAM: u64 = 12;

/// Bytes per parameter of gradient storage (fp16).
pub const GRAD_BYTES_PER_PARAM: u64 = 2;
