//! Fig. 10: sensitivity of recovered utilization to bubble size (10a:
//! scaling the main-job model 50–200% at fixed 4.5 GB free memory) and to
//! bubble free memory (10b: 2–8 GB at fixed model size).

use pipefill_device::Bytes;
use pipefill_executor::ExecutorConfig;
use pipefill_model_zoo::gpt_40b_scaled;
use pipefill_pipeline::{BubbleMemoryModel, MainJobSpec, ScheduleKind};
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

use crate::experiments::sweep;
use crate::steady::steady_recovered_tflops;

/// One model-scale point (Fig. 10a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BubbleSizeRow {
    /// Main-job model size relative to the 40B original.
    pub model_scale: f64,
    /// Total fillable bubble seconds per iteration per stage (average).
    pub mean_fillable_secs: f64,
    /// Recovered fill TFLOPS per GPU (trace mix).
    pub recovered_tflops: f64,
}

/// One free-memory point (Fig. 10b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeMemoryRow {
    /// Bubble free memory in GiB.
    pub free_gib: f64,
    /// Recovered fill TFLOPS per GPU (trace mix).
    pub recovered_tflops: f64,
}

/// Fig. 10a: scale the main-job model 50–200%, free memory pinned at the
/// measured 4.5 GB.
pub fn fig10a_bubble_size(exec: &ExecutorConfig) -> Vec<BubbleSizeRow> {
    sweep::par_map(vec![0.5f64, 0.75, 1.0, 1.5, 2.0], |scale| {
        let main =
            MainJobSpec::simulator_40b(8, ScheduleKind::GPipe).with_model(gpt_40b_scaled(scale));
        let timeline = main.engine_timeline();
        let mean_fillable = timeline
            .stages
            .iter()
            .map(|s| s.fillable_time().as_secs_f64())
            .sum::<f64>()
            / timeline.stages.len() as f64;
        BubbleSizeRow {
            model_scale: scale,
            mean_fillable_secs: mean_fillable,
            recovered_tflops: steady_recovered_tflops(&main, exec, &ModelMix::paper_mix()),
        }
    })
}

/// Fig. 10b: sweep bubble free memory 2–8 GiB at the original model size.
pub fn fig10b_free_memory(exec: &ExecutorConfig) -> Vec<FreeMemoryRow> {
    sweep::par_map(vec![2.0f64, 3.0, 4.0, 4.5, 6.0, 8.0], |gib| {
        let main = MainJobSpec::simulator_40b(8, ScheduleKind::GPipe)
            .with_memory(BubbleMemoryModel::Uniform(Bytes::from_gib_f64(gib)));
        FreeMemoryRow {
            free_gib: gib,
            recovered_tflops: steady_recovered_tflops(&main, exec, &ModelMix::paper_mix()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_size_has_small_effect() {
        // Fig. 10a: "little difference in the recovered TFLOPS, though
        // shrinking the bubble duration by 50% reduced TFLOPS by 5.3%".
        let rows = fig10a_bubble_size(&ExecutorConfig::default());
        let at = |s: f64| rows.iter().find(|r| r.model_scale == s).unwrap();
        let base = at(1.0).recovered_tflops;
        let small = at(0.5).recovered_tflops;
        let big = at(2.0).recovered_tflops;
        // Bubbles scale with the model.
        assert!(at(2.0).mean_fillable_secs > at(0.5).mean_fillable_secs);
        // Recovered TFLOPS varies by far less than the 4× bubble change.
        let spread = (big - small).abs() / base;
        assert!(spread < 0.25, "spread {spread}");
        assert!(small <= base * 1.02, "small bubbles should not help");
    }

    #[test]
    fn free_memory_matters_with_diminishing_returns() {
        // Fig. 10b: "4GB recovers 30% more TFLOPS than 2GB, but 8GB only
        // recovers 12.2% more than 4GB".
        let rows = fig10b_free_memory(&ExecutorConfig::default());
        let at = |g: f64| {
            rows.iter()
                .find(|r| r.free_gib == g)
                .unwrap()
                .recovered_tflops
        };
        let gain_2_to_4 = at(4.0) / at(2.0) - 1.0;
        let gain_4_to_8 = at(8.0) / at(4.0) - 1.0;
        assert!(gain_2_to_4 > 0.1, "2→4 GiB gain {gain_2_to_4}");
        assert!(
            gain_4_to_8 < gain_2_to_4,
            "no diminishing returns: {gain_2_to_4} then {gain_4_to_8}"
        );
        // Monotone in memory.
        for pair in rows.windows(2) {
            assert!(pair[1].recovered_tflops >= pair[0].recovered_tflops * 0.999);
        }
    }
}
