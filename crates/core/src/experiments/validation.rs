//! Fig. 6: simulator validation. Sweeps the fill-job mix from all-XLM
//! (largest model) to all-EfficientNet (smallest, the only CNN) at the
//! default 68% fill fraction, and compares the fine-grained "physical"
//! simulator against the coarse profile-driven prediction. The paper
//! reports main-job overhead independent of the mix and a maximum
//! simulator error under 2%.

use pipefill_executor::ExecutorConfig;
use pipefill_model_zoo::ModelId;
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::stats::relative_error;
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

use crate::csv::CsvWriter;
use crate::physical::{PhysicalSim, PhysicalSimConfig};
use crate::steady::steady_recovered_tflops;

/// One mix point of the validation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Fraction of jobs that are XLM batch-inference (the rest are
    /// EfficientNet training/inference).
    pub xlm_fraction: f64,
    /// Main-job slowdown measured by the physical simulator.
    pub physical_slowdown: f64,
    /// Recovered TFLOPS per GPU, physical measurement.
    pub physical_recovered: f64,
    /// Recovered TFLOPS per GPU, coarse-simulator prediction.
    pub simulator_recovered: f64,
    /// `|physical − simulator| / simulator`.
    pub relative_error: f64,
}

/// The sweep points of Fig. 6.
pub const FIG6_FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Runs the validation sweep.
pub fn fig6_validation(iterations: usize, seed: u64) -> Vec<ValidationRow> {
    FIG6_FRACTIONS
        .iter()
        .map(|&frac| {
            let mix = ModelMix::blend(ModelId::XlmRobertaXl, ModelId::EfficientNet, frac);
            let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
            let mut cfg = PhysicalSimConfig::new(main.clone()).with_mix(mix.clone());
            cfg.iterations = iterations;
            cfg.seed = seed;
            cfg.deterministic_mix = true;
            let phys = PhysicalSim::new(cfg).run();
            let sim = steady_recovered_tflops(&main, &ExecutorConfig::default(), &mix);
            ValidationRow {
                xlm_fraction: frac,
                physical_slowdown: phys.main_slowdown,
                physical_recovered: phys.recovered_tflops_per_gpu,
                simulator_recovered: sim,
                relative_error: if sim == 0.0 {
                    0.0
                } else {
                    relative_error(phys.recovered_tflops_per_gpu, sim)
                },
            }
        })
        .collect()
}

/// Prints the sweep.
pub fn print_validation(rows: &[ValidationRow]) {
    println!(
        "{:>8} {:>11} {:>14} {:>13} {:>9}",
        "XLM %", "slowdown", "phys TFLOPS", "sim TFLOPS", "error"
    );
    for r in rows {
        println!(
            "{:>7.0}% {:>10.2}% {:>14.2} {:>13.2} {:>8.2}%",
            100.0 * r.xlm_fraction,
            100.0 * r.physical_slowdown,
            r.physical_recovered,
            r.simulator_recovered,
            100.0 * r.relative_error,
        );
    }
}

/// Writes CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_validation(rows: &[ValidationRow], path: &str) -> std::io::Result<()> {
    let mut w = CsvWriter::create(
        path,
        &[
            "xlm_fraction",
            "physical_slowdown",
            "physical_recovered",
            "simulator_recovered",
            "relative_error",
        ],
    )?;
    for r in rows {
        w.row(&[
            &r.xlm_fraction,
            &r.physical_slowdown,
            &r.physical_recovered,
            &r.simulator_recovered,
            &r.relative_error,
        ])?;
    }
    w.finish().map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_independent_of_mix_and_error_is_small() {
        let rows = fig6_validation(150, 5);
        // Fig. 6 claim 1: overhead does not vary significantly with the
        // job mix (all under the 2% budget at the 68% default fill).
        for r in &rows {
            assert!(
                r.physical_slowdown < 0.02,
                "slowdown at XLM {} = {}",
                r.xlm_fraction,
                r.physical_slowdown
            );
        }
        let slowdowns: Vec<f64> = rows.iter().map(|r| r.physical_slowdown).collect();
        let spread = slowdowns.iter().cloned().fold(f64::MIN, f64::max)
            - slowdowns.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.015, "slowdown spread {spread}");
        // Fig. 6 claim 2: simulator error bounded (paper: <2%; we allow
        // a little more for the smaller run length used in tests).
        for r in &rows {
            assert!(
                r.relative_error < 0.05,
                "error at XLM {} = {}",
                r.xlm_fraction,
                r.relative_error
            );
        }
    }
}
