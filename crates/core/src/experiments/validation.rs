//! Fig. 6: simulator validation. Sweeps the fill-job mix from all-XLM
//! (largest model) to all-EfficientNet (smallest, the only CNN) at the
//! default 68% fill fraction, and compares the fine-grained "physical"
//! simulator against the coarse profile-driven prediction. The paper
//! reports main-job overhead independent of the mix and a maximum
//! simulator error under 2%.

use pipefill_executor::ExecutorConfig;
use pipefill_model_zoo::ModelId;
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::stats::relative_error;
use pipefill_sim_core::SimDuration;
use pipefill_trace::{ModelMix, TraceConfig};
use serde::{Deserialize, Serialize};

use crate::backend::BackendConfig;
use crate::cluster::ClusterSimConfig;
use crate::experiments::sweep;
use crate::physical::PhysicalSimConfig;
use crate::steady::steady_recovered_tflops;

/// One mix point of the validation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Fraction of jobs that are XLM batch-inference (the rest are
    /// EfficientNet training/inference).
    pub xlm_fraction: f64,
    /// Main-job slowdown measured by the physical simulator.
    pub physical_slowdown: f64,
    /// Recovered TFLOPS per GPU, physical measurement.
    pub physical_recovered: f64,
    /// Recovered TFLOPS per GPU, coarse-simulator prediction.
    pub simulator_recovered: f64,
    /// `|physical − simulator| / simulator`.
    pub relative_error: f64,
}

/// The sweep points of Fig. 6.
pub const FIG6_FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Runs the validation sweep; the mix points fan out across cores.
pub fn fig6_validation(iterations: usize, seed: u64) -> Vec<ValidationRow> {
    sweep::par_map(FIG6_FRACTIONS.to_vec(), |frac| {
        let mix = ModelMix::blend(ModelId::XlmRobertaXl, ModelId::EfficientNet, frac);
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = PhysicalSimConfig::new(main.clone()).with_mix(mix.clone());
        cfg.iterations = iterations;
        cfg.seed = seed;
        cfg.deterministic_mix = true;
        let phys = BackendConfig::Physical(cfg).run().metrics;
        let sim = steady_recovered_tflops(&main, &ExecutorConfig::default(), &mix);
        ValidationRow {
            xlm_fraction: frac,
            physical_slowdown: phys.main_slowdown,
            physical_recovered: phys.recovered_tflops_per_gpu,
            simulator_recovered: sim,
            relative_error: if sim == 0.0 {
                0.0
            } else {
                relative_error(phys.recovered_tflops_per_gpu, sim)
            },
        }
    })
}

/// One seed of the cross-backend agreement study: both fidelity levels run
/// from the same experiment spec (5B main job, paper mix, saturated
/// backlog) through the same driver, and must agree on recovered TFLOPs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgreementRow {
    /// RNG seed shared by both backends.
    pub seed: u64,
    /// Recovered TFLOPS per GPU, coarse event-driven backend.
    pub coarse_recovered: f64,
    /// Recovered TFLOPS per GPU, fine-grained physical backend.
    pub physical_recovered: f64,
    /// Main-job slowdown the physical backend measured.
    pub physical_slowdown: f64,
    /// `|physical − coarse| / coarse`.
    pub relative_error: f64,
}

/// Agreement tolerance for [`fig6_agreement`]: the paper reports <2%
/// simulator error on full-length runs; the shortened runs used here and
/// in CI budget 10% for trace granularity (finite jobs vs an infinite
/// backlog) plus jitter noise.
pub const AGREEMENT_TOLERANCE: f64 = 0.10;

/// Runs both backends from one shared spec, per seed, across cores.
///
/// The coarse backend is saturated (offered load far above capacity) so
/// its devices never idle — the regime where the paper's profile-replay
/// simulator and the physical cluster are expected to coincide (Fig. 6).
pub fn fig6_agreement(seeds: &[u64], iterations: usize) -> Vec<AgreementRow> {
    sweep::replicate(seeds, |seed| {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mix = ModelMix::paper_mix();

        let mut phys = PhysicalSimConfig::new(main.clone()).with_mix(mix.clone());
        phys.iterations = iterations;
        phys.seed = seed;
        phys.deterministic_mix = true;

        let mut trace = TraceConfig::physical(seed).with_load(8.0).with_mix(mix);
        trace.horizon = SimDuration::from_secs(7200);
        let coarse_cfg = ClusterSimConfig::new(main, trace);

        let runs = sweep::run_sweep(vec![
            BackendConfig::Coarse(coarse_cfg),
            BackendConfig::Physical(phys),
        ]);
        let coarse = runs[0].metrics;
        let physical = runs[1].metrics;
        AgreementRow {
            seed,
            coarse_recovered: coarse.recovered_tflops_per_gpu,
            physical_recovered: physical.recovered_tflops_per_gpu,
            physical_slowdown: physical.main_slowdown,
            relative_error: relative_error(
                physical.recovered_tflops_per_gpu,
                coarse.recovered_tflops_per_gpu,
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_independent_of_mix_and_error_is_small() {
        let rows = fig6_validation(150, 5);
        // Fig. 6 claim 1: overhead does not vary significantly with the
        // job mix (all under the 2% budget at the 68% default fill).
        for r in &rows {
            assert!(
                r.physical_slowdown < 0.02,
                "slowdown at XLM {} = {}",
                r.xlm_fraction,
                r.physical_slowdown
            );
        }
        let slowdowns: Vec<f64> = rows.iter().map(|r| r.physical_slowdown).collect();
        let spread = slowdowns.iter().cloned().fold(f64::MIN, f64::max)
            - slowdowns.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.015, "slowdown spread {spread}");
        // Fig. 6 claim 2: simulator error bounded (paper: <2%; we allow
        // a little more for the smaller run length used in tests).
        for r in &rows {
            assert!(
                r.relative_error < 0.05,
                "error at XLM {} = {}",
                r.xlm_fraction,
                r.relative_error
            );
        }
    }
}
