//! Table 1: the fill-job category table (size class, model, parameter
//! count, job type).

use pipefill_model_zoo::ModelId;
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Model.
    pub model: ModelId,
    /// Built parameter count, in millions.
    pub params_millions: f64,
    /// Paper's reported parameter count, in millions.
    pub paper_params_millions: f64,
}

/// The paper's reported counts, in table order.
const PAPER_PARAMS_M: [f64; 5] = [117.0, 109.0, 334.0, 779.0, 2800.0];

/// Builds the table from the model zoo.
pub fn table1() -> Vec<Table1Row> {
    ModelId::FILL_JOBS
        .iter()
        .zip(PAPER_PARAMS_M)
        .map(|(&model, paper)| Table1Row {
            model,
            params_millions: model.build().total_params() as f64 / 1e6,
            paper_params_millions: paper,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_models_match_paper_counts() {
        for row in table1() {
            let err =
                (row.params_millions - row.paper_params_millions).abs() / row.paper_params_millions;
            assert!(
                err < 0.08,
                "{}: built {}M vs paper {}M",
                row.model,
                row.params_millions,
                row.paper_params_millions
            );
        }
    }

    #[test]
    fn table_has_all_five_fill_jobs() {
        assert_eq!(table1().len(), 5);
    }
}
