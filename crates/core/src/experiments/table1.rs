//! Table 1: the fill-job category table (size class, model, parameter
//! count, job type).

use pipefill_model_zoo::ModelId;
use serde::{Deserialize, Serialize};

use crate::csv::CsvWriter;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Model.
    pub model: ModelId,
    /// Built parameter count, in millions.
    pub params_millions: f64,
    /// Paper's reported parameter count, in millions.
    pub paper_params_millions: f64,
}

/// The paper's reported counts, in table order.
const PAPER_PARAMS_M: [f64; 5] = [117.0, 109.0, 334.0, 779.0, 2800.0];

/// Builds the table from the model zoo.
pub fn table1() -> Vec<Table1Row> {
    ModelId::FILL_JOBS
        .iter()
        .zip(PAPER_PARAMS_M)
        .map(|(&model, paper)| Table1Row {
            model,
            params_millions: model.build().total_params() as f64 / 1e6,
            paper_params_millions: paper,
        })
        .collect()
}

/// Prints Table 1 with the paper's columns.
pub fn print_table1(rows: &[Table1Row]) {
    println!(
        "{:>5} {:>16} {:>12} {:>12} {:>9}",
        "size", "model", "params (M)", "paper (M)", "job type"
    );
    for r in rows {
        println!(
            "{:>5} {:>16} {:>12.1} {:>12.1} {:>9}",
            r.model.size_class().to_string(),
            r.model.name(),
            r.params_millions,
            r.paper_params_millions,
            r.model.domain().to_string(),
        );
    }
}

/// Writes CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_table1(rows: &[Table1Row], path: &str) -> std::io::Result<()> {
    let mut w = CsvWriter::create(
        path,
        &[
            "size_class",
            "model",
            "params_millions",
            "paper_params_millions",
            "domain",
        ],
    )?;
    for r in rows {
        w.row(&[
            &r.model.size_class(),
            &r.model.name(),
            &r.params_millions,
            &r.paper_params_millions,
            &r.model.domain(),
        ])?;
    }
    w.finish().map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_models_match_paper_counts() {
        for row in table1() {
            let err =
                (row.params_millions - row.paper_params_millions).abs() / row.paper_params_millions;
            assert!(
                err < 0.08,
                "{}: built {}M vs paper {}M",
                row.model,
                row.params_millions,
                row.paper_params_millions
            );
        }
    }

    #[test]
    fn table_has_all_five_fill_jobs() {
        assert_eq!(table1().len(), 5);
    }
}
