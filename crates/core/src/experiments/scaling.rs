//! Figs. 1 and 4: scaling the 40B main job from 1K to 8K GPUs.
//!
//! Reports, per GPU count: days-to-train (4a), bubble ratio (4b), and
//! TFLOPS/GPU for traditional PP, PipeFill with the trace mix, and
//! PipeFill with BERT-inference-only fill jobs (4c; Fig. 1 is the
//! two-series subset). Also derives the §6.2 GPUs-saved estimate.

use pipefill_executor::ExecutorConfig;
use pipefill_model_zoo::ModelId;
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

use crate::experiments::characterization::{fig7_characterization, mix_relative_performance_from};
use crate::experiments::sweep;
use crate::metrics::gpus_saved;
use crate::steady::steady_recovered_tflops;

/// One GPU-count point of the scaling study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Total GPUs.
    pub gpus: usize,
    /// Microbatches per replica.
    pub microbatches: usize,
    /// Bubble ratio (Fig. 4b).
    pub bubble_ratio: f64,
    /// Days to train the token budget (Fig. 4a).
    pub days_to_train: f64,
    /// Traditional PP TFLOPS/GPU (main job only).
    pub traditional_tflops: f64,
    /// PipeFill total TFLOPS/GPU with the trace mix.
    pub pipefill_trace_mix_tflops: f64,
    /// PipeFill total TFLOPS/GPU with BERT-inference fill jobs only.
    pub pipefill_bert_inf_tflops: f64,
    /// GPUs-worth of fill work, trace mix (C·B·P).
    pub gpus_saved_trace_mix: f64,
    /// GPUs-worth of fill work, BERT-inference-only.
    pub gpus_saved_best: f64,
}

/// Runs the scaling study at the paper's four GPU counts (1K–8K).
pub fn fig4_scaling() -> Vec<ScalingRow> {
    fig4_scaling_with(&[64, 32, 16, 8], &ExecutorConfig::default())
}

/// Parameterized variant: one row per microbatch count (64 ↔ 1K GPUs …
/// 8 ↔ 8K GPUs, per the fixed-minibatch scaling rule). The GPU-count
/// points are independent, so they fan out across cores.
pub fn fig4_scaling_with(microbatches: &[usize], exec: &ExecutorConfig) -> Vec<ScalingRow> {
    sweep::par_map(microbatches.to_vec(), |m| {
        let main = MainJobSpec::simulator_40b(m, ScheduleKind::GPipe);
        let point = main.scaling_point();
        let mix = ModelMix::paper_mix();
        let bert = ModelMix::single(ModelId::BertBase);
        let rec_mix = steady_recovered_tflops(&main, exec, &mix);
        let rec_bert = steady_recovered_tflops(&main, exec, &bert);
        // The characterization rows depend only on the main job, so
        // compute them once and weight both mixes against them.
        let rows = fig7_characterization(&main, exec);
        let perf_mix = mix_relative_performance_from(&rows, &mix);
        let perf_bert = mix_relative_performance_from(&rows, &bert);
        ScalingRow {
            gpus: point.gpus,
            microbatches: m,
            bubble_ratio: point.bubble_ratio,
            days_to_train: point.days_to_train,
            traditional_tflops: point.main_job_tflops_per_gpu,
            pipefill_trace_mix_tflops: point.main_job_tflops_per_gpu + rec_mix,
            pipefill_bert_inf_tflops: point.main_job_tflops_per_gpu + rec_bert,
            gpus_saved_trace_mix: gpus_saved(point.gpus, point.bubble_ratio, perf_mix),
            gpus_saved_best: gpus_saved(point.gpus, point.bubble_ratio, perf_bert),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_reproduces_paper_shape() {
        let rows = fig4_scaling_with(&[64, 8], &ExecutorConfig::default());
        let (low, high) = (&rows[0], &rows[1]);
        assert_eq!(low.gpus, 1024);
        assert_eq!(high.gpus, 8192);
        // Fig. 4a: training time falls ~3× from 1K to 8K.
        assert!(low.days_to_train / high.days_to_train > 2.5);
        // Fig. 4b: bubble ratio rises 19% → 65%.
        assert!(low.bubble_ratio < 0.25 && high.bubble_ratio > 0.6);
        // Fig. 4c orderings: PipeFill > traditional; BERT-only > mix.
        for r in &rows {
            assert!(r.pipefill_trace_mix_tflops > r.traditional_tflops);
            assert!(r.pipefill_bert_inf_tflops > r.pipefill_trace_mix_tflops);
        }
        // Gains grow with scale.
        let low_gain = low.pipefill_trace_mix_tflops / low.traditional_tflops - 1.0;
        let high_gain = high.pipefill_trace_mix_tflops / high.traditional_tflops - 1.0;
        assert!(
            high_gain > 3.0 * low_gain,
            "low {low_gain} high {high_gain}"
        );
    }

    #[test]
    fn eight_k_gpus_saved_matches_paper_order_of_magnitude() {
        // §6.2: >1500 GPUs (trace mix), ~2600 (best case) at 8K.
        let rows = fig4_scaling_with(&[8], &ExecutorConfig::default());
        let r = &rows[0];
        assert!(
            r.gpus_saved_trace_mix > 700.0 && r.gpus_saved_trace_mix < 3000.0,
            "mix {}",
            r.gpus_saved_trace_mix
        );
        assert!(r.gpus_saved_best > r.gpus_saved_trace_mix);
    }
}
