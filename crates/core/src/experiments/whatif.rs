//! Extension experiment: the §6.2 "newer hardware" hypothesis.
//!
//! "We hypothesize that on newer hardware-systems that have higher
//! bandwidth between CPU and GPU memory (e.g., newer PCIe generations,
//! NVLink-C2C), the fill-job slowdown from offloading could be
//! substantially lower." This driver pins one offload-bound configuration
//! — XLM batch inference with ZeRO-Infinity-style parameter streaming at
//! batch 8, the config the Executor chooses under the paper's 4.5 GB
//! bubbles — and sweeps only the host-link bandwidth, reporting the
//! iteration time and the offloading tax relative to fully on-device
//! execution. Holding the configuration fixed isolates the bandwidth
//! effect from Algorithm 1's integer replication and config switching.

use pipefill_device::DeviceSpec;
use pipefill_executor::{build_profile, ExecConfig, ExecTechnique};
use pipefill_model_zoo::{JobKind, ModelId};
use serde::{Deserialize, Serialize};

use crate::experiments::sweep;

/// One host-bandwidth point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WhatIfRow {
    /// Host↔device bandwidth in GB/s.
    pub host_gbps: f64,
    /// One streamed XLM inference iteration (batch 8), in milliseconds.
    pub xlm_streamed_iter_ms: f64,
    /// The offloading tax: streamed iteration time over the fully
    /// on-device iteration time at the same batch (1.0 = free).
    pub offload_tax: f64,
    /// Control: BERT-base plain-inference iteration time (batch 256), in
    /// milliseconds — bandwidth-independent by construction.
    pub bert_plain_iter_ms: f64,
}

/// The bandwidth axis: PCIe 3.0 (the paper's V100s), PCIe 4.0, PCIe
/// 5.0-class, and NVLink-C2C-class.
pub const WHATIF_BANDWIDTHS_GBPS: [f64; 4] = [12.0, 24.0, 50.0, 100.0];

/// Runs the bandwidth sweep.
pub fn whatif_offload_bandwidth() -> Vec<WhatIfRow> {
    let xlm = ModelId::XlmRobertaXl.build();
    let bert = ModelId::BertBase.build();
    sweep::par_map(WHATIF_BANDWIDTHS_GBPS.to_vec(), |gbps| {
        let device = DeviceSpec::v100().with_host_link_bandwidth(gbps * 1e9);
        let streamed = build_profile(
            &xlm,
            JobKind::BatchInference,
            ExecConfig {
                batch_size: 8,
                technique: ExecTechnique::OffloadParams,
            },
            &device,
        );
        let on_device = build_profile(
            &xlm,
            JobKind::BatchInference,
            ExecConfig {
                batch_size: 8,
                technique: ExecTechnique::Plain,
            },
            &device,
        );
        let control = build_profile(
            &bert,
            JobKind::BatchInference,
            ExecConfig {
                batch_size: 256,
                technique: ExecTechnique::Plain,
            },
            &device,
        );
        WhatIfRow {
            host_gbps: gbps,
            xlm_streamed_iter_ms: streamed.iteration_time().as_millis_f64(),
            offload_tax: streamed.iteration_time().as_secs_f64()
                / on_device.iteration_time().as_secs_f64(),
            bert_plain_iter_ms: control.iteration_time().as_millis_f64(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_host_bandwidth_shrinks_the_offload_tax() {
        let rows = whatif_offload_bandwidth();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        // §6.2's hypothesis: the offloading tax shrinks substantially.
        assert!(
            first.offload_tax > 1.10,
            "PCIe 3.0 tax should be visible, got {}",
            first.offload_tax
        );
        assert!(
            last.offload_tax < first.offload_tax * 0.95,
            "tax {} -> {}",
            first.offload_tax,
            last.offload_tax
        );
        // At NVLink-C2C bandwidth the stream hides almost entirely.
        assert!(last.offload_tax < 1.05, "residual tax {}", last.offload_tax);
        // Iteration times are monotone non-increasing in bandwidth.
        for pair in rows.windows(2) {
            assert!(pair[1].xlm_streamed_iter_ms <= pair[0].xlm_streamed_iter_ms * 1.001);
        }
        // Control is bandwidth-independent.
        assert!((first.bert_plain_iter_ms - last.bert_plain_iter_ms).abs() < 1e-9);
    }
}
