//! Fig. 9: fill-job scheduling-policy sensitivity. SJF achieves lower
//! average JCT (especially at low load); Makespan-Min achieves lower
//! makespan (especially at high load).

use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;
use pipefill_trace::TraceConfig;
use serde::{Deserialize, Serialize};

use crate::backend::BackendConfig;
use crate::cluster::{ClusterSimConfig, PolicyKind};
use crate::experiments::sweep;

/// One (policy, load) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyRow {
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Offered-load multiplier.
    pub load: f64,
    /// Mean job completion time in seconds (Fig. 9a).
    pub mean_jct_secs: f64,
    /// Makespan in seconds (Fig. 9b).
    pub makespan_secs: f64,
    /// Jobs completed.
    pub completed: usize,
}

/// The load axis of Fig. 9 (multiples of the base arrival rate; the top
/// end oversubscribes the 16 devices so queueing effects appear).
pub const FIG9_LOADS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// Runs the policy comparison on the 5B physical-cluster setting. The
/// (load, policy) grid runs as one parallel coarse-backend sweep.
pub fn fig9_policies(seed: u64, horizon: SimDuration) -> Vec<PolicyRow> {
    let mut grid = Vec::new();
    for &load in &FIG9_LOADS {
        for policy in [PolicyKind::Sjf, PolicyKind::MakespanMin] {
            grid.push((load, policy));
        }
    }
    let configs = grid
        .iter()
        .map(|&(load, policy)| {
            let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
            let mut trace = TraceConfig::physical(seed).with_load(load);
            trace.horizon = horizon;
            let mut cfg = ClusterSimConfig::new(main, trace);
            cfg.policy = policy;
            BackendConfig::Coarse(cfg)
        })
        .collect();
    sweep::run_sweep(configs)
        .into_iter()
        .zip(grid)
        .map(|(run, (load, policy))| {
            let result = run.coarse().expect("coarse config yields coarse detail");
            PolicyRow {
                policy,
                load,
                mean_jct_secs: result.jct.mean_secs,
                makespan_secs: result.makespan.as_secs_f64(),
                completed: result.completed.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sjf_wins_jct_and_makespan_min_wins_makespan() {
        let rows = fig9_policies(11, SimDuration::from_secs(2400));
        let get = |policy: PolicyKind, load: f64| {
            rows.iter()
                .find(|r| r.policy == policy && r.load == load)
                .unwrap()
        };
        // Fig. 9a: SJF's mean JCT ≤ Makespan-Min's, most visible at
        // moderate load.
        let mut sjf_wins = 0;
        for &load in &FIG9_LOADS {
            if get(PolicyKind::Sjf, load).mean_jct_secs
                <= get(PolicyKind::MakespanMin, load).mean_jct_secs * 1.02
            {
                sjf_wins += 1;
            }
        }
        assert!(sjf_wins >= 3, "SJF won JCT at only {sjf_wins}/4 loads");
        // Fig. 9b: Makespan-Min's makespan ≤ SJF's at high load.
        let high = 4.0;
        assert!(
            get(PolicyKind::MakespanMin, high).makespan_secs
                <= get(PolicyKind::Sjf, high).makespan_secs * 1.05,
            "makespan-min {} vs sjf {}",
            get(PolicyKind::MakespanMin, high).makespan_secs,
            get(PolicyKind::Sjf, high).makespan_secs
        );
    }

    #[test]
    fn jct_grows_with_load() {
        let rows = fig9_policies(12, SimDuration::from_secs(2400));
        for policy in [PolicyKind::Sjf, PolicyKind::MakespanMin] {
            let lo = rows
                .iter()
                .find(|r| r.policy == policy && r.load == 0.5)
                .unwrap();
            let hi = rows
                .iter()
                .find(|r| r.policy == policy && r.load == 4.0)
                .unwrap();
            assert!(
                hi.mean_jct_secs > lo.mean_jct_secs,
                "{policy:?}: {} !> {}",
                hi.mean_jct_secs,
                lo.mean_jct_secs
            );
        }
    }
}
