//! Experiment drivers — one per table/figure of the paper's evaluation
//! (§6). Each returns typed rows; printing, CSV persistence and
//! golden-snapshot pinning are generic over the `Experiment` trait in
//! the `pipefill-scenario` crate, whose registry wraps every driver
//! below (`pipefill-cli exp --list`).
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Fig. 1 / Fig. 4a-c (scaling & utilization) | [`scaling::fig4_scaling`] |
//! | Fig. 5 (fill-fraction sweep) | [`fill_fraction::fig5_fill_fraction`] |
//! | Fig. 6 (simulator validation, mix sweep) | [`validation::fig6_validation`] |
//! | Fig. 7a/7b (fill-job characterization) | [`characterization::fig7_characterization`] |
//! | Fig. 8 (GPipe vs 1F1B) | [`schedules::fig8_schedules`] |
//! | 4-schedule × depth bubble-geometry sweep (extension) | [`schedules::schedule_depth_sweep`] |
//! | Fig. 9a/9b (scheduling policies) | [`policies::fig9_policies`] |
//! | Fig. 10a/10b (bubble size / free memory) | [`sensitivity`] |
//! | Table 1 (fill-job categories) | [`table1::table1`] |
//! | §6.2 newer-hardware hypothesis (extension) | [`whatif::whatif_offload_bandwidth`] |
//! | Fault-tolerance MTBF × checkpoint-cost map (extension) | [`faults::whatif_faults`] |
//! | Fleet-size scaling, multi-job + global queue (extension) | [`fleet::fleet_scale`] |

//!
//! Simulation-backed drivers select their fidelity level by value through
//! [`crate::BackendConfig`] rather than naming concrete simulator types,
//! and every driver fans its configuration grid across cores through the
//! [`sweep`] module (`--threads` on the CLI).

pub mod characterization;
pub mod faults;
pub mod fill_fraction;
pub mod fleet;
pub mod policies;
pub mod scaling;
pub mod schedules;
pub mod sensitivity;
pub mod sweep;
pub mod table1;
pub mod validation;
pub mod whatif;

pub use characterization::{
    fig7_characterization, mix_relative_performance, mix_relative_performance_from,
    CharacterizationRow,
};
pub use faults::{whatif_faults, FaultWhatIfRow};
pub use fill_fraction::{fig5_fill_fraction, FillFractionRow};
pub use fleet::{fleet_scale, fleet_scale_with, FleetScaleRow};
pub use policies::{fig9_policies, PolicyRow};
pub use scaling::{fig4_scaling, fig4_scaling_with, ScalingRow};
pub use schedules::{fig8_schedules, schedule_depth_sweep, DepthRow, ScheduleRow};
pub use sensitivity::{fig10a_bubble_size, fig10b_free_memory, BubbleSizeRow, FreeMemoryRow};
pub use sweep::{par_map, replicate, run_sweep, set_threads};
pub use table1::{table1, Table1Row};
pub use validation::{fig6_agreement, fig6_validation, AgreementRow, ValidationRow};
pub use whatif::{whatif_offload_bandwidth, WhatIfRow};
