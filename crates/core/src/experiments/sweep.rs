//! The rayon-parallel sweep driver.
//!
//! Every figure of the evaluation is a *sweep*: the same simulation or
//! analysis repeated over a grid of configurations (fill fractions, loads,
//! seeds, mixes, GPU counts). The points are independent, so this module
//! fans them out across cores while keeping results in input order — a
//! sweep returns exactly what the serial loop would, just faster.
//!
//! Determinism is unaffected: each point owns its seeded RNG, and
//! [`par_map`] preserves index order, so experiment output is byte-stable
//! regardless of the worker count (including `--threads 1`).

use rayon::prelude::*;

use crate::backend::{BackendConfig, BackendRun};

/// Configures the global worker count used by all sweeps (0 or
/// [`default`](set_threads) = machine-sized). Returns the count now in
/// effect. Wired to the CLI's `--threads` flag.
pub fn set_threads(threads: usize) -> usize {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .ok();
    rayon::current_num_threads()
}

/// The worker count sweeps will use.
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

/// Applies `f` to every item across cores, preserving input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    items.into_par_iter().map(f).collect()
}

/// Runs a batch of backend configurations (any mix of fidelities) across
/// cores; results preserve input order.
pub fn run_sweep(configs: Vec<BackendConfig>) -> Vec<BackendRun> {
    par_map(configs, BackendConfig::run)
}

/// Multi-seed replication: runs `f` once per seed across cores, in seed
/// order. The backbone of the agreement and sensitivity studies.
pub fn replicate<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    par_map(seeds.to_vec(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendConfig, BackendKind};
    use crate::{ClusterSimConfig, PhysicalSimConfig};
    use pipefill_pipeline::{MainJobSpec, ScheduleKind};
    use pipefill_sim_core::SimDuration;
    use pipefill_trace::TraceConfig;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0u64..100).collect(), |x| x * x);
        assert_eq!(out, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_matches_serial_execution() {
        let mk = |seed: u64| {
            let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
            let mut trace = TraceConfig::physical(seed);
            trace.horizon = SimDuration::from_secs(600);
            BackendConfig::Coarse(ClusterSimConfig::new(main, trace))
        };
        let parallel = run_sweep(vec![mk(1), mk(2), mk(3)]);
        for (i, seed) in [1u64, 2, 3].iter().enumerate() {
            let serial = mk(*seed).run();
            assert_eq!(
                parallel[i].metrics.recovered_tflops_per_gpu,
                serial.metrics.recovered_tflops_per_gpu,
                "parallel order or determinism broken at seed {seed}"
            );
        }
    }

    #[test]
    fn mixed_fidelity_sweep() {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut trace = TraceConfig::physical(9);
        trace.horizon = SimDuration::from_secs(600);
        let mut phys = PhysicalSimConfig::new(main.clone());
        phys.iterations = 40;
        let runs = run_sweep(vec![
            BackendConfig::Coarse(ClusterSimConfig::new(main, trace)),
            BackendConfig::Physical(phys),
        ]);
        assert_eq!(runs[0].metrics.kind, BackendKind::Coarse);
        assert_eq!(runs[1].metrics.kind, BackendKind::Physical);
    }

    #[test]
    fn replicate_is_seed_ordered() {
        let out = replicate(&[5, 6, 7], |s| s * 10);
        assert_eq!(out, vec![50, 60, 70]);
    }
}
